//! The CDCL engine with native guarded cardinality constraints.

use crate::lit::{LBool, Lit, Var};

/// Outcome of a solve call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found (query it with [`Solver::value`]).
    Sat,
    /// No satisfying assignment exists (under the given assumptions).
    Unsat,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learned: bool,
    activity: f64,
    deleted: bool,
}

/// A guarded at-least-`bound` constraint: `guard ⇒ Σ lits ≥ bound`
/// (unconditionally enforced when `guard` is `None`).
#[derive(Clone, Debug)]
struct Card {
    guard: Option<Lit>,
    lits: Vec<Lit>,
    bound: u32,
    nfalse: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Reason {
    None,
    Clause(u32),
    Card(u32),
}

#[derive(Clone, Copy, Debug)]
enum Conflict {
    Clause(u32),
    Card(u32),
}

/// CDCL SAT solver with native guarded cardinality constraints.
///
/// See the crate docs for the feature list. All constraints are added through
/// [`Solver::add_clause`] and [`Solver::add_card_ge`]; incremental use is
/// supported (add constraints, solve, add more, solve again) as long as
/// solving happened at decision level zero, which this API guarantees.
pub struct Solver {
    n_vars: usize,
    clauses: Vec<Clause>,
    learned_ids: Vec<u32>,
    /// `watches[l]` = clause ids watching literal `¬l` (inspected when `l` becomes true).
    watches: Vec<Vec<u32>>,
    cards: Vec<Card>,
    /// `card_occ[l]` = card ids containing literal `¬l` (their `nfalse` bumps when `l` becomes true).
    card_occ: Vec<Vec<u32>>,
    /// `guard_occ[l]` = card ids whose guard is `l` (activated when `l` becomes true).
    guard_occ: Vec<Vec<u32>>,

    assigns: Vec<LBool>,
    phase: Vec<bool>,
    levels: Vec<u32>,
    trail_pos: Vec<u32>,
    reasons: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: Vec<Var>,
    heap_pos: Vec<i32>,

    seen: Vec<bool>,
    ok: bool,
    /// Statistics: total conflicts seen (exposed for the benchmark harness).
    pub conflicts: u64,
    /// Literals removed from learned clauses by self-subsumption
    /// minimization (statistics for the harness).
    pub minimized_lits: u64,
    /// Statistics: total propagations.
    pub propagations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Self {
        Solver {
            n_vars: 0,
            clauses: Vec::new(),
            learned_ids: Vec::new(),
            watches: Vec::new(),
            cards: Vec::new(),
            card_occ: Vec::new(),
            guard_occ: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            levels: Vec::new(),
            trail_pos: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            seen: Vec::new(),
            ok: true,
            conflicts: 0,
            minimized_lits: 0,
            propagations: 0,
        }
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.n_vars as u32);
        self.n_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.card_occ.push(Vec::new());
        self.card_occ.push(Vec::new());
        self.guard_occ.push(Vec::new());
        self.guard_occ.push(Vec::new());
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.levels.push(0);
        self.trail_pos.push(0);
        self.reasons.push(Reason::None);
        self.activity.push(0.0);
        self.heap_pos.push(-1);
        self.seen.push(false);
        self.heap_insert(v);
        v
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Sets the initial branching polarity of a variable (phase saving will
    /// overwrite it as search progresses). Callers use this to bias the
    /// search toward a known nearby assignment — e.g. the anchor point in a
    /// closest-counterfactual query.
    pub fn set_phase(&mut self, v: Var, polarity: bool) {
        self.phase[v.index()] = polarity;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Current truth value of a literal.
    pub fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].of_lit(l)
    }

    /// Model value of a variable after a `Sat` answer.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Adds a clause (disjunction of literals). Returns `false` if the solver
    /// became inconsistent at the root level. Incremental: may be called
    /// after a solve (the trail is rewound to the root first).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        // Normalize: dedupe, drop root-false literals, detect tautologies.
        let mut norm: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                LBool::True => return true,
                LBool::False => continue,
                LBool::Undef => {}
            }
            if norm.contains(&l.negate()) {
                return true; // tautology
            }
            if !norm.contains(&l) {
                norm.push(l);
            }
        }
        match norm.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(norm[0], Reason::None);
                self.root_propagate()
            }
            _ => {
                self.attach_clause(norm, false);
                true
            }
        }
    }

    /// Adds the guarded cardinality constraint `guard ⇒ Σ lits ≥ bound`
    /// (unconditional when `guard` is `None`). Literals must be distinct.
    /// Returns `false` if the solver became inconsistent at the root level.
    /// Incremental: may be called after a solve.
    pub fn add_card_ge(&mut self, guard: Option<Lit>, lits: &[Lit], bound: u32) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        if bound == 0 {
            return true;
        }
        if bound as usize > lits.len() {
            return match guard {
                Some(g) => self.add_clause(&[g.negate()]),
                None => {
                    self.ok = false;
                    false
                }
            };
        }
        if bound == 1 {
            // Degenerates to a clause (with the guard folded in).
            let mut c: Vec<Lit> = lits.to_vec();
            if let Some(g) = guard {
                c.push(g.negate());
            }
            return self.add_clause(&c);
        }
        let ci = self.cards.len() as u32;
        let mut nfalse = 0;
        for &l in lits {
            self.card_occ[l.negate().index()].push(ci);
            if self.lit_value(l) == LBool::False {
                nfalse += 1;
            }
        }
        if let Some(g) = guard {
            self.guard_occ[g.index()].push(ci);
        }
        self.cards.push(Card { guard, lits: lits.to_vec(), bound, nfalse });
        if self.check_card(ci).is_some() {
            self.ok = false;
            return false;
        }
        self.root_propagate()
    }

    fn root_propagate(&mut self) -> bool {
        if self.propagate().is_some() {
            self.ok = false;
        }
        self.ok
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learned: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let id = self.clauses.len() as u32;
        self.watches[lits[0].negate().index()].push(id);
        self.watches[lits[1].negate().index()].push(id);
        if learned {
            self.learned_ids.push(id);
        }
        self.clauses.push(Clause { lits, learned, activity: 0.0, deleted: false });
        id
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = if l.is_positive() { LBool::True } else { LBool::False };
        self.levels[v.index()] = self.decision_level();
        self.trail_pos[v.index()] = self.trail.len() as u32;
        self.reasons[v.index()] = reason;
        self.trail.push(l);
        // Cardinality counters are maintained eagerly at assignment time so
        // they stay symmetric with `cancel_until` even when propagation is
        // aborted early by a conflict.
        for i in 0..self.card_occ[l.index()].len() {
            let ci = self.card_occ[l.index()][i] as usize;
            self.cards[ci].nfalse += 1;
        }
        self.propagations += 1;
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let l = self.trail.pop().unwrap();
            let v = l.var();
            self.phase[v.index()] = l.is_positive();
            self.assigns[v.index()] = LBool::Undef;
            self.reasons[v.index()] = Reason::None;
            for i in 0..self.card_occ[l.index()].len() {
                let ci = self.card_occ[l.index()][i] as usize;
                self.cards[ci].nfalse -= 1;
            }
            if self.heap_pos[v.index()] < 0 {
                self.heap_insert(v);
            }
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    /// Unit propagation over clauses and cardinality constraints.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // --- Clause propagation (two watched literals) -----------------
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict = None;
            'watch: while i < ws.len() {
                let cid = ws[i];
                if self.clauses[cid as usize].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                let false_lit = p.negate();
                {
                    let lits = &mut self.clauses[cid as usize].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cid as usize].lits[0];
                if self.lit_value(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.clauses[cid as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cid as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cid as usize].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(cid);
                        ws.swap_remove(i);
                        continue 'watch;
                    }
                }
                // No replacement: unit or conflict.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(Conflict::Clause(cid));
                    // Keep remaining watches in place.
                    break;
                } else {
                    self.enqueue(first, Reason::Clause(cid));
                    i += 1;
                }
            }
            self.watches[p.index()].append(&mut ws);
            if let Some(c) = conflict {
                self.qhead = self.trail.len();
                return Some(c);
            }

            // --- Cardinality: p just became true ---------------------------
            // 1. cards containing ¬p gained a false literal (the counter was
            //    already bumped at enqueue time; here we only check);
            for i in 0..self.card_occ[p.index()].len() {
                let ci = self.card_occ[p.index()][i];
                if let Some(c) = self.check_card(ci) {
                    self.qhead = self.trail.len();
                    return Some(c);
                }
            }
            // 2. cards guarded by p became active.
            for i in 0..self.guard_occ[p.index()].len() {
                let ci = self.guard_occ[p.index()][i];
                if let Some(c) = self.check_card(ci) {
                    self.qhead = self.trail.len();
                    return Some(c);
                }
            }
        }
        None
    }

    /// Counter-based propagation check for one cardinality constraint.
    fn check_card(&mut self, ci: u32) -> Option<Conflict> {
        let card = &self.cards[ci as usize];
        let slack = card.lits.len() as i64 - card.nfalse as i64 - card.bound as i64;
        let guard_state = card.guard.map(|g| self.lit_value(g));
        match guard_state {
            Some(LBool::False) => None,
            Some(LBool::Undef) => {
                if slack < 0 {
                    let g = card.guard.unwrap();
                    self.enqueue(g.negate(), Reason::Card(ci));
                }
                None
            }
            Some(LBool::True) | None => {
                if slack < 0 {
                    return Some(Conflict::Card(ci));
                }
                if slack == 0 {
                    let lits = self.cards[ci as usize].lits.clone();
                    for l in lits {
                        if self.lit_value(l) == LBool::Undef {
                            self.enqueue(l, Reason::Card(ci));
                        }
                    }
                }
                None
            }
        }
    }

    /// Premise literals (all currently false) that forced `implied`, for a
    /// propagation whose reason was `reason`. For cardinality reasons the
    /// clause is materialized lazily: `implied ∨ ¬guard ∨ (falsified lits
    /// assigned before implied)` — see DESIGN.md §2 (sat).
    fn reason_premises(&self, implied: Var, reason: Reason) -> Vec<Lit> {
        match reason {
            Reason::None => Vec::new(),
            Reason::Clause(cid) => self.clauses[cid as usize]
                .lits
                .iter()
                .copied()
                .filter(|l| l.var() != implied)
                .collect(),
            Reason::Card(ci) => {
                let card = &self.cards[ci as usize];
                let cutoff = self.trail_pos[implied.index()];
                let mut out = Vec::new();
                if let Some(g) = card.guard {
                    if g.var() != implied {
                        debug_assert_eq!(self.lit_value(g), LBool::True);
                        out.push(g.negate());
                    }
                }
                for &l in &card.lits {
                    if l.var() != implied
                        && self.lit_value(l) == LBool::False
                        && self.trail_pos[l.var().index()] < cutoff
                    {
                        out.push(l);
                    }
                }
                out
            }
        }
    }

    /// All premise literals of a conflicting constraint (all currently false).
    fn conflict_premises(&self, conflict: Conflict) -> Vec<Lit> {
        match conflict {
            Conflict::Clause(cid) => self.clauses[cid as usize].lits.clone(),
            Conflict::Card(ci) => {
                let card = &self.cards[ci as usize];
                let mut out = Vec::new();
                if let Some(g) = card.guard {
                    debug_assert_eq!(self.lit_value(g), LBool::True);
                    out.push(g.negate());
                }
                for &l in &card.lits {
                    if self.lit_value(l) == LBool::False {
                        out.push(l);
                    }
                }
                out
            }
        }
    }

    /// 1-UIP conflict analysis. Returns the learned clause (asserting literal
    /// first, a max-level literal second) and the backjump level.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32) {
        self.conflicts += 1;
        if let Conflict::Clause(cid) = conflict {
            self.bump_clause(cid);
        }
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut counter = 0usize;
        let mut premises = self.conflict_premises(conflict);
        let mut idx = self.trail.len();
        let asserting;
        loop {
            for &q in &premises {
                let v = q.var();
                if !self.seen[v.index()] && self.levels[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.levels[v.index()] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                asserting = pl;
                break;
            }
            let r = self.reasons[pl.var().index()];
            if let Reason::Clause(cid) = r {
                self.bump_clause(cid);
            }
            premises = self.reason_premises(pl.var(), r);
        }
        learnt[0] = asserting.negate();
        // Local (self-subsumption) minimization: drop a non-asserting literal
        // whose reason's premises all already appear in the clause (`seen`)
        // or sit at level 0 — its negation is implied by the rest, so the
        // shorter clause is still a logical consequence. This is what tames
        // the long resolution chains that cardinality propagations produce.
        let before = learnt.len();
        let mut kept = 1usize;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let redundant = match self.reasons[l.var().index()] {
                Reason::None => false,
                r => self
                    .reason_premises(l.var(), r)
                    .iter()
                    .all(|q| self.seen[q.var().index()] || self.levels[q.var().index()] == 0),
            };
            if redundant {
                self.seen[l.var().index()] = false;
            } else {
                learnt[kept] = l;
                kept += 1;
            }
        }
        learnt.truncate(kept);
        self.minimized_lits += (before - kept) as u64;
        // Clear `seen` for the literals kept in the learned clause.
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump level: the highest level among the non-asserting literals.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.levels[learnt[1].var().index()];
        }
        self.decay_activities();
        (learnt, bt)
    }

    fn record(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            self.enqueue(learnt[0], Reason::None);
        } else {
            let first = learnt[0];
            let cid = self.attach_clause(learnt, true);
            self.bump_clause(cid);
            self.enqueue(first, Reason::Clause(cid));
        }
    }

    // --- VSIDS ----------------------------------------------------------------

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_pos[v.index()] >= 0 {
            self.heap_sift_up(self.heap_pos[v.index()] as usize);
        }
    }

    fn bump_clause(&mut self, cid: u32) {
        let c = &mut self.clauses[cid as usize];
        if !c.learned {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &id in &self.learned_ids {
                self.clauses[id as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    // --- Order heap (max-heap on activity) -------------------------------------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        debug_assert!(self.heap_pos[v.index()] < 0);
        self.heap_pos[v.index()] = self.heap.len() as i32;
        self.heap.push(v);
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].index()] = i as i32;
        self.heap_pos[self.heap[j].index()] = j as i32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_pos[top.index()] = -1;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_pos[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    // --- Learned clause database reduction --------------------------------------

    fn reduce_db(&mut self) {
        let locked = |s: &Self, cid: u32| {
            let first = s.clauses[cid as usize].lits[0];
            s.lit_value(first) == LBool::True
                && s.reasons[first.var().index()] == Reason::Clause(cid)
        };
        self.learned_ids.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap()
        });
        let half = self.learned_ids.len() / 2;
        let mut kept = Vec::with_capacity(self.learned_ids.len() - half);
        for (i, &cid) in self.learned_ids.iter().enumerate() {
            if i < half && !locked(self, cid) && self.clauses[cid as usize].lits.len() > 2 {
                self.clauses[cid as usize].deleted = true;
            } else {
                kept.push(cid);
            }
        }
        self.learned_ids = kept;
        // Deleted clauses are dropped lazily from the watch lists.
    }

    // --- Top-level search ----------------------------------------------------------

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// On `Sat`, the model satisfies all constraints and assumptions; on
    /// `Unsat`, no assignment extending the assumptions exists. The solver can
    /// be reused afterwards (state is rewound to the root level on entry).
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve cannot exhaust its budget")
    }

    /// [`Solver::solve_with`] with a conflict budget: returns `None` when the
    /// budget is exhausted before an answer is reached (anytime use — e.g.
    /// time-bounded optimality proofs in the counterfactual search).
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return Some(SolveResult::Unsat);
        }

        let mut restarts = 0u32;
        let mut budget = 100u64 * luby(restarts) as u64;
        let mut since_restart = 0u64;
        let mut spent: u64 = 0;
        let max_learned = 4000 + self.clauses.len() / 2;

        loop {
            if let Some(conflict) = self.propagate() {
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                since_restart += 1;
                spent += 1;
                if spent > max_conflicts {
                    self.cancel_until(0);
                    return None;
                }
                let (learnt, bt) = self.analyze(conflict);
                self.cancel_until(bt);
                self.record(learnt);
            } else {
                if since_restart >= budget {
                    restarts += 1;
                    since_restart = 0;
                    budget = 100 * luby(restarts) as u64;
                    self.cancel_until(0);
                    continue;
                }
                if self.learned_ids.len() > max_learned + (self.conflicts / 3) as usize {
                    self.reduce_db();
                }
                // Assumption decisions occupy the first levels, in order.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            self.trail_lim.push(self.trail.len()); // empty level keeps the mapping
                        }
                        LBool::False => {
                            self.cancel_until(0);
                            return Some(SolveResult::Unsat);
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, Reason::None);
                        }
                    }
                } else {
                    match self.pick_branch() {
                        None => return Some(SolveResult::Sat),
                        Some(v) => {
                            let lit = v.lit(self.phase[v.index()]);
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(lit, Reason::None);
                        }
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence 1,1,2,1,1,2,4,…
fn luby(i: u32) -> u32 {
    let mut k = 1u32;
    while (1u64 << (k + 1)) - 1 <= i as u64 + 1 {
        k += 1;
    }
    let mut i = i;
    let mut kk = k;
    loop {
        if i + 2 == (1 << (kk + 1)) {
            return 1 << kk;
        }
        if i + 1 < (1 << kk) {
            kk -= 1;
            continue;
        }
        i -= (1 << kk) - 1;
        kk = 1;
        while (1u64 << (kk + 1)) - 1 <= i as u64 + 1 {
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        solver.new_vars(n)
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0].pos()]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert!(!s.add_clause(&[v[0].neg()]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[v[0].pos()]);
        s.add_clause(&[v[0].neg(), v[1].pos()]);
        s.add_clause(&[v[1].neg(), v[2].pos()]);
        s.add_clause(&[v[2].neg(), v[3].pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[3]), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| s.new_vars(2)).collect();
        for row in &p {
            s.add_clause(&[row[0].pos(), row[1].pos()]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    s.add_clause(&[p[a][j].neg(), p[b][j].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cardinality_at_least() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        let all: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        assert!(s.add_card_ge(None, &all, 3));
        assert_eq!(s.solve(), SolveResult::Sat);
        let count = v.iter().filter(|&&x| s.value(x) == Some(true)).count();
        assert!(count >= 3, "model has only {count} true literals");
    }

    #[test]
    fn cardinality_conflicts_with_clauses() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        let all: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        s.add_card_ge(None, &all, 3);
        // Force three of them false: 3 true out of remaining 1 impossible.
        s.add_clause(&[v[0].neg()]);
        s.add_clause(&[v[1].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cardinality_equals_length_forces_all() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let all: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        s.add_card_ge(None, &all, 3);
        assert_eq!(s.solve(), SolveResult::Sat);
        for x in &v {
            assert_eq!(s.value(*x), Some(true));
        }
    }

    #[test]
    fn guarded_cardinality_inactive_when_guard_false() {
        let mut s = Solver::new();
        let g = s.new_var();
        let v = lits(&mut s, 3);
        let all: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        s.add_card_ge(Some(g.pos()), &all, 3);
        s.add_clause(&[v[0].neg()]); // makes the card unsatisfiable if active
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(g), Some(false), "guard must be forced off");
    }

    #[test]
    fn guarded_cardinality_enforced_under_assumption() {
        let mut s = Solver::new();
        let g = s.new_var();
        let v = lits(&mut s, 4);
        let all: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        s.add_card_ge(Some(g.pos()), &all, 2);
        s.add_clause(&[v[0].neg()]);
        s.add_clause(&[v[1].neg()]);
        // Active guard: need 2 true among v[2], v[3].
        assert_eq!(s.solve_with(&[g.pos()]), SolveResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        assert_eq!(s.value(v[3]), Some(true));
        // Still satisfiable without the assumption.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumptions_unsat_then_sat_incremental() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        assert_eq!(s.solve_with(&[v[0].neg(), v[1].neg()]), SolveResult::Unsat);
        assert_eq!(s.solve_with(&[v[0].neg()]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflicting_cardinalities() {
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        let pos: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        let neg: Vec<Lit> = v.iter().map(|x| x.neg()).collect();
        // At least 4 true and at least 4 false among 6: impossible.
        s.add_card_ge(None, &pos, 4);
        assert!(!s.add_card_ge(None, &neg, 4) || s.solve() == SolveResult::Unsat);
    }

    #[test]
    fn two_guards_select_between_cards() {
        let mut s = Solver::new();
        let g1 = s.new_var();
        let g2 = s.new_var();
        let v = lits(&mut s, 4);
        let pos: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        let neg: Vec<Lit> = v.iter().map(|x| x.neg()).collect();
        s.add_card_ge(Some(g1.pos()), &pos, 3); // g1 ⇒ ≥3 true
        s.add_card_ge(Some(g2.pos()), &neg, 3); // g2 ⇒ ≥3 false
        s.add_clause(&[g1.pos(), g2.pos()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let trues = v.iter().filter(|&&x| s.value(x) == Some(true)).count();
        let g1v = s.value(g1) == Some(true);
        let g2v = s.value(g2) == Some(true);
        assert!(g1v || g2v);
        if g1v {
            assert!(trues >= 3);
        }
        if g2v {
            assert!(trues <= 1);
        }
    }

    #[test]
    fn random_3sat_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..60 {
            let n = rng.gen_range(3..9usize);
            let m = rng.gen_range(3..24usize);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                let w = rng.gen_range(1..4usize);
                let mut cl = Vec::new();
                for _ in 0..w {
                    cl.push((rng.gen_range(0..n), rng.gen_bool(0.5)));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for mask in 0u32..(1 << n) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, pos)| ((mask >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let vars = s.new_vars(n);
            for cl in &clauses {
                let lits: Vec<Lit> = cl.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "mismatch on round {round}: {clauses:?}");
            if got {
                for cl in &clauses {
                    assert!(
                        cl.iter().any(|&(v, pos)| s.value(vars[v]) == Some(pos)),
                        "model does not satisfy {cl:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_cardinality_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(123);
        for round in 0..40 {
            let n = rng.gen_range(3..8usize);
            let ncards = rng.gen_range(1..4usize);
            let nclauses = rng.gen_range(0..6usize);
            let mut cards: Vec<(Vec<(usize, bool)>, u32)> = Vec::new();
            for _ in 0..ncards {
                let w = rng.gen_range(2..=n);
                let mut vs: Vec<usize> = (0..n).collect();
                for i in (1..vs.len()).rev() {
                    vs.swap(i, rng.gen_range(0..=i));
                }
                let chosen: Vec<(usize, bool)> =
                    vs[..w].iter().map(|&v| (v, rng.gen_bool(0.5))).collect();
                let bound = rng.gen_range(1..=w as u32);
                cards.push((chosen, bound));
            }
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nclauses {
                let w = rng.gen_range(1..3usize);
                clauses.push((0..w).map(|_| (rng.gen_range(0..n), rng.gen_bool(0.5))).collect());
            }
            let eval = |mask: u32| -> bool {
                cards.iter().all(|(lits, bound)| {
                    let t = lits.iter().filter(|&&(v, pos)| ((mask >> v) & 1 == 1) == pos).count()
                        as u32;
                    t >= *bound
                }) && clauses
                    .iter()
                    .all(|cl| cl.iter().any(|&(v, pos)| ((mask >> v) & 1 == 1) == pos))
            };
            let brute_sat = (0u32..(1 << n)).any(eval);
            let mut s = Solver::new();
            let vars = s.new_vars(n);
            for (lits, bound) in &cards {
                let ls: Vec<Lit> = lits.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_card_ge(None, &ls, *bound);
            }
            for cl in &clauses {
                let ls: Vec<Lit> = cl.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
                s.add_clause(&ls);
            }
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, brute_sat, "mismatch on round {round}");
            if got {
                let mut mask = 0u32;
                for (i, v) in vars.iter().enumerate() {
                    if s.value(*v) == Some(true) {
                        mask |= 1 << i;
                    }
                }
                assert!(eval(mask), "solver model violates constraints");
            }
        }
    }

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }
}
