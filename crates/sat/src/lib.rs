//! A CDCL SAT solver with **native guarded cardinality constraints**.
//!
//! The paper's novel SAT encoding for discrete counterfactual explanations
//! (§9.2) targets `cardinality-cadical` [Reeves, Heule, Bryant 2024], whose
//! distinguishing feature is native propagation of (guarded) cardinality
//! constraints `g ⇒ (Σ ℓᵢ ≥ b)` — "klauses". This crate provides the same
//! capability:
//!
//! * classic CDCL machinery: two-watched-literal clause propagation, 1-UIP
//!   conflict analysis with local (self-subsumption) learned-clause
//!   minimization, VSIDS branching with phase saving, Luby restarts and
//!   activity-based learned-clause deletion;
//! * counter-based propagation for guarded at-least-`b` cardinality
//!   constraints, with lazily materialized reason clauses so learning works
//!   across both constraint types;
//! * incremental solving under assumptions, which the counterfactual search
//!   uses to binary-search the explanation distance with one solver instance;
//! * a CNF *sequential-counter* fallback encoding ([`encode`]) used by the
//!   ablation benchmark to quantify what native propagation buys.
//!
//! ```
//! use knn_sat::{Solver, SolveResult};
//!
//! let mut s = Solver::new();
//! let v = s.new_vars(4);
//! // (v0 ∨ v1) and a guarded cardinality constraint g ⇒ (Σ vᵢ ≥ 3).
//! s.add_clause(&[v[0].pos(), v[1].pos()]);
//! let g = s.new_var().pos();
//! s.add_card_ge(Some(g), &[v[0].pos(), v[1].pos(), v[2].pos(), v[3].pos()], 3);
//! assert_eq!(s.solve_with(&[g]), SolveResult::Sat);           // guard on
//! let trues = (0..4).filter(|&i| s.value(v[i]) == Some(true)).count();
//! assert!(trues >= 3);
//! s.add_clause(&[v[2].neg()]);
//! s.add_clause(&[v[3].neg()]);
//! assert_eq!(s.solve_with(&[g]), SolveResult::Unsat);         // 2 < 3
//! assert_eq!(s.solve(), SolveResult::Sat);                    // guard free
//! ```

#![warn(missing_docs)]

pub mod encode;
pub mod lit;
pub mod solver;

pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver};
