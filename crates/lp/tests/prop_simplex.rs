//! Property tests for the simplex solver on boxed random programs:
//! feasibility of returned optima, dominance over sampled feasible points,
//! and no false infeasibility verdicts.

use knn_lp::{LpOutcome, LpProblem, Objective, Rel};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

#[derive(Clone, Debug)]
struct BoxedLp {
    n: usize,
    upper: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // a·x ≤ b
    objective: Vec<f64>,
}

fn lp_strategy() -> impl Strategy<Value = BoxedLp> {
    (1..=4usize).prop_flat_map(|n| {
        (
            prop::collection::vec(1..=6i32, n),
            prop::collection::vec((prop::collection::vec(-3..=3i32, n), 0..=8i32), 0..=5),
            prop::collection::vec(-4..=4i32, n),
        )
            .prop_map(move |(upper, rows, obj)| BoxedLp {
                n,
                upper: upper.into_iter().map(f64::from).collect(),
                rows: rows
                    .into_iter()
                    .map(|(a, b)| (a.into_iter().map(f64::from).collect(), f64::from(b)))
                    .collect(),
                objective: obj.into_iter().map(f64::from).collect(),
            })
    })
}

fn build(lp: &BoxedLp) -> LpProblem<f64> {
    let mut p = LpProblem::new(lp.n);
    for j in 0..lp.n {
        p.set_lower(j, 0.0);
        p.set_upper(j, lp.upper[j]);
    }
    for (a, b) in &lp.rows {
        p.add_dense(a, Rel::Le, *b);
    }
    p
}

fn feasible(lp: &BoxedLp, x: &[f64]) -> bool {
    x.iter().zip(&lp.upper).all(|(&xi, &u)| (-TOL..=u + TOL).contains(&xi))
        && lp
            .rows
            .iter()
            .all(|(a, b)| a.iter().zip(x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + TOL)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Deterministic low-discrepancy samples in the box (no RNG in proptest body).
fn box_samples(lp: &BoxedLp, count: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::with_capacity(count + 1);
    out.push(vec![0.0; lp.n]); // the origin is always in the box
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..count {
        let mut x = Vec::with_capacity(lp.n);
        for j in 0..lp.n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            x.push(u * lp.upper[j]);
        }
        out.push(x);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A boxed LP is never unbounded; optima are feasible and dominate every
    /// sampled feasible point; `Infeasible` verdicts are never contradicted
    /// by a sampled feasible point.
    #[test]
    fn boxed_lps_solve_correctly(lp in lp_strategy()) {
        let p = build(&lp);
        match p.solve(&lp.objective, Objective::Maximize) {
            LpOutcome::Unbounded => prop_assert!(false, "boxed LP cannot be unbounded"),
            LpOutcome::Optimal { x, value } => {
                prop_assert!(feasible(&lp, &x), "optimum infeasible: {x:?}");
                prop_assert!((dot(&lp.objective, &x) - value).abs() < 1e-5);
                for y in box_samples(&lp, 64) {
                    if feasible(&lp, &y) {
                        prop_assert!(
                            dot(&lp.objective, &y) <= value + 1e-5,
                            "sample {y:?} beats reported optimum {value}"
                        );
                    }
                }
            }
            LpOutcome::Infeasible => {
                for y in box_samples(&lp, 64) {
                    prop_assert!(
                        !feasible(&lp, &y),
                        "solver said infeasible but {y:?} is feasible"
                    );
                }
            }
        }
    }

    /// Minimize(c) = -Maximize(-c) on the same program.
    #[test]
    fn minimize_is_negated_maximize(lp in lp_strategy()) {
        let p = build(&lp);
        let neg: Vec<f64> = lp.objective.iter().map(|c| -c).collect();
        match (p.solve(&lp.objective, Objective::Minimize), p.solve(&neg, Objective::Maximize)) {
            (LpOutcome::Optimal { value: a, .. }, LpOutcome::Optimal { value: b, .. }) => {
                prop_assert!((a + b).abs() < 1e-5, "min {a} vs -max {b}");
            }
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (a, b) => prop_assert!(false, "verdict mismatch: {a:?} vs {b:?}"),
        }
    }

    /// Adding a redundant row (implied by the box) never changes the optimum.
    #[test]
    fn redundant_rows_are_harmless(lp in lp_strategy()) {
        let p = build(&lp);
        let before = p.solve(&lp.objective, Objective::Maximize);
        let mut q = build(&lp);
        // Σ x_j ≤ Σ upper_j holds for every box point.
        let slack: f64 = lp.upper.iter().sum::<f64>() + 1.0;
        q.add_dense(&vec![1.0; lp.n], Rel::Le, slack);
        let after = q.solve(&lp.objective, Objective::Maximize);
        match (before, after) {
            (LpOutcome::Optimal { value: a, .. }, LpOutcome::Optimal { value: b, .. }) => {
                prop_assert!((a - b).abs() < 1e-5);
            }
            (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
            (a, b) => prop_assert!(false, "verdict changed: {a:?} vs {b:?}"),
        }
    }
}
