//! Two-phase dense-tableau simplex engine.

use crate::problem::{LpOutcome, LpProblem, Objective, Rel, Row};
use knn_num::Field;

/// How each structural variable maps into the (non-negative) standard form.
#[derive(Clone, Debug)]
enum ColMap<F> {
    /// `x = offset + x'` with `x' ≥ 0` (variable had a lower bound).
    Shifted { col: usize, offset: F },
    /// `x = offset − x'` with `x' ≥ 0` (variable had only an upper bound).
    NegShifted { col: usize, offset: F },
    /// `x = x⁺ − x⁻` (free variable).
    Split { pos: usize, neg: usize },
}

struct Tableau<F> {
    m: usize,
    ncols: usize,
    /// Row-major `(m + 1) × (ncols + 1)`; row `m` is the reduced-cost row and
    /// column `ncols` is the right-hand side.
    data: Vec<F>,
    basis: Vec<usize>,
    banned: Vec<bool>,
    bland: bool,
    pivots: usize,
}

impl<F: Field> Tableau<F> {
    fn at(&self, i: usize, j: usize) -> &F {
        &self.data[i * (self.ncols + 1) + j]
    }

    fn set(&mut self, i: usize, j: usize, v: F) {
        self.data[i * (self.ncols + 1) + j] = v;
    }

    fn rhs(&self, i: usize) -> &F {
        self.at(i, self.ncols)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.ncols + 1;
        let pv = self.at(row, col).clone();
        debug_assert!(!pv.is_zero());
        // Normalize the pivot row.
        for j in 0..w {
            let v = self.data[row * w + j].clone() / pv.clone();
            self.data[row * w + j] = v;
        }
        self.set(row, col, F::one());
        // Eliminate the pivot column from every other row (including costs).
        for i in 0..=self.m {
            if i == row {
                continue;
            }
            let factor = self.at(i, col).clone();
            if factor.is_zero() {
                continue;
            }
            for j in 0..w {
                let v =
                    self.data[i * w + j].clone() - factor.clone() * self.data[row * w + j].clone();
                self.data[i * w + j] = v;
            }
            self.set(i, col, F::zero());
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Runs simplex minimization until optimality or unboundedness.
    /// Returns `false` on unboundedness.
    fn optimize(&mut self) -> bool {
        let stall_limit = 100 + 20 * (self.m + self.ncols);
        let hard_limit = 20_000 + 400 * (self.m + self.ncols);
        loop {
            if !self.bland && self.pivots > stall_limit {
                self.bland = true;
            }
            assert!(
                self.pivots < hard_limit,
                "simplex exceeded {hard_limit} pivots; numerically stuck"
            );
            let Some(col) = self.choose_entering() else {
                return true;
            };
            let Some(row) = self.choose_leaving(col) else {
                return false;
            };
            self.pivot(row, col);
        }
    }

    fn choose_entering(&self) -> Option<usize> {
        let mut best: Option<(usize, F)> = None;
        for j in 0..self.ncols {
            if self.banned[j] {
                continue;
            }
            let r = self.at(self.m, j);
            if r.is_negative() {
                if self.bland {
                    return Some(j);
                }
                match &best {
                    Some((_, b)) if *r >= *b => {}
                    _ => best = Some((j, r.clone())),
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn choose_leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, F)> = None;
        for i in 0..self.m {
            let a = self.at(i, col);
            if !a.is_positive() {
                continue;
            }
            let ratio = self.rhs(i).clone() / a.clone();
            let better = match &best {
                None => true,
                Some((bi, br)) => ratio < *br || (ratio == *br && self.basis[i] < self.basis[*bi]),
            };
            if better {
                best = Some((i, ratio));
            }
        }
        best.map(|(i, _)| i)
    }
}

impl<F: Field> LpProblem<F> {
    /// Solves `optimize objective·x` subject to the constraints.
    ///
    /// Panics if the program contains strict rows — those are only meaningful
    /// through [`LpProblem::strict_feasible`].
    pub fn solve(&self, objective: &[F], sense: Objective) -> LpOutcome<F> {
        assert!(!self.has_strict(), "strict constraints require strict_feasible()");
        assert_eq!(objective.len(), self.n);
        solve_impl(self, objective, sense)
    }

    /// Finds any feasible point, or `None` if the system is infeasible.
    pub fn feasible_point(&self) -> Option<Vec<F>> {
        let zero = vec![F::zero(); self.n];
        match self.solve(&zero, Objective::Minimize) {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// Feasibility for systems mixing strict and non-strict rows, via the
    /// ε-maximization trick (proof of Proposition 3): each `a·x < b` becomes
    /// `a·x + ε ≤ b`, each `a·x > b` becomes `a·x − ε ≥ b`, and we maximize
    /// `ε ∈ [0, 1]`. A point satisfying all strict rows strictly exists iff
    /// the optimum has `ε > 0`; that point is returned.
    pub fn strict_feasible(&self) -> Option<Vec<F>> {
        let eps = self.n;
        let mut relaxed: LpProblem<F> = LpProblem::new(self.n + 1);
        relaxed.lower[..self.n].clone_from_slice(&self.lower);
        relaxed.upper[..self.n].clone_from_slice(&self.upper);
        relaxed.set_lower(eps, F::zero());
        relaxed.set_upper(eps, F::one());
        for row in &self.rows {
            let mut coeffs = row.coeffs.clone();
            let rel = match row.rel {
                Rel::Lt => {
                    coeffs.push((eps, F::one()));
                    Rel::Le
                }
                Rel::Gt => {
                    coeffs.push((eps, -F::one()));
                    Rel::Ge
                }
                r => r,
            };
            relaxed.rows.push(Row { coeffs, rel, rhs: row.rhs.clone() });
        }
        let mut objective = vec![F::zero(); self.n + 1];
        objective[eps] = F::one();
        match relaxed.solve(&objective, Objective::Maximize) {
            LpOutcome::Optimal { mut x, value } if value.is_positive() => {
                x.truncate(self.n);
                Some(x)
            }
            _ => None,
        }
    }
}

fn solve_impl<F: Field>(problem: &LpProblem<F>, objective: &[F], sense: Objective) -> LpOutcome<F> {
    crate::tally::bump_lp_solves();
    // --- Standard-form transformation -------------------------------------
    let mut ncols = 0usize;
    let mut colmap: Vec<ColMap<F>> = Vec::with_capacity(problem.n);
    let mut extra_rows: Vec<Row<F>> = Vec::new();
    for j in 0..problem.n {
        match (&problem.lower[j], &problem.upper[j]) {
            (Some(l), u) => {
                colmap.push(ColMap::Shifted { col: ncols, offset: l.clone() });
                if let Some(u) = u {
                    extra_rows.push(Row {
                        coeffs: vec![(j, F::one())],
                        rel: Rel::Le,
                        rhs: u.clone(),
                    });
                }
                ncols += 1;
            }
            (None, Some(u)) => {
                colmap.push(ColMap::NegShifted { col: ncols, offset: u.clone() });
                ncols += 1;
            }
            (None, None) => {
                colmap.push(ColMap::Split { pos: ncols, neg: ncols + 1 });
                ncols += 2;
            }
        }
    }

    let all_rows: Vec<&Row<F>> = problem.rows.iter().chain(extra_rows.iter()).collect();
    let m = all_rows.len();

    // Transformed dense rows over standard columns.
    let mut dense: Vec<Vec<F>> = Vec::with_capacity(m);
    let mut rels: Vec<Rel> = Vec::with_capacity(m);
    let mut rhs: Vec<F> = Vec::with_capacity(m);
    for row in &all_rows {
        let mut a = vec![F::zero(); ncols];
        let mut b = row.rhs.clone();
        for (j, c) in &row.coeffs {
            match &colmap[*j] {
                ColMap::Shifted { col, offset } => {
                    a[*col] = a[*col].clone() + c.clone();
                    b = b - c.clone() * offset.clone();
                }
                ColMap::NegShifted { col, offset } => {
                    a[*col] = a[*col].clone() - c.clone();
                    b = b - c.clone() * offset.clone();
                }
                ColMap::Split { pos, neg } => {
                    a[*pos] = a[*pos].clone() + c.clone();
                    a[*neg] = a[*neg].clone() - c.clone();
                }
            }
        }
        dense.push(a);
        rels.push(row.rel);
        rhs.push(b);
    }

    // Slack columns; flip rows so every rhs is non-negative.
    let n_struct = ncols;
    let mut slack_cols: Vec<Option<(usize, bool)>> = vec![None; m]; // (col, coeff_is_plus_one)
    for (i, rel) in rels.iter().enumerate() {
        match rel {
            Rel::Le => {
                slack_cols[i] = Some((ncols, true));
                ncols += 1;
            }
            Rel::Ge => {
                slack_cols[i] = Some((ncols, false));
                ncols += 1;
            }
            Rel::Eq => {}
            Rel::Lt | Rel::Gt => unreachable!("strict rows filtered earlier"),
        }
    }
    let mut negated = vec![false; m];
    for i in 0..m {
        if rhs[i].is_negative() {
            negated[i] = true;
            rhs[i] = -rhs[i].clone();
            for v in dense[i].iter_mut() {
                *v = -v.clone();
            }
        }
    }

    // Artificial columns where the slack cannot start basic.
    let mut artificial_cols: Vec<Option<usize>> = vec![None; m];
    for i in 0..m {
        let slack_usable = matches!(slack_cols[i], Some((_, plus)) if plus != negated[i]);
        if !slack_usable {
            artificial_cols[i] = Some(ncols);
            ncols += 1;
        }
    }

    // --- Tableau assembly ---------------------------------------------------
    let w = ncols + 1;
    let mut tab = Tableau {
        m,
        ncols,
        data: vec![F::zero(); (m + 1) * w],
        basis: vec![0; m],
        banned: vec![false; ncols],
        bland: false,
        pivots: 0,
    };
    for i in 0..m {
        for (j, v) in dense[i].iter().enumerate() {
            if !v.is_zero() {
                tab.set(i, j, v.clone());
            }
        }
        if let Some((col, plus)) = slack_cols[i] {
            let coeff = if plus != negated[i] { F::one() } else { -F::one() };
            tab.set(i, col, coeff);
        }
        tab.set(i, ncols, rhs[i].clone());
        if let Some(col) = artificial_cols[i] {
            tab.set(i, col, F::one());
            tab.basis[i] = col;
        } else {
            tab.basis[i] = slack_cols[i].expect("row without artificial has slack").0;
        }
    }

    // --- Phase 1: minimize the sum of artificials ---------------------------
    let has_artificials = artificial_cols.iter().any(|a| a.is_some());
    if has_artificials {
        for col in artificial_cols.iter().flatten() {
            tab.set(m, *col, F::one());
        }
        // Make reduced costs consistent with the starting basis.
        for i in 0..m {
            if artificial_cols[i].is_some() {
                let factor = tab.at(m, tab.basis[i]).clone();
                if !factor.is_zero() {
                    for j in 0..w {
                        let v = tab.data[m * w + j].clone()
                            - factor.clone() * tab.data[i * w + j].clone();
                        tab.data[m * w + j] = v;
                    }
                }
            }
        }
        let bounded = tab.optimize();
        debug_assert!(bounded, "phase-1 objective is bounded below by zero");
        let p1_value = -tab.rhs(m).clone();
        if p1_value.is_positive() {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis (or detect redundancy).
        let is_artificial = |j: usize| artificial_cols.contains(&Some(j));
        for i in 0..m {
            if is_artificial(tab.basis[i]) {
                let mut pivot_col = None;
                for j in 0..n_struct + m {
                    if j < ncols && !is_artificial(j) && !tab.at(i, j).is_zero() {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    tab.pivot(i, j);
                }
                // A fully-zero row is redundant; its artificial stays basic
                // at value 0, which is harmless.
            }
        }
        for col in artificial_cols.iter().flatten() {
            tab.banned[*col] = true;
        }
        // Reset the cost row for phase 2.
        for j in 0..w {
            tab.data[m * w + j] = F::zero();
        }
        tab.bland = false;
        tab.pivots = 0;
    }

    // --- Phase 2 -------------------------------------------------------------
    // Cost per standard column (minimization).
    let mut costs = vec![F::zero(); ncols];
    for j in 0..problem.n {
        let c = match sense {
            Objective::Minimize => objective[j].clone(),
            Objective::Maximize => -objective[j].clone(),
        };
        if c.is_zero() {
            continue;
        }
        match &colmap[j] {
            ColMap::Shifted { col, .. } => costs[*col] = costs[*col].clone() + c,
            ColMap::NegShifted { col, .. } => costs[*col] = costs[*col].clone() - c,
            ColMap::Split { pos, neg } => {
                costs[*pos] = costs[*pos].clone() + c.clone();
                costs[*neg] = costs[*neg].clone() - c;
            }
        }
    }
    for (j, c) in costs.iter().enumerate() {
        tab.set(m, j, c.clone());
    }
    // Eliminate basic columns from the cost row.
    for i in 0..m {
        let factor = tab.at(m, tab.basis[i]).clone();
        if !factor.is_zero() {
            for j in 0..w {
                let v = tab.data[m * w + j].clone() - factor.clone() * tab.data[i * w + j].clone();
                tab.data[m * w + j] = v;
            }
        }
    }
    if !tab.optimize() {
        return LpOutcome::Unbounded;
    }

    // --- Extraction -----------------------------------------------------------
    let mut std_vals = vec![F::zero(); ncols];
    for i in 0..m {
        std_vals[tab.basis[i]] = tab.rhs(i).clone();
    }
    let mut x = Vec::with_capacity(problem.n);
    for j in 0..problem.n {
        let v = match &colmap[j] {
            ColMap::Shifted { col, offset } => offset.clone() + std_vals[*col].clone(),
            ColMap::NegShifted { col, offset } => offset.clone() - std_vals[*col].clone(),
            ColMap::Split { pos, neg } => std_vals[*pos].clone() - std_vals[*neg].clone(),
        };
        x.push(v);
    }
    let mut value = knn_num::field::dot(objective, &x);
    // Guard against -0.0 style artifacts in the float instantiation.
    if value.is_zero() {
        value = F::zero();
    }
    LpOutcome::Optimal { x, value }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64, q: i64) -> Rat {
        Rat::frac(p, q)
    }

    #[test]
    fn simple_max_f64() {
        // max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6, x,y ≥ 0 → optimum at (8/5, 6/5), value 14/5
        let mut lp = LpProblem::<f64>::new(2);
        lp.set_lower(0, 0.0);
        lp.set_lower(1, 0.0);
        lp.add_dense(&[1.0, 2.0], Rel::Le, 4.0);
        lp.add_dense(&[3.0, 1.0], Rel::Le, 6.0);
        match lp.solve(&[1.0, 1.0], Objective::Maximize) {
            LpOutcome::Optimal { x, value } => {
                assert!((value - 2.8).abs() < 1e-9);
                assert!((x[0] - 1.6).abs() < 1e-9 && (x[1] - 1.2).abs() < 1e-9);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn simple_max_exact() {
        let mut lp = LpProblem::<Rat>::new(2);
        lp.set_lower(0, Rat::zero());
        lp.set_lower(1, Rat::zero());
        lp.add_dense(&[r(1, 1), r(2, 1)], Rel::Le, r(4, 1));
        lp.add_dense(&[r(3, 1), r(1, 1)], Rel::Le, r(6, 1));
        match lp.solve(&[r(1, 1), r(1, 1)], Objective::Maximize) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(14, 5));
                assert_eq!(x, vec![r(8, 5), r(6, 5)]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn free_variables_and_equalities() {
        // min x s.t. x + y = 3, y ≤ 1, both free → x ≥ 2, optimum x = 2.
        let mut lp = LpProblem::<Rat>::new(2);
        lp.add_dense(&[r(1, 1), r(1, 1)], Rel::Eq, r(3, 1));
        lp.add_dense(&[r(0, 1), r(1, 1)], Rel::Le, r(1, 1));
        match lp.solve(&[r(1, 1), r(0, 1)], Objective::Minimize) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(2, 1));
                assert_eq!(x[0].clone() + x[1].clone(), r(3, 1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::<Rat>::new(1);
        lp.add_dense(&[r(1, 1)], Rel::Ge, r(2, 1));
        lp.add_dense(&[r(1, 1)], Rel::Le, r(1, 1));
        assert_eq!(lp.solve(&[r(1, 1)], Objective::Minimize), LpOutcome::Infeasible);
        assert!(lp.feasible_point().is_none());
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::<Rat>::new(1);
        lp.add_dense(&[r(1, 1)], Rel::Ge, r(0, 1));
        assert_eq!(lp.solve(&[r(1, 1)], Objective::Maximize), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows() {
        // x ≥ -5 written as -x ≤ 5 and x ≤ -1: feasible, max x = -1.
        let mut lp = LpProblem::<Rat>::new(1);
        lp.add_dense(&[r(-1, 1)], Rel::Le, r(5, 1));
        lp.add_dense(&[r(1, 1)], Rel::Le, r(-1, 1));
        match lp.solve(&[r(1, 1)], Objective::Maximize) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(value, r(-1, 1));
                assert_eq!(x[0], r(-1, 1));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn strict_feasibility_open_interval() {
        // 0 < x < 1 is strict-feasible; 0 < x < 0 is not.
        let mut lp = LpProblem::<Rat>::new(1);
        lp.add_dense(&[r(1, 1)], Rel::Gt, r(0, 1));
        lp.add_dense(&[r(1, 1)], Rel::Lt, r(1, 1));
        let p = lp.strict_feasible().expect("open interval nonempty");
        assert!(p[0] > r(0, 1) && p[0] < r(1, 1));

        let mut bad = LpProblem::<Rat>::new(1);
        bad.add_dense(&[r(1, 1)], Rel::Gt, r(0, 1));
        bad.add_dense(&[r(1, 1)], Rel::Lt, r(0, 1));
        assert!(bad.strict_feasible().is_none());
    }

    #[test]
    fn strict_feasibility_boundary_only() {
        // x ≥ 1, x ≤ 1, x > 1: the non-strict system is feasible but only at
        // the boundary, so the strict system must be reported infeasible.
        let mut lp = LpProblem::<Rat>::new(1);
        lp.add_dense(&[r(1, 1)], Rel::Ge, r(1, 1));
        lp.add_dense(&[r(1, 1)], Rel::Le, r(1, 1));
        lp.add_dense(&[r(1, 1)], Rel::Gt, r(1, 1));
        assert!(lp.strict_feasible().is_none());
    }

    #[test]
    fn strict_mixed_with_equalities() {
        // x + y = 1, x > 0, y > 0 → strict-feasible (interior of a segment).
        let mut lp = LpProblem::<Rat>::new(2);
        lp.add_dense(&[r(1, 1), r(1, 1)], Rel::Eq, r(1, 1));
        lp.add_dense(&[r(1, 1), r(0, 1)], Rel::Gt, r(0, 1));
        lp.add_dense(&[r(0, 1), r(1, 1)], Rel::Gt, r(0, 1));
        let p = lp.strict_feasible().expect("segment interior nonempty");
        assert_eq!(p[0].clone() + p[1].clone(), r(1, 1));
        assert!(p[0].is_positive() && p[1].is_positive());
    }

    #[test]
    fn fix_var_equality() {
        let mut lp = LpProblem::<Rat>::new(2);
        lp.fix_var(0, r(7, 2));
        lp.add_dense(&[r(1, 1), r(1, 1)], Rel::Le, r(5, 1));
        match lp.solve(&[r(0, 1), r(1, 1)], Objective::Maximize) {
            LpOutcome::Optimal { x, value } => {
                assert_eq!(x[0], r(7, 2));
                assert_eq!(value, r(3, 2));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example; Bland fallback must terminate.
        let mut lp = LpProblem::<Rat>::new(3);
        for j in 0..3 {
            lp.set_lower(j, Rat::zero());
        }
        lp.add_dense(&[r(1, 4), r(-8, 1), r(-1, 1)], Rel::Le, r(0, 1));
        lp.add_dense(&[r(1, 2), r(-12, 1), r(-1, 2)], Rel::Le, r(0, 1));
        lp.add_dense(&[r(0, 1), r(0, 1), r(1, 1)], Rel::Le, r(1, 1));
        match lp.solve(&[r(3, 4), r(-20, 1), r(1, 2)], Objective::Maximize) {
            LpOutcome::Optimal { value, .. } => {
                assert!(value >= Rat::zero());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn upper_bounded_variables() {
        let mut lp = LpProblem::<f64>::new(2);
        lp.set_lower(0, 0.0);
        lp.set_upper(0, 2.0);
        lp.set_upper(1, 3.0); // only an upper bound: variable otherwise free
        lp.add_dense(&[1.0, 1.0], Rel::Ge, 1.0);
        match lp.solve(&[1.0, 1.0], Objective::Maximize) {
            LpOutcome::Optimal { x, value } => {
                assert!((value - 5.0).abs() < 1e-9);
                assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn exact_and_float_agree_on_random_lps() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(1..4usize);
            let m = rng.gen_range(1..5usize);
            let mut lpr = LpProblem::<Rat>::new(n);
            let mut lpf = LpProblem::<f64>::new(n);
            for j in 0..n {
                lpr.set_lower(j, Rat::zero());
                lpf.set_lower(j, 0.0);
                lpr.set_upper(j, Rat::from_int(10i64));
                lpf.set_upper(j, 10.0);
            }
            for _ in 0..m {
                let a: Vec<i64> = (0..n).map(|_| rng.gen_range(-3i64..4)).collect();
                let b = rng.gen_range(-5i64..10);
                let ar: Vec<Rat> = a.iter().map(|&v| Rat::from_int(v)).collect();
                let af: Vec<f64> = a.iter().map(|&v| v as f64).collect();
                lpr.add_dense(&ar, Rel::Le, Rat::from_int(b));
                lpf.add_dense(&af, Rel::Le, b as f64);
            }
            let c: Vec<i64> = (0..n).map(|_| rng.gen_range(-3i64..4)).collect();
            let cr: Vec<Rat> = c.iter().map(|&v| Rat::from_int(v)).collect();
            let cf: Vec<f64> = c.iter().map(|&v| v as f64).collect();
            let outr = lpr.solve(&cr, Objective::Maximize);
            let outf = lpf.solve(&cf, Objective::Maximize);
            match (outr, outf) {
                (LpOutcome::Optimal { value: vr, .. }, LpOutcome::Optimal { value: vf, .. }) => {
                    assert!(
                        (vr.to_f64() - vf).abs() < 1e-6,
                        "objective mismatch: exact {vr} vs float {vf}"
                    );
                }
                (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                (a, b) => panic!("outcome class mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
