//! Linear programming for the `explainable-knn` workspace.
//!
//! A two-phase dense-tableau simplex solver, generic over [`knn_num::Field`]:
//! exact big-rational arithmetic for the theory-facing paths (tie-correct
//! feasibility of the polyhedra in Propositions 1 and 3) and tolerance-based
//! `f64` for the benchmarking paths and as the relaxation engine of `knn-milp`.
//!
//! Strict inequalities — needed because the set `{x : f(x) = 0}` of the
//! optimistic k-NN classifier is a union of *open* polyhedra — are handled by
//! the ε-maximization reduction used in the proof of Proposition 3: every
//! strict row `l(x) > r` becomes `l(x) − ε ≥ r` and the solver maximizes `ε`;
//! the strict system is feasible iff the optimum has `ε > 0`.
//!
//! Anti-cycling: Dantzig pricing with an automatic switch to Bland's rule
//! after a stall, which guarantees termination in the exact instantiation.
//!
//! ```
//! use knn_lp::{LpProblem, LpOutcome, Objective, Rel};
//!
//! // max x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6,  x, y ∈ [0, 10].
//! let mut lp = LpProblem::<f64>::new(2);
//! lp.set_lower(0, 0.0); lp.set_upper(0, 10.0);
//! lp.set_lower(1, 0.0); lp.set_upper(1, 10.0);
//! lp.add_dense(&[1.0, 2.0], Rel::Le, 4.0);
//! lp.add_dense(&[3.0, 1.0], Rel::Le, 6.0);
//! match lp.solve(&[1.0, 1.0], Objective::Maximize) {
//!     LpOutcome::Optimal { value, .. } => assert!((value - 2.8).abs() < 1e-9),
//!     other => panic!("{other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod problem;
pub mod simplex;

pub use problem::{LpOutcome, LpProblem, Objective, Rel};

/// Thread-local work tally for resource accounting.
///
/// Every simplex invocation (including the ones behind `feasible_point` and
/// `strict_feasible`) bumps a thread-local counter; a serving layer reads the
/// counter before/after a query's compute phase and attributes the delta to
/// the query's route. The bump is a non-atomic `Cell` increment — no shared
/// state, no effect on solver results.
pub mod tally {
    use std::cell::Cell;

    thread_local! {
        static LP_SOLVES: Cell<u64> = const { Cell::new(0) };
    }

    /// Monotonic count of simplex solves started on this thread.
    pub fn lp_solves() -> u64 {
        LP_SOLVES.with(|c| c.get())
    }

    pub(crate) fn bump_lp_solves() {
        LP_SOLVES.with(|c| c.set(c.get().wrapping_add(1)));
    }
}
