//! Problem builder API for linear programs.

use knn_num::Field;

/// Relation of a linear constraint `a·x (rel) b`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
    /// `a·x < b` (strict; only usable through [`LpProblem::strict_feasible`])
    Lt,
    /// `a·x > b` (strict; only usable through [`LpProblem::strict_feasible`])
    Gt,
}

impl Rel {
    /// True for the strict relations.
    pub fn is_strict(self) -> bool {
        matches!(self, Rel::Lt | Rel::Gt)
    }
}

/// Optimization sense.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Objective {
    /// Maximize the objective vector.
    Maximize,
    /// Minimize the objective vector.
    Minimize,
}

#[derive(Clone, Debug)]
pub(crate) struct Row<F> {
    pub coeffs: Vec<(usize, F)>,
    pub rel: Rel,
    pub rhs: F,
}

/// Result of solving a linear program.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome<F> {
    /// An optimal solution (values of the structural variables) and its objective value.
    Optimal {
        /// The optimal assignment of the structural variables.
        x: Vec<F>,
        /// The objective value at `x`.
        value: F,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

impl<F: Field> LpOutcome<F> {
    /// The optimal point, if any.
    pub fn point(&self) -> Option<&[F]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// True iff the outcome is `Optimal`.
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal { .. })
    }
}

/// A linear program over `n` free variables.
///
/// Variables are unrestricted in sign by default (the explanation polyhedra
/// live in all of `ℝⁿ`); lower/upper bounds can be attached per variable.
#[derive(Clone, Debug)]
pub struct LpProblem<F> {
    pub(crate) n: usize,
    pub(crate) rows: Vec<Row<F>>,
    pub(crate) lower: Vec<Option<F>>,
    pub(crate) upper: Vec<Option<F>>,
}

impl<F: Field> LpProblem<F> {
    /// Creates a program with `n` free variables.
    pub fn new(n: usize) -> Self {
        LpProblem { n, rows: Vec::new(), lower: vec![None; n], upper: vec![None; n] }
    }

    /// Number of structural variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints added so far.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Adds a sparse constraint `Σ coeffs[i].1 · x_{coeffs[i].0} (rel) rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, F)>, rel: Rel, rhs: F) {
        for &(j, _) in &coeffs {
            assert!(j < self.n, "variable index {j} out of range");
        }
        self.rows.push(Row { coeffs, rel, rhs });
    }

    /// Adds a dense constraint `a·x (rel) rhs`.
    pub fn add_dense(&mut self, a: &[F], rel: Rel, rhs: F) {
        assert_eq!(a.len(), self.n);
        let coeffs = a
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(j, c)| (j, c.clone()))
            .collect();
        self.rows.push(Row { coeffs, rel, rhs });
    }

    /// Fixes `x_j = v` (an equality row; used for the affine subspaces `U(X, x̄)`).
    pub fn fix_var(&mut self, j: usize, v: F) {
        self.add_constraint(vec![(j, F::one())], Rel::Eq, v);
    }

    /// Sets a lower bound `x_j ≥ v`.
    pub fn set_lower(&mut self, j: usize, v: F) {
        self.lower[j] = Some(v);
    }

    /// Sets an upper bound `x_j ≤ v`.
    pub fn set_upper(&mut self, j: usize, v: F) {
        self.upper[j] = Some(v);
    }

    /// True iff any constraint is strict.
    pub fn has_strict(&self) -> bool {
        self.rows.iter().any(|r| r.rel.is_strict())
    }
}
