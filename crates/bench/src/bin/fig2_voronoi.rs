//! Figure 2: minimum-distance ℓ2 counterfactuals over ℝ², k = 1 — rendered
//! as an ASCII decision-region map with the input point, its optimal
//! counterfactual and the connecting segment.
//!
//! cargo run --release -p knn-bench --bin fig2_voronoi

use knn_core::counterfactual::l2::L2Counterfactual;
use knn_core::{ContinuousKnn, Label, LpMetric, OddK};
use knn_datasets::blobs::figure2_layout;
use rand::rngs::StdRng;
use rand::SeedableRng;

const W: usize = 78;
const H: usize = 36;
const XMIN: f64 = -3.2;
const XMAX: f64 = 3.2;
const YMIN: f64 = -3.2;
const YMAX: f64 = 3.2;

fn to_cell(x: f64, y: f64) -> Option<(usize, usize)> {
    let cx = ((x - XMIN) / (XMAX - XMIN) * W as f64) as isize;
    let cy = ((YMAX - y) / (YMAX - YMIN) * H as f64) as isize;
    (cx >= 0 && cx < W as isize && cy >= 0 && cy < H as isize).then_some((cx as usize, cy as usize))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let ds = figure2_layout(&mut rng);
    let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
    let cf = L2Counterfactual::new(&ds, OddK::ONE);

    // Region map: '.' negative (blue in the paper), '+' positive (red).
    let mut grid = vec![vec![' '; W]; H];
    for (r, row) in grid.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let x = XMIN + (c as f64 + 0.5) / W as f64 * (XMAX - XMIN);
            let y = YMAX - (r as f64 + 0.5) / H as f64 * (YMAX - YMIN);
            *cell = match knn.classify(&[x, y]) {
                Label::Positive => '+',
                Label::Negative => '.',
            };
        }
    }
    // Training points.
    for (p, l) in ds.iter() {
        if let Some((c, r)) = to_cell(p[0], p[1]) {
            grid[r][c] = if l == Label::Positive { 'P' } else { 'N' };
        }
    }
    // The illustrated input point and its optimal counterfactual.
    let input = [0.4, 0.6];
    let inf = cf.infimum(&input).expect("both classes present");
    let target = &inf.closure_witness;
    // Segment between them.
    for t in 0..60 {
        let s = t as f64 / 59.0;
        let x = input[0] + s * (target[0] - input[0]);
        let y = input[1] + s * (target[1] - input[1]);
        if let Some((c, r)) = to_cell(x, y) {
            if grid[r][c] == '+' || grid[r][c] == '.' {
                grid[r][c] = '*';
            }
        }
    }
    if let Some((c, r)) = to_cell(input[0], input[1]) {
        grid[r][c] = 'X';
    }
    if let Some((c, r)) = to_cell(target[0], target[1]) {
        grid[r][c] = 'Y';
    }

    println!("Figure 2 — ℓ2 counterfactual geometry (k = 1)");
    println!("'+' positive region, '.' negative region, P/N training points,");
    println!("X input point, Y optimal counterfactual, * the connecting segment\n");
    for row in &grid {
        println!("{}", row.iter().collect::<String>());
    }
    println!(
        "\ninput X = {input:?} classified {:?}; optimal counterfactual Y = ({:.3}, {:.3}) at ℓ2 distance {:.3} (attained: {})",
        knn.classify(&input),
        target[0],
        target[1],
        inf.dist_sq.sqrt(),
        inf.attained,
    );
}
