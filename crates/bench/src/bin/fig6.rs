//! Figure 6: explanation runtimes on digit images (the MNIST substitute),
//! sweeping the image side length and training-set size.
//!
//! * panel (a): minimal sufficient reason under ℓ1, k = 1 (Prop 4 + greedy);
//! * panel (b): closest counterfactual under ℓ2, k = 1 (Thm 2, projection QPs).
//!
//! Usage:
//!   cargo run --release -p knn-bench --bin fig6 -- --which msr
//!   cargo run --release -p knn-bench --bin fig6 -- --which cf
//!   ... [--sides 12,16,20,24,28] [--sizes 250,500,750,1000] [--repeats 5] [--full]

use knn_bench::{arg_flag, arg_value, parse_list, print_row, time_runs};
use knn_core::abductive::l1::minimal_sufficient_reason_f64;
use knn_core::counterfactual::l2::L2Counterfactual;
use knn_core::OddK;
use knn_datasets::digits::{digits_dataset, render_digit, DigitsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let which = arg_value("--which").unwrap_or_else(|| "msr".to_string());
    let full = arg_flag("--full");
    let repeats: usize =
        arg_value("--repeats").map(|s| s.parse().unwrap()).unwrap_or(if full { 5 } else { 3 });
    let sides = arg_value("--sides").map(|s| parse_list(&s)).unwrap_or_else(|| {
        if full {
            vec![12, 16, 20, 24, 28]
        } else {
            vec![8, 10, 12]
        }
    });
    let sizes = arg_value("--sizes").map(|s| parse_list(&s)).unwrap_or_else(|| {
        if full {
            vec![250, 500, 750, 1000]
        } else {
            vec![100, 200]
        }
    });

    println!(
        "Figure 6{} — {} on digit images (MNIST substitute)",
        if which == "msr" { "a" } else { "b" },
        if which == "msr" { "minimal sufficient reasons (ℓ1)" } else { "counterfactuals (ℓ2)" }
    );
    println!("sides = {sides:?}, N = {sizes:?}, repeats = {repeats}\n");
    println!("series = N (training size), x = image side length, y = seconds\n");

    for &n_total in &sizes {
        for &side in &sides {
            let per_class = (n_total / 2).max(1);
            let stats = time_runs(repeats, |run| {
                let mut rng = StdRng::seed_from_u64((n_total * 100 + side) as u64 + run as u64);
                let cfg = DigitsConfig::new(side);
                // 4-vs-9, the paper's running pair.
                let ds = digits_dataset(&mut rng, &cfg, &[4, 9], 4, per_class);
                let query = render_digit(&mut rng, 4, &cfg);
                match which.as_str() {
                    "msr" => {
                        let sr = minimal_sufficient_reason_f64(&ds, &query);
                        assert!(sr.len() <= side * side);
                    }
                    "cf" => {
                        let cf = L2Counterfactual::new(&ds, OddK::ONE);
                        let inf = cf.infimum(&query).expect("both classes present");
                        assert!(inf.dist_sq >= 0.0);
                    }
                    other => panic!("unknown --which {other}"),
                }
            });
            print_row(&format!("N={n_total}"), side, stats);
        }
        println!();
    }
}
