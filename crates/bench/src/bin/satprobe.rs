use knn_core::satenc::DiscreteModel;
use knn_core::{BooleanKnn, OddK};
use knn_datasets::digits::{binarize, binary_digits_dataset, render_digit, DigitsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let side: usize = std::env::args().nth(1).unwrap().parse().unwrap();
    let per: usize = std::env::args().nth(2).unwrap().parse().unwrap();
    let cfg = DigitsConfig::new(side);
    let mut rng = StdRng::seed_from_u64(4000);
    let ds = binary_digits_dataset(&mut rng, &cfg, &[4, 9], 4, per);
    let test = binarize(&render_digit(&mut rng, 4, &cfg), 0.5);
    let knn = BooleanKnn::new(&ds, OddK::ONE);
    let target = knn.classify(&test).flip();
    eprintln!("target {target:?} dim {} pts {}", ds.dim(), ds.len());
    let mut m = DiscreteModel::build(&ds, OddK::ONE, &test, target);
    let t0 = Instant::now();
    let first = m.solve_within(ds.dim()).unwrap();
    let mut best = test.hamming(&first);
    eprintln!("UB {} in {:?} (conflicts {})", best, t0.elapsed(), m.conflicts());
    loop {
        let t = Instant::now();
        match m.solve_within(best - 1) {
            Some(z) => {
                best = test.hamming(&z);
                eprintln!(
                    "improved to {} in {:?} (conflicts {})",
                    best,
                    t.elapsed(),
                    m.conflicts()
                );
            }
            None => {
                eprintln!(
                    "optimal {} proof in {:?} (conflicts {})",
                    best,
                    t.elapsed(),
                    m.conflicts()
                );
                break;
            }
        }
    }
}
