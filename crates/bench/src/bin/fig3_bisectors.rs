//! Figures 3–4: the set of points equidistant from two points ā, c̄ under ℓ2
//! (a hyperplane — the linchpin of Section 5's tractability results) versus
//! ℓ1 (a piecewise-linear region that can have full-dimensional pieces —
//! why Section 6's problems turn hard).
//!
//! cargo run --release -p knn-bench --bin fig3_bisectors

const W: usize = 64;
const H: usize = 32;
const SPAN: f64 = 4.0;

fn render(name: &str, dist: impl Fn(f64, f64, f64, f64) -> f64) {
    let (ax, ay) = (-1.0, -0.6);
    let (cx, cy) = (1.2, 0.9);
    println!(
        "{name}: 'a'/'c' the two points, '=' equidistant band, '<' closer to a, '>' closer to c\n"
    );
    for r in 0..H {
        let mut line = String::with_capacity(W);
        for col in 0..W {
            let x = -SPAN + (col as f64 + 0.5) / W as f64 * 2.0 * SPAN;
            let y = SPAN - (r as f64 + 0.5) / H as f64 * 2.0 * SPAN;
            let da = dist(x, y, ax, ay);
            let dc = dist(x, y, cx, cy);
            let cell_w = 2.0 * SPAN / W as f64;
            let ch = if (x - ax).abs() < cell_w && (y - ay).abs() < cell_w * 2.0 {
                'a'
            } else if (x - cx).abs() < cell_w && (y - cy).abs() < cell_w * 2.0 {
                'c'
            } else if (da - dc).abs() < 0.08 {
                '='
            } else if da < dc {
                '<'
            } else {
                '>'
            };
            line.push(ch);
        }
        println!("{line}");
    }
    println!();
}

fn main() {
    println!("Figures 3 and 4 — equidistant sets under ℓ2 vs ℓ1\n");
    render("Figure 3 (ℓ2: the bisector is a straight hyperplane)", |x, y, px, py| {
        ((x - px).powi(2) + (y - py).powi(2)).sqrt()
    });
    render("Figure 4 (ℓ1: the bisector bends and can fatten)", |x, y, px, py| {
        (x - px).abs() + (y - py).abs()
    });
    println!(
        "Under ℓ2 the constraint d(y,a) ≤ d(y,c) is linear in y — Prop 1 regions are\n\
         polyhedra and Prop 3 / Thm 2 get polynomial algorithms. Under ℓ1 it is not,\n\
         and Thm 4 / Thm 5 show the corresponding problems are NP-/coNP-complete."
    );
}
