//! Ablation for the counterfactual distance-search strategy (DESIGN.md §4½):
//! §9.2 suggests binary or linear search on the SAT distance bound; because
//! UNSAT (optimality-proof) queries dominate CDCL runtime, this repository
//! defaults to a *descending* search with exactly one final UNSAT call. This
//! harness measures both on the same instances, reporting wall time and
//! solver conflicts.
//!
//! Usage: cargo run --release -p knn-bench --bin ablation_search
//!        [--rounds 10] [--dims 30,60] [--points 100,200]

use knn_bench::{arg_value, parse_list, Stats};
use knn_core::satenc::DiscreteModel;
use knn_core::{BooleanKnn, OddK};
use knn_datasets::random::{random_boolean_dataset, random_boolean_point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let rounds: usize = arg_value("--rounds").map(|s| s.parse().unwrap()).unwrap_or(10);
    let dims = arg_value("--dims").map(|s| parse_list(&s)).unwrap_or_else(|| vec![30, 60]);
    let sizes = arg_value("--points").map(|s| parse_list(&s)).unwrap_or_else(|| vec![100, 200]);

    println!("SAT distance-search ablation: descending vs binary (k = 1)\n");
    for &n_points in &sizes {
        for &dim in &dims {
            let mut t_desc = Vec::new();
            let mut t_bin = Vec::new();
            let mut c_desc = 0u64;
            let mut c_bin = 0u64;
            for run in 0..rounds {
                let mut rng = StdRng::seed_from_u64((n_points * 7919 + dim) as u64 + run as u64);
                let ds = random_boolean_dataset(&mut rng, n_points, dim, 0.5);
                let x = random_boolean_point(&mut rng, dim);
                let knn = BooleanKnn::new(&ds, OddK::ONE);
                let target = knn.classify(&x).flip();

                let t0 = Instant::now();
                let mut m = DiscreteModel::build(&ds, OddK::ONE, &x, target);
                let a = m.closest();
                t_desc.push(t0.elapsed().as_secs_f64());
                c_desc += m.conflicts();

                let t0 = Instant::now();
                let mut m = DiscreteModel::build(&ds, OddK::ONE, &x, target);
                let b = m.closest_binary_search();
                t_bin.push(t0.elapsed().as_secs_f64());
                c_bin += m.conflicts();

                assert_eq!(
                    a.as_ref().map(|(_, d)| *d),
                    b.as_ref().map(|(_, d)| *d),
                    "strategies must agree on the optimal distance"
                );
            }
            let sd = Stats::from_samples(&t_desc);
            let sb = Stats::from_samples(&t_bin);
            println!(
                "N={n_points:<5} n={dim:<5} descending {:>9.4}s ±{:.4} ({} conflicts)   binary {:>9.4}s ±{:.4} ({} conflicts)",
                sd.mean, sd.ci95, c_desc / rounds as u64, sb.mean, sb.ci95, c_bin / rounds as u64
            );
        }
    }
}
