//! Figure 1 harness: the digit-counterfactual demo with configurable size.
//! (The `mnist_counterfactual` example is the narrative version; this binary
//! sweeps seeds and reports the counterfactual sizes, echoing the "13 pixels"
//! observation of the paper.)
//!
//! cargo run --release -p knn-bench --bin fig1_counterfactual_demo -- [--side 16] [--per-class 40] [--trials 5]

use knn_bench::arg_value;
use knn_core::counterfactual::hamming::closest_sat_budgeted;
use knn_core::{BooleanKnn, OddK};
use knn_datasets::digits::{binarize, binary_digits_dataset, render_digit, DigitsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side: usize = arg_value("--side").map(|s| s.parse().unwrap()).unwrap_or(12);
    let per_class: usize = arg_value("--per-class").map(|s| s.parse().unwrap()).unwrap_or(30);
    let trials: usize = arg_value("--trials").map(|s| s.parse().unwrap()).unwrap_or(3);
    let cfg = DigitsConfig::new(side);

    println!("Figure 1 — counterfactual sizes for digit 4 vs 9 at {side}×{side} ({per_class} images/class)\n");
    let mut sizes = Vec::new();
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(4000 + trial as u64);
        let ds = binary_digits_dataset(&mut rng, &cfg, &[4, 9], 4, per_class);
        let test = binarize(&render_digit(&mut rng, 4, &cfg), 0.5);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let before = knn.classify(&test);
        let (cf, d, proven) =
            closest_sat_budgeted(&ds, OddK::ONE, &test, 100_000).expect("counterfactual exists");
        assert_ne!(knn.classify(&cf), before);
        println!(
            "trial {trial}: classified {before}; closest counterfactual flips {d} of {} pixels{}",
            side * side,
            if proven { " (proven minimal)" } else { " (budget-best)" }
        );
        sizes.push(d);
    }
    let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    println!(
        "\nmean counterfactual size: {mean:.1} pixels — the paper's instance needed 13 of 784."
    );
}
