//! Figure 5: runtimes for discrete counterfactual explanations over random
//! `{0,1}ⁿ` data — SAT (panel b) vs IQP/MILP (panel a).
//!
//! Usage:
//!   cargo run --release -p knn-bench --bin fig5 -- --method sat
//!   cargo run --release -p knn-bench --bin fig5 -- --method iqp
//!   ... [--dims 50,100,...] [--sizes 300,500,...] [--repeats 30] [--full]
//!
//! Defaults are scaled down so the sweep completes in minutes; `--full`
//! restores the paper's parameters (dims 50..350, N up to 2000/900, 30
//! repeats). Our MILP is a from-scratch branch & bound, not Gurobi on 8
//! threads, so the IQP panel is expected to be slower in absolute terms
//! (EXPERIMENTS.md discusses the comparison).

use knn_bench::{arg_flag, arg_value, parse_list, print_row, time_runs};
use knn_core::counterfactual::hamming::{closest_milp_with, closest_sat};
use knn_core::OddK;
use knn_datasets::random::{random_boolean_dataset, random_boolean_point};
use knn_milp::MilpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let method = arg_value("--method").unwrap_or_else(|| "sat".to_string());
    let full = arg_flag("--full");
    let repeats: usize =
        arg_value("--repeats").map(|s| s.parse().unwrap()).unwrap_or(if full { 30 } else { 3 });
    let dims = arg_value("--dims").map(|s| parse_list(&s)).unwrap_or_else(|| {
        if full {
            vec![50, 100, 150, 200, 250, 300, 350]
        } else {
            vec![30, 60, 90, 120]
        }
    });
    let sizes = arg_value("--sizes").map(|s| parse_list(&s)).unwrap_or_else(|| {
        match (method.as_str(), full) {
            ("sat", true) => vec![300, 500, 700, 900],
            ("sat", false) => vec![100, 200, 300],
            (_, true) => vec![500, 1000, 1500, 2000],
            (_, false) => vec![30, 60],
        }
    });

    println!(
        "Figure 5{} — discrete counterfactuals via {}",
        if method == "sat" { "b" } else { "a" },
        method.to_uppercase()
    );
    println!("dims = {dims:?}, N = {sizes:?}, repeats = {repeats}\n");
    println!("series = N (total training points), x = dimension n, y = seconds\n");

    for &n_points in &sizes {
        for &dim in &dims {
            let mut skipped = 0usize;
            let stats = time_runs(repeats, |run| {
                let mut rng = StdRng::seed_from_u64((n_points * 1000 + dim) as u64 + run as u64);
                let ds = random_boolean_dataset(&mut rng, n_points, dim, 0.5);
                let x = random_boolean_point(&mut rng, dim);
                match method.as_str() {
                    "sat" => {
                        let out = closest_sat(&ds, OddK::ONE, &x);
                        assert!(out.is_some(), "both classes are guaranteed nonempty");
                    }
                    "iqp" | "milp" => {
                        // A bounded node budget keeps adversarial seeds from
                        // stalling the sweep; exhaustions are reported.
                        let cfg = MilpConfig {
                            max_nodes: 200_000,
                            rounding_heuristic: true,
                            ..Default::default()
                        };
                        match closest_milp_with(&ds, &x, cfg) {
                            Ok(out) => assert!(out.is_some()),
                            Err(()) => skipped += 1,
                        }
                    }
                    other => panic!("unknown --method {other}"),
                }
            });
            print_row(&format!("N={n_points}"), dim, stats);
            if skipped > 0 {
                println!("              ({skipped}/{repeats} runs hit the MILP node budget)");
            }
        }
        println!();
    }
}
