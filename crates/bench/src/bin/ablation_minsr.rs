//! Beyond the paper: how good are polynomial upper bounds for the NP-hard
//! **Minimum Sufficient Reason** problem? (§10, third open problem: "can
//! k-Minimum Sufficient Reason be tackled using polynomial-time approximation
//! algorithms that produce a sufficient reason whose size is reasonably close
//! to the minimum?")
//!
//! On random discrete instances this harness compares, per instance:
//! * `exact` — the implicit-hitting-set loop with exact hitting sets
//!   (ground-truth minimum);
//! * `greedy` — the same loop with greedy hitting sets (polynomial per
//!   iteration, the classic ln-approximation shape);
//! * `minimal` — Proposition 2's greedy-deletion minimal SR (polynomial,
//!   what the tractable Check-SR settings give you for free).
//!
//! Usage: cargo run --release -p knn-bench --bin ablation_minsr
//!        [--rounds 200] [--dim 10] [--points 12] [--k 1|3]

use knn_bench::{arg_value, Stats};
use knn_core::abductive::hamming::HammingAbductive;
use knn_core::abductive::minimum::HittingSetMode;
use knn_core::{BooleanKnn, OddK};
use knn_datasets::random::{random_boolean_dataset, random_boolean_point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let rounds: usize = arg_value("--rounds").map(|s| s.parse().unwrap()).unwrap_or(200);
    let dim: usize = arg_value("--dim").map(|s| s.parse().unwrap()).unwrap_or(10);
    let points: usize = arg_value("--points").map(|s| s.parse().unwrap()).unwrap_or(12);
    let k = OddK::of(arg_value("--k").map(|s| s.parse().unwrap()).unwrap_or(1));

    println!(
        "Minimum-SR approximability probe (discrete, k = {}, n = {dim}, N = {points})",
        k.get()
    );
    println!("{rounds} random instances; sizes and size-ratios vs the exact minimum\n");

    let mut ratios_greedy = Vec::new();
    let mut ratios_minimal = Vec::new();
    let mut greedy_opt = 0usize;
    let mut minimal_opt = 0usize;
    let mut t_exact = Vec::new();
    let mut t_greedy = Vec::new();
    let mut t_minimal = Vec::new();

    for round in 0..rounds {
        let mut rng = StdRng::seed_from_u64(0xAB1A + round as u64);
        let ds = random_boolean_dataset(&mut rng, points, dim, 0.5);
        let x = random_boolean_point(&mut rng, dim);
        let ab = HammingAbductive::new(&ds, k);
        let knn = BooleanKnn::new(&ds, k);
        let _ = knn.classify(&x);

        let t0 = Instant::now();
        let exact = ab.minimum_with(&x, HittingSetMode::Exact);
        t_exact.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let greedy = ab.minimum_with(&x, HittingSetMode::Greedy);
        t_greedy.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let minimal = ab.minimal(&x);
        t_minimal.push(t0.elapsed().as_secs_f64());

        assert!(exact.len() <= greedy.len());
        assert!(exact.len() <= minimal.len());
        if exact.is_empty() {
            // Label constant over the whole cube: every method returns ∅.
            ratios_greedy.push(1.0);
            ratios_minimal.push(1.0);
            greedy_opt += 1;
            minimal_opt += 1;
            continue;
        }
        ratios_greedy.push(greedy.len() as f64 / exact.len() as f64);
        ratios_minimal.push(minimal.len() as f64 / exact.len() as f64);
        if greedy.len() == exact.len() {
            greedy_opt += 1;
        }
        if minimal.len() == exact.len() {
            minimal_opt += 1;
        }
    }

    let summarize =
        |name: &str, ratios: &[f64], opt: usize, times: &[f64]| {
            let s = Stats::from_samples(ratios);
            let worst = ratios.iter().cloned().fold(1.0f64, f64::max);
            let t = Stats::from_samples(times);
            println!(
            "{name:>8}: mean ratio {:.4} ±{:.4}  worst {:.3}  optimal on {}/{}  mean time {:.2e}s",
            s.mean, s.ci95, worst, opt, ratios.len(), t.mean
        );
        };
    println!("            (ratio = size / exact-minimum size; 1.0 = optimal)");
    summarize("greedy", &ratios_greedy, greedy_opt, &t_greedy);
    summarize("minimal", &ratios_minimal, minimal_opt, &t_minimal);
    let te = Stats::from_samples(&t_exact);
    println!("   exact: mean time {:.2e}s (IHS + exact hitting sets)", te.mean);
}
