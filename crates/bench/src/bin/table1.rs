//! Table 1: the complexity landscape, empirically cross-checked.
//!
//! For every cell of the paper's summary table this harness runs live
//! evidence on randomized instances:
//! * **P cells** — the polynomial algorithm agrees with a brute-force oracle;
//! * **hardness cells** — the executable reduction maps a classical problem
//!   instance so that source and target answers coincide.
//!
//! cargo run --release -p knn-bench --bin table1

use knn_core::abductive::hamming::HammingAbductive;
use knn_core::abductive::l1::L1Abductive;
use knn_core::abductive::l2::L2Abductive;
use knn_core::counterfactual::hamming as cf_hamming;
use knn_core::counterfactual::l2::L2Counterfactual;
use knn_core::{brute, BitVec, BooleanDataset, BooleanKnn, ContinuousDataset, OddK};
use knn_datasets::combinatorial::{random_knapsack, random_partition};
use knn_datasets::graphs::random_graph;
use knn_num::Rat;
use knn_reductions::{
    bmcf, interdiction, knapsack_l1, partition_l1, vc_check_sr, vertex_cover_msr,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_bool_ds(rng: &mut StdRng, npts: usize, dim: usize) -> (BooleanDataset, BitVec) {
    let ds = knn_datasets::random::random_boolean_dataset(rng, npts, dim, 0.5);
    let x = knn_datasets::random::random_boolean_point(rng, dim);
    (ds, x)
}

fn random_rat_ds(rng: &mut StdRng, dim: usize) -> (ContinuousDataset<Rat>, Vec<Rat>) {
    let gen = |rng: &mut StdRng| -> Vec<Rat> {
        (0..dim).map(|_| Rat::from_int(rng.gen_range(-3i64..4))).collect()
    };
    let pos: Vec<Vec<Rat>> = (0..rng.gen_range(1..4usize)).map(|_| gen(rng)).collect();
    let neg: Vec<Vec<Rat>> = (0..rng.gen_range(1..4usize)).map(|_| gen(rng)).collect();
    let x = gen(rng);
    (ContinuousDataset::from_sets(pos, neg), x)
}

fn check(name: &str, trials: usize, mut f: impl FnMut(&mut StdRng, usize) -> bool) {
    let mut rng = StdRng::seed_from_u64(0x7AB1E1);
    let ok = (0..trials).all(|t| f(&mut rng, t));
    println!("  [{}] {name} ({trials} randomized trials)", if ok { "ok" } else { "FAIL" });
    assert!(ok, "cell verification failed: {name}");
}

fn main() {
    println!("Table 1 — complexity landscape, empirically verified\n");

    println!("(ℝ, D₂) — Counterfactual: P for all k (Thm 2)");
    check("ℓ2 CF infimum consistent with dense sampling", 6, |rng, _| {
        let (ds, x) = random_rat_ds(rng, 1);
        let cf = L2Counterfactual::new(&ds, OddK::ONE);
        let knn = knn_core::ContinuousKnn::new(&ds, knn_core::LpMetric::L2, OddK::ONE);
        match cf.infimum(&x) {
            None => true,
            Some(inf) => {
                let d = inf.dist_sq.to_f64().sqrt();
                // No label flip strictly inside the infimum ball (1-D scan).
                (0..50).all(|s| {
                    let t = d * s as f64 / 50.0 * 0.99;
                    for dir in [-1.0, 1.0] {
                        let y = vec![Rat::from_f64(x[0].to_f64() + dir * t)];
                        if knn.classify(&y) != knn.classify(&x) {
                            return false;
                        }
                    }
                    true
                })
            }
        }
    });

    println!("(ℝ, D₂) — Check-SR / minimal SR: P for fixed k (Prop 3, Cor 1)");
    check("ℓ2 Check-SR matches ℓ1/Hamming brute force on binary data", 8, |rng, _| {
        let dim = rng.gen_range(2..5usize);
        let npts = rng.gen_range(2..6);
        let (bds, x) = random_bool_ds(rng, npts, dim);
        let cds = bds.to_continuous::<Rat>();
        let xr: Vec<Rat> = x.iter().map(|b| if b { Rat::one() } else { Rat::zero() }).collect();
        let ab = L2Abductive::new(&cds, OddK::ONE);
        // Sufficiency in the continuous relaxation implies sufficiency over
        // the binary completions (the cube is a subset of ℝⁿ).
        let fixed: Vec<usize> = (0..dim).filter(|_| rng.gen_bool(0.5)).collect();
        let knn = BooleanKnn::new(&bds, OddK::ONE);
        !ab.is_sufficient(&xr, &fixed) || brute::is_sufficient_reason(&knn, &x, &fixed)
    });

    println!("(ℝ, D₂) — Minimum-SR: NP-complete (Thm 1 / Cor 6); Vertex Cover embeds");
    check("VC size = minimum SR size through Thm 1 (continuous, ℓ2)", 4, |rng, _| {
        let g = random_graph(rng, 4, 0.6);
        if g.n_edges() == 0 {
            return true;
        }
        let inst = vertex_cover_msr::continuous_instance(&g, OddK::ONE);
        let msr = L2Abductive::new(&inst.ds, OddK::ONE).minimum(&inst.x);
        msr.len() == g.min_vertex_cover_size()
    });

    println!("(ℝ, D₁) — Counterfactual: NP-complete (Thm 4); Knapsack embeds");
    check("knapsack answer survives the Thm 4 reduction", 8, |rng, _| {
        let inst = random_knapsack(rng, 5, 6, 6);
        let cf = knapsack_l1::instance_k1(&inst);
        inst.brute_force() == knapsack_l1::decide_by_restriction(&inst, &cf)
    });

    println!("(ℝ, D₁) — Check-SR: P for k=1 (Prop 4); coNP-complete k≥3 (Thm 5)");
    check("Prop 4 checker matches Hamming brute force on binary data", 8, |rng, _| {
        let dim = rng.gen_range(2..5usize);
        let npts = rng.gen_range(2..6);
        let (bds, x) = random_bool_ds(rng, npts, dim);
        let cds = bds.to_continuous::<Rat>();
        let xr: Vec<Rat> = x.iter().map(|b| if b { Rat::one() } else { Rat::zero() }).collect();
        let fixed: Vec<usize> = (0..dim).filter(|_| rng.gen_bool(0.5)).collect();
        let ab = L1Abductive::new(&cds);
        let knn = BooleanKnn::new(&bds, OddK::ONE);
        // ℓ1 over ℝ is a relaxation of the cube: sufficiency transfers one way.
        !ab.is_sufficient(&xr, &fixed) || brute::is_sufficient_reason(&knn, &x, &fixed)
    });
    check("partition answer survives the Thm 5 reduction (k=3)", 8, |rng, _| {
        let p = random_partition(rng, 5, 8);
        let inst = partition_l1::instance(&p, OddK::THREE);
        partition_l1::is_sufficient_by_restriction(&p, &inst) != p.brute_force()
    });

    println!("({{0,1}}, D_H) — Counterfactual: NP-complete (Thm 6); VC → BMCF → CF");
    check("SAT counterfactual = brute force", 8, |rng, _| {
        let dim = rng.gen_range(2..6usize);
        let npts = rng.gen_range(2..7);
        let (ds, x) = random_bool_ds(rng, npts, dim);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        match (brute::closest_counterfactual(&knn, &x), cf_hamming::closest_sat(&ds, OddK::ONE, &x))
        {
            (None, None) => true,
            (Some((_, a)), Some((_, b))) => a == b,
            _ => false,
        }
    });
    check("VC → BMCF → CF pipeline equivalence", 5, |rng, _| {
        let g = random_graph(rng, 5, 0.6);
        if g.n_edges() < 2 {
            return true;
        }
        let l = rng.gen_range(1..4usize);
        let b = bmcf::vertex_cover_to_bmcf(&g, l, 0);
        let c = bmcf::bmcf_to_counterfactual(&b);
        cf_hamming::within_sat(&c.ds, c.k, &c.x, c.radius) == g.has_vertex_cover_of_size(l)
    });

    println!("({{0,1}}, D_H) — Check-SR: P k=1 (Prop 6); coNP-complete k≥3 (Thm 7)");
    check("Prop 6 checker = brute force (k=1)", 10, |rng, _| {
        let dim = rng.gen_range(2..6usize);
        let npts = rng.gen_range(2..7);
        let (ds, x) = random_bool_ds(rng, npts, dim);
        let fixed: Vec<usize> = (0..dim).filter(|_| rng.gen_bool(0.4)).collect();
        let ab = HammingAbductive::new(&ds, OddK::ONE);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        ab.is_sufficient(&x, &fixed) == brute::is_sufficient_reason(&knn, &x, &fixed)
    });
    check("VC answer survives the Thm 7 reduction (k=3)", 4, |rng, _| {
        let g = random_graph(rng, 4, 0.6);
        if g.n_edges() == 0 {
            return true;
        }
        let q = rng.gen_range(1..3usize);
        vc_check_sr::vertex_cover_via_check_sr(&g, q, OddK::THREE) == g.has_vertex_cover_of_size(q)
    });

    println!("({{0,1}}, D_H) — Minimum-SR: NP-c k=1 (Cor 6); Σ₂ᵖ-complete k≥3 (Thm 8)");
    check("IHS minimum SR = brute force minimum (k=1 and k=3)", 6, |rng, t| {
        let dim = rng.gen_range(2..5usize);
        let k = if t % 2 == 0 { OddK::ONE } else { OddK::THREE };
        let npts = rng.gen_range(4..7);
        let (ds, x) = random_bool_ds(rng, npts, dim);
        let ab = HammingAbductive::new(&ds, k);
        let knn = BooleanKnn::new(&ds, k);
        ab.minimum(&x).len() == brute::minimum_sufficient_reason(&knn, &x).len()
    });
    check("∃∀-VC answer survives the Thm 8 reduction", 3, |rng, _| {
        let g = random_graph(rng, 4, 0.6);
        if g.n_edges() < 2 {
            return true;
        }
        let p = rng.gen_range(0..2usize);
        let q = rng.gen_range(p + 1..4usize);
        interdiction::eavc_via_minimum_sr(&g, p, q, OddK::THREE)
            == interdiction::exists_forall_vertex_cover(&g, p, q)
    });

    println!("\nAll Table 1 cells verified. Summary (matches the paper):");
    println!("  metric      | CF        | Check-SR k=1 | Check-SR k≥3 | Min-SR k=1 | Min-SR k≥3");
    println!("  (ℝ, D₂)     | P         | P            | P            | NP-c       | NP-c");
    println!("  (ℝ, D₁)     | NP-c      | P            | coNP-c       | NP-c       | NP-h");
    println!("  ({{0,1}},D_H) | NP-c      | P            | coNP-c       | NP-c       | Σ₂ᵖ-c");

    println!("\nDone.");
}
