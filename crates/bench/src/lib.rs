//! Shared harness utilities for the paper-reproduction binaries.
//!
//! Every figure/table binary prints the same rows/series the paper reports:
//! mean wall-clock time with a 95% confidence interval over repeated runs
//! (the paper uses 30 repeats for Figure 5 and 5 for Figure 6; the defaults
//! here are smaller so a full sweep finishes on a laptop — pass `--full` to
//! match the paper's parameters).

#![warn(missing_docs)]

use std::time::Instant;

/// Mean and 95% CI of a sample of seconds.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Sample mean (seconds).
    pub mean: f64,
    /// Half-width of the 95% confidence interval (normal approximation).
    pub ci95: f64,
    /// Sample size.
    pub n: usize,
}

impl Stats {
    /// Computes stats from raw samples.
    pub fn from_samples(samples: &[f64]) -> Stats {
        let n = samples.len();
        assert!(n >= 1);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let ci95 = 1.96 * (var / n as f64).sqrt();
        Stats { mean, ci95, n }
    }
}

/// Times `runs` executions of `f` (re-seeded per run by the caller).
pub fn time_runs(runs: usize, mut f: impl FnMut(usize)) -> Stats {
    let mut samples = Vec::with_capacity(runs);
    for r in 0..runs {
        let t0 = Instant::now();
        f(r);
        samples.push(t0.elapsed().as_secs_f64());
    }
    Stats::from_samples(&samples)
}

/// Reads `--name value` style arguments (no external clap in the offline set).
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Presence of a bare `--flag`.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Parses a comma-separated list of integers.
pub fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').map(|t| t.trim().parse().expect("integer list")).collect()
}

/// Prints one experiment row in a fixed format shared by the fig binaries.
pub fn print_row(series: &str, x: usize, stats: Stats) {
    println!(
        "{series:>12}  x={x:<5}  mean={:>9.4}s  ±{:.4}s  (n={})",
        stats.mean, stats.ci95, stats.n
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_samples() {
        let s = Stats::from_samples(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn stats_ci_grows_with_variance() {
        let tight = Stats::from_samples(&[1.0, 1.1, 0.9]);
        let loose = Stats::from_samples(&[0.0, 2.0, 1.0]);
        assert!(loose.ci95 > tight.ci95);
    }

    #[test]
    fn parse_list_roundtrip() {
        assert_eq!(parse_list("50, 100,150"), vec![50, 100, 150]);
    }
}
