//! Criterion benches for Figure 6: ℓ1 minimal sufficient reasons (panel a)
//! and ℓ2 counterfactuals (panel b) on the digit workload. Scaled down; the
//! `fig6` binary runs the full printable sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knn_core::abductive::l1::minimal_sufficient_reason_f64;
use knn_core::counterfactual::l2::L2Counterfactual;
use knn_core::OddK;
use knn_datasets::digits::{digits_dataset, render_digit, DigitsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_msr_l1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_msr_l1");
    group.sample_size(10);
    for &(side, n_total) in &[(8usize, 60usize), (10, 60), (12, 100)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("side{side}_N{n_total}")),
            &(side, n_total),
            |b, &(side, n_total)| {
                let mut rng = StdRng::seed_from_u64(6);
                let cfg = DigitsConfig::new(side);
                let ds = digits_dataset(&mut rng, &cfg, &[4, 9], 4, n_total / 2);
                let query = render_digit(&mut rng, 4, &cfg);
                b.iter(|| criterion::black_box(minimal_sufficient_reason_f64(&ds, &query)));
            },
        );
    }
    group.finish();
}

fn bench_cf_l2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_cf_l2");
    group.sample_size(10);
    for &(side, n_total) in &[(8usize, 60usize), (10, 60), (12, 100)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("side{side}_N{n_total}")),
            &(side, n_total),
            |b, &(side, n_total)| {
                let mut rng = StdRng::seed_from_u64(6);
                let cfg = DigitsConfig::new(side);
                let ds = digits_dataset(&mut rng, &cfg, &[4, 9], 4, n_total / 2);
                let query = render_digit(&mut rng, 4, &cfg);
                let cf = L2Counterfactual::new(&ds, OddK::ONE);
                b.iter(|| criterion::black_box(cf.infimum(&query)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_msr_l1, bench_cf_l2);
criterion_main!(benches);
