//! Criterion benches for Figure 5: discrete counterfactuals on uniformly
//! random data, SAT vs IQP/MILP. Parameters are scaled down from the paper's
//! sweep so `cargo bench` completes quickly; the `fig5` binary runs the full
//! printable sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knn_core::counterfactual::hamming::{closest_milp_with, closest_sat};
use knn_core::OddK;
use knn_datasets::random::{random_boolean_dataset, random_boolean_point};
use knn_milp::MilpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_sat");
    group.sample_size(10);
    for &(n_points, dim) in &[(100usize, 30usize), (200, 30), (100, 40), (200, 40)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n_points}_n{dim}")),
            &(n_points, dim),
            |b, &(n_points, dim)| {
                let mut rng = StdRng::seed_from_u64(42);
                let ds = random_boolean_dataset(&mut rng, n_points, dim, 0.5);
                let x = random_boolean_point(&mut rng, dim);
                b.iter(|| {
                    let out = closest_sat(&ds, OddK::ONE, &x);
                    criterion::black_box(out)
                });
            },
        );
    }
    group.finish();
}

fn bench_iqp(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_iqp");
    group.sample_size(10);
    for &(n_points, dim) in &[(20usize, 10usize), (30, 15)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("N{n_points}_n{dim}")),
            &(n_points, dim),
            |b, &(n_points, dim)| {
                let mut rng = StdRng::seed_from_u64(42);
                let ds = random_boolean_dataset(&mut rng, n_points, dim, 0.5);
                let x = random_boolean_point(&mut rng, dim);
                b.iter(|| {
                    let out = closest_milp_with(&ds, &x, MilpConfig::with_max_nodes(500_000));
                    criterion::black_box(out)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sat, bench_iqp);
criterion_main!(benches);
