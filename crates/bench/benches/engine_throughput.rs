//! Batch-engine throughput: queries/second for Hamming, ℓ1 and ℓ2 batches,
//! cold (fresh engine) vs warm (identical batch against the populated
//! explanation cache), written to `BENCH_engine.json` at the workspace root
//! so future PRs have a perf trajectory to compare against.
//!
//! Run with `cargo bench -p knn-bench --bench engine_throughput`.
//! Pass `--full` for the larger workload (more queries, bigger dataset).

use knn_engine::{EngineConfig, EngineData, ExplanationEngine, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

struct Workload {
    name: &'static str,
    metric: &'static str,
    k: u32,
    queries: usize,
    /// Effort budget for the engine serving this workload. The ℓ1 batch runs
    /// budgeted: its exact counterfactual MILP (Thm 4, NP-complete even for
    /// singleton classes) blows up at this dataset size, so the planner
    /// demotes those queries to the heuristic route — which is exactly the
    /// budget's job.
    budget: Option<u64>,
}

fn requests(w: &Workload, dim: usize, rng: &mut StdRng) -> Vec<Request> {
    (0..w.queries)
        .map(|i| {
            let point: Vec<String> =
                (0..dim).map(|_| if rng.gen_bool(0.5) { "1" } else { "0" }.into()).collect();
            // Mixed abductive + counterfactual traffic; weights roughly follow
            // an interactive-explanation session (mostly classify, then drill
            // into reasons and counterfactuals).
            let cmd = match i % 10 {
                0..=3 => "classify",
                4..=6 => "minimal-sr",
                7 => "check-sr",
                _ => "counterfactual",
            };
            let features = if cmd == "check-sr" { ",\"features\":[0,1]" } else { "" };
            let line = format!(
                r#"{{"id":"{}-{i}","cmd":"{cmd}","metric":"{}","k":{},"point":[{}]{features}}}"#,
                w.name,
                w.metric,
                w.k,
                point.join(",")
            );
            Request::from_json_line(&line, &i.to_string()).expect("generated request parses")
        })
        .collect()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_points, dim, q) = if full { (60, 14, 400) } else { (30, 10, 120) };

    let mut rng = StdRng::seed_from_u64(2025);
    let boolean = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.5);
    let continuous = boolean.to_continuous::<f64>();

    let workloads = [
        Workload { name: "hamming", metric: "hamming", k: 3, queries: q, budget: None },
        Workload { name: "l1", metric: "l1", k: 1, queries: q, budget: Some(50_000) },
        Workload { name: "l2", metric: "l2", k: 1, queries: q, budget: None },
    ];

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {n_points}, \"dim\": {dim}, \"queries\": {q}, \"workers\": {}}},",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    for (wi, w) in workloads.iter().enumerate() {
        let reqs = requests(w, dim, &mut rng);
        let engine = ExplanationEngine::new(
            EngineData::new(continuous.clone(), Some(boolean.clone())),
            EngineConfig { effort_budget: w.budget, ..EngineConfig::default() },
        );

        let t0 = Instant::now();
        let (cold_resps, cold_stats) = engine.run_batch_with_stats(&reqs);
        let cold = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (warm_resps, warm_stats) = engine.run_batch_with_stats(&reqs);
        let warm = t1.elapsed().as_secs_f64();

        // Sanity: warm run is pure cache, and bytes are identical.
        assert_eq!(warm_stats.cache_hits, reqs.len(), "warm run must be all hits");
        for (a, b) in cold_resps.iter().zip(&warm_resps) {
            assert_eq!(a.to_json_line(), b.to_json_line(), "cache must be transparent");
        }
        let errors = cold_resps.iter().filter(|r| r.result.is_err()).count();
        for r in cold_resps.iter().filter(|r| r.result.is_err()).take(3) {
            eprintln!("{}: error response: {}", w.name, r.to_json_line());
        }
        assert_eq!(errors, 0, "{}: benchmark queries must all be served", w.name);

        let cold_qps = reqs.len() as f64 / cold;
        let warm_qps = reqs.len() as f64 / warm;
        println!(
            "{:<8} cold {:>9.1} q/s ({} workers)   warm {:>11.1} q/s   speedup {:>6.1}x",
            w.name,
            cold_qps,
            cold_stats.workers,
            warm_qps,
            warm_qps / cold_qps
        );
        let _ = writeln!(
            json,
            "  \"{}\": {{\"cold_qps\": {:.1}, \"warm_qps\": {:.1}, \"cache_speedup\": {:.1}}}{}",
            w.name,
            cold_qps,
            warm_qps,
            warm_qps / cold_qps,
            if wi + 1 < workloads.len() { "," } else { "" }
        );
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("wrote {path}");
}
