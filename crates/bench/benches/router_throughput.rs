//! Cluster-router throughput: queries/second for **one hot tenant** served
//! through `knn-cluster` over 1, 2, and 4 backends at 16 concurrent
//! clients, cold (fresh backends) vs warm (identical streams against
//! populated caches), written to `BENCH_cluster.json` at the workspace
//! root.
//!
//! Backends are real `xknn serve` **processes** when the binary can be
//! found (`XKNN_BIN`, or `target/<profile>/xknn` next to this bench —
//! `cargo build --release` first); otherwise in-process servers stand in
//! and the JSON records which mode ran. The router runs cache-affinity
//! routing (the default): repeats of a query land on the replica that
//! already cached its answer, with `--spread 1` window semantics as the
//! unkeyed/failover fallback — at 16 clients the interesting regime is
//! many-clients-per-replica, not one-client-fan-out.
//!
//! Besides QPS the JSON records each topology's **warm hit rate** (cache
//! hits / lookups over the warm passes, scraped from the router's merged
//! stats) and the host's **cpu count**. The hit rate is the
//! hardware-independent signal: the pre-affinity router scattered repeats
//! away from their cache, so its warm hit rate *fell* as backends were
//! added. Warm QPS only measures topology scaling when the host has at
//! least as many cores as processes — on a core-starved box the qps
//! columns mostly measure scheduler multiplexing, which is why the CI
//! guard conditions the monotonicity check on `cpus`.
//!
//! Run with `cargo bench -p knn-bench --bench router_throughput`; pass
//! `--full` for the larger workload.

use knn_cluster::{LoadSource, Router, RouterConfig};
use knn_server::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One client's shuffled request stream against the hot tenant.
fn stream(dim: usize, queries: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines: Vec<String> = (0..queries)
        .map(|i| {
            let point: Vec<String> =
                (0..dim).map(|_| if rng.gen_bool(0.5) { "1" } else { "0" }.into()).collect();
            // A read-burst mix: mostly classifications with an explanation
            // tail — the workload shape the admission layer sees from
            // interactive explanation UIs, and one where serving overhead
            // (not solver CPU) bounds cold throughput, i.e. exactly what
            // adding backends can recover.
            let cmd = match i % 10 {
                0..=7 => "classify",
                8 => "minimal-sr",
                _ => "counterfactual",
            };
            let k = if i % 3 == 0 { 3 } else { 1 };
            format!(
                r#"{{"dataset":"hot","id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]}}"#,
                point.join(",")
            )
        })
        .collect();
    for i in (1..lines.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        lines.swap(i, j);
    }
    lines.join("\n")
}

fn run_clients(addr: std::net::SocketAddr, streams: &[String]) -> (f64, Vec<Vec<String>>) {
    let t0 = Instant::now();
    let outputs: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|s| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    c.run_stream(s).expect("stream")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    (t0.elapsed().as_secs_f64(), outputs)
}

/// The `xknn` binary, if one is around to spawn process backends with.
fn find_xknn() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("XKNN_BIN") {
        let p = std::path::PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    // This bench runs from target/<profile>/deps/; xknn sits one level up
    // (or further, for custom target dirs) when the workspace bins were
    // built in the same profile.
    let exe = std::env::current_exe().ok()?;
    exe.ancestors().skip(1).take(3).map(|d| d.join("xknn")).find(|p| p.is_file())
}

/// In-process stand-in backends for when the binary is absent.
struct ThreadBackends(Vec<knn_server::ServerHandle>);

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_points, dim, q) = if full { (60, 12, 240) } else { (30, 8, 100) };
    let clients = 16usize;
    let rounds = if full { 3 } else { 2 };
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let mut rng = StdRng::seed_from_u64(2026);
    let hot = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.5);
    let hot_text = dataset_text(&hot);
    let xknn = find_xknn();
    let mode = if xknn.is_some() { "process" } else { "thread" };
    if xknn.is_none() {
        eprintln!(
            "router_throughput: no xknn binary found (set XKNN_BIN or `cargo build --release`); \
             falling back to in-process backends"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {n_points}, \"dim\": {dim}, \"queries_per_client\": {q}, \
         \"clients\": {clients}, \"tenants\": 1, \"spread\": 1, \"affinity\": true, \
         \"backend_mode\": \"{mode}\", \"cpus\": {cpus}}},"
    );

    let streams: Vec<String> = (0..clients).map(|i| stream(dim, q, 0xC10D ^ i as u64)).collect();
    let total = (clients * q) as f64;

    // Pulls `"key": <digits>` out of a stats/metrics response line without
    // a JSON parser — the router answers one line, each counter once.
    fn scrape_u64(resp: &str, key: &str) -> u64 {
        resp.rfind(key)
            .map(|i| {
                resp[i + key.len()..]
                    .trim_start_matches([':', ' '])
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    }
    fn cache_counters(c: &mut Client) -> (u64, u64) {
        let s = c.roundtrip(r#"{"id":"st","verb":"stats"}"#).expect("stats");
        (scrape_u64(&s, "\"cache_hits\""), scrape_u64(&s, "\"cache_misses\""))
    }

    // One measurement: fresh backends + fresh router (cold numbers must not
    // inherit warm caches), a cold pass, then the identical warm passes.
    // Returns (cold qps, warm qps, warm hit rate).
    let measure = |backends: usize| -> (f64, f64, f64) {
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig {
                replication: 0,
                probe_interval: Duration::from_millis(500),
                spread: 1,
                affinity: true,
            },
        )
        .expect("bind router");
        let mut stand_in = ThreadBackends(Vec::new());
        for _ in 0..backends {
            match &xknn {
                Some(bin) => {
                    router.spawn_backend(bin, &[]).expect("spawn backend");
                }
                None => {
                    let server = knn_server::Server::bind(
                        "127.0.0.1:0",
                        knn_server::ServerConfig::default(),
                    )
                    .expect("bind backend");
                    let handle = server.spawn();
                    router.attach(handle.addr());
                    stand_in.0.push(handle);
                }
            }
        }
        router.load("hot", LoadSource::Text(&hot_text), None).expect("load hot tenant");
        let handle = router.spawn();

        let (cold, cold_out) = run_clients(handle.addr(), &streams);
        for out in &cold_out {
            for line in out {
                assert!(!line.contains("\"ok\":false"), "error response: {line}");
            }
        }
        // The cold pass leaves a transient behind it: the fill worker is
        // still pushing freshly computed explanations to each key's
        // failover replica. Warm means steady state, so wait (bounded) for
        // the fill counter to stop moving before measuring.
        let mut ctl = Client::connect(handle.addr()).expect("connect");
        if backends > 1 {
            let fills = |c: &mut Client| -> u64 {
                let m = c.roundtrip(r#"{"id":"m","verb":"metrics"}"#).expect("metrics");
                scrape_u64(&m, "knn_router_fills_total")
            };
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut last = fills(&mut ctl);
            while Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(100));
                let now = fills(&mut ctl);
                if now == last {
                    break;
                }
                last = now;
            }
        }
        let (hits_before, misses_before) = cache_counters(&mut ctl);
        // Warm = steady state: repeats route to the replica that cached
        // them (affinity), so replay the identical streams a few times and
        // take the best pass. Every pass must stay byte-identical to the
        // cold one — replica choice and cache state are invisible in the
        // bytes.
        let mut warm = f64::INFINITY;
        for _ in 0..3 {
            let (w, warm_out) = run_clients(handle.addr(), &streams);
            assert_eq!(cold_out, warm_out, "warm pass changed response bytes");
            warm = warm.min(w);
        }
        // Warm hit rate across the warm passes: affinity routing keeps a
        // key's repeats on the replica that cached it, so this stays ~1.0
        // at every backend count — the property the pre-affinity router
        // lost (scattered repeats, hit rate falling with backends).
        let (hits_after, misses_after) = cache_counters(&mut ctl);
        let (h, m) = (hits_after - hits_before, misses_after - misses_before);
        let hit_rate = if h + m == 0 { 0.0 } else { h as f64 / (h + m) as f64 };

        handle.shutdown(); // also stops spawned backend processes
        for h in stand_in.0.drain(..) {
            h.shutdown();
        }
        (total / cold, total / warm, hit_rate)
    };

    let backend_counts = [1usize, 2, 4];
    for (bi, &backends) in backend_counts.iter().enumerate() {
        // Best of `rounds` fully-fresh measurements: a 960-query pass on a
        // loaded CI box is noisy, and best-of isolates the topology effect
        // from scheduler luck.
        let (mut cold_qps, mut warm_qps, mut hit_rate) = (0f64, 0f64, 0f64);
        for _ in 0..rounds {
            let (c, w, h) = measure(backends);
            cold_qps = cold_qps.max(c);
            warm_qps = warm_qps.max(w);
            hit_rate = hit_rate.max(h);
        }
        println!(
            "{backends} backend(s)   cold {cold_qps:>9.1} q/s   warm {warm_qps:>11.1} q/s   speedup {:>6.1}x   warm hits {:>5.1}%",
            warm_qps / cold_qps,
            hit_rate * 100.0
        );
        let _ = writeln!(
            json,
            "  \"backends_{backends}\": {{\"cold_qps\": {cold_qps:.1}, \"warm_qps\": {warm_qps:.1}, \"cache_speedup\": {:.1}, \"warm_hit_rate\": {hit_rate:.3}}}{}",
            warm_qps / cold_qps,
            if bi + 1 < backend_counts.len() { "," } else { "" }
        );
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, &json).expect("write BENCH_cluster.json");
    println!("wrote {path}");
}

/// Renders a boolean dataset in the `+/-` text format the `load` verb takes.
fn dataset_text(ds: &knn_space::BooleanDataset) -> String {
    let mut out = String::new();
    for (bits, label) in ds.iter() {
        out.push(if label == knn_space::Label::Positive { '+' } else { '-' });
        for i in 0..ds.dim() {
            out.push(' ');
            out.push(if bits.get(i) { '1' } else { '0' });
        }
        out.push('\n');
    }
    out
}
