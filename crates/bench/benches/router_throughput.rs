//! Cluster-router throughput: queries/second for **one hot tenant** served
//! through `knn-cluster` over 1, 2, and 4 backends at 16 concurrent
//! clients, cold (fresh backends) vs warm (identical streams against
//! populated caches), written to `BENCH_cluster.json` at the workspace
//! root.
//!
//! Backends are real `xknn serve` **processes** when the binary can be
//! found (`XKNN_BIN`, or `target/<profile>/xknn` next to this bench —
//! `cargo build --release` first); otherwise in-process servers stand in
//! and the JSON records which mode ran. The router uses `--spread 1`
//! semantics (each client connection anchors on one replica, failing over
//! to the rest), the configuration that minimizes per-backend connection
//! fan-in when clients outnumber replicas — at 16 clients the interesting
//! regime is many-clients-per-replica, not one-client-fan-out.
//!
//! Run with `cargo bench -p knn-bench --bench router_throughput`; pass
//! `--full` for the larger workload.

use knn_cluster::{LoadSource, Router, RouterConfig};
use knn_server::Client;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One client's shuffled request stream against the hot tenant.
fn stream(dim: usize, queries: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines: Vec<String> = (0..queries)
        .map(|i| {
            let point: Vec<String> =
                (0..dim).map(|_| if rng.gen_bool(0.5) { "1" } else { "0" }.into()).collect();
            // A read-burst mix: mostly classifications with an explanation
            // tail — the workload shape the admission layer sees from
            // interactive explanation UIs, and one where serving overhead
            // (not solver CPU) bounds cold throughput, i.e. exactly what
            // adding backends can recover.
            let cmd = match i % 10 {
                0..=7 => "classify",
                8 => "minimal-sr",
                _ => "counterfactual",
            };
            let k = if i % 3 == 0 { 3 } else { 1 };
            format!(
                r#"{{"dataset":"hot","id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]}}"#,
                point.join(",")
            )
        })
        .collect();
    for i in (1..lines.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        lines.swap(i, j);
    }
    lines.join("\n")
}

fn run_clients(addr: std::net::SocketAddr, streams: &[String]) -> (f64, Vec<Vec<String>>) {
    let t0 = Instant::now();
    let outputs: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|s| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    c.run_stream(s).expect("stream")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    (t0.elapsed().as_secs_f64(), outputs)
}

/// The `xknn` binary, if one is around to spawn process backends with.
fn find_xknn() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("XKNN_BIN") {
        let p = std::path::PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    // This bench runs from target/<profile>/deps/; xknn sits one level up
    // (or further, for custom target dirs) when the workspace bins were
    // built in the same profile.
    let exe = std::env::current_exe().ok()?;
    exe.ancestors().skip(1).take(3).map(|d| d.join("xknn")).find(|p| p.is_file())
}

/// In-process stand-in backends for when the binary is absent.
struct ThreadBackends(Vec<knn_server::ServerHandle>);

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_points, dim, q) = if full { (60, 12, 240) } else { (30, 8, 100) };
    let clients = 16usize;
    let rounds = if full { 3 } else { 2 };

    let mut rng = StdRng::seed_from_u64(2026);
    let hot = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.5);
    let hot_text = dataset_text(&hot);
    let xknn = find_xknn();
    let mode = if xknn.is_some() { "process" } else { "thread" };
    if xknn.is_none() {
        eprintln!(
            "router_throughput: no xknn binary found (set XKNN_BIN or `cargo build --release`); \
             falling back to in-process backends"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {n_points}, \"dim\": {dim}, \"queries_per_client\": {q}, \
         \"clients\": {clients}, \"tenants\": 1, \"spread\": 1, \"backend_mode\": \"{mode}\"}},"
    );

    let streams: Vec<String> = (0..clients).map(|i| stream(dim, q, 0xC10D ^ i as u64)).collect();
    let total = (clients * q) as f64;

    // One measurement: fresh backends + fresh router (cold numbers must not
    // inherit warm caches), a cold pass, then the identical warm pass.
    let measure = |backends: usize| -> (f64, f64) {
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { replication: 0, probe_interval: Duration::from_millis(500), spread: 1 },
        )
        .expect("bind router");
        let mut stand_in = ThreadBackends(Vec::new());
        for _ in 0..backends {
            match &xknn {
                Some(bin) => {
                    router.spawn_backend(bin, &[]).expect("spawn backend");
                }
                None => {
                    let server = knn_server::Server::bind(
                        "127.0.0.1:0",
                        knn_server::ServerConfig::default(),
                    )
                    .expect("bind backend");
                    let handle = server.spawn();
                    router.attach(handle.addr());
                    stand_in.0.push(handle);
                }
            }
        }
        router.load("hot", LoadSource::Text(&hot_text), None).expect("load hot tenant");
        let handle = router.spawn();

        let (cold, cold_out) = run_clients(handle.addr(), &streams);
        for out in &cold_out {
            for line in out {
                assert!(!line.contains("\"ok\":false"), "error response: {line}");
            }
        }
        // Warm = steady state. Caches are replica-local (a query hits only
        // on the replica that computed it, and connections re-anchor per
        // pass), so replay the identical streams a few times and take the
        // best pass. Every pass must stay byte-identical to the cold one —
        // replica choice and cache state are invisible in the bytes.
        let mut warm = f64::INFINITY;
        for _ in 0..3 {
            let (w, warm_out) = run_clients(handle.addr(), &streams);
            assert_eq!(cold_out, warm_out, "warm pass changed response bytes");
            warm = warm.min(w);
        }

        handle.shutdown(); // also stops spawned backend processes
        for h in stand_in.0.drain(..) {
            h.shutdown();
        }
        (total / cold, total / warm)
    };

    let backend_counts = [1usize, 2, 4];
    for (bi, &backends) in backend_counts.iter().enumerate() {
        // Best of `rounds` fully-fresh measurements: a 960-query pass on a
        // loaded CI box is noisy, and best-of isolates the topology effect
        // from scheduler luck.
        let (mut cold_qps, mut warm_qps) = (0f64, 0f64);
        for _ in 0..rounds {
            let (c, w) = measure(backends);
            cold_qps = cold_qps.max(c);
            warm_qps = warm_qps.max(w);
        }
        println!(
            "{backends} backend(s)   cold {cold_qps:>9.1} q/s   warm {warm_qps:>11.1} q/s   speedup {:>6.1}x",
            warm_qps / cold_qps
        );
        let _ = writeln!(
            json,
            "  \"backends_{backends}\": {{\"cold_qps\": {cold_qps:.1}, \"warm_qps\": {warm_qps:.1}, \"cache_speedup\": {:.1}}}{}",
            warm_qps / cold_qps,
            if bi + 1 < backend_counts.len() { "," } else { "" }
        );
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(path, &json).expect("write BENCH_cluster.json");
    println!("wrote {path}");
}

/// Renders a boolean dataset in the `+/-` text format the `load` verb takes.
fn dataset_text(ds: &knn_space::BooleanDataset) -> String {
    let mut out = String::new();
    for (bits, label) in ds.iter() {
        out.push(if label == knn_space::Label::Positive { '+' } else { '-' });
        for i in 0..ds.dim() {
            out.push(' ');
            out.push(if bits.get(i) { '1' } else { '0' });
        }
        out.push('\n');
    }
    out
}
