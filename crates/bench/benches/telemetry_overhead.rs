//! Telemetry overhead on the warm serving path: the same cache-hit batch is
//! timed against two engines — telemetry compiled in but idle (the default)
//! and telemetry fully enabled (route + phase histograms, per-query traces,
//! slow-ring candidacy) — and the enabled run must stay within **5%** of the
//! idle run. The always-on flight recorder samples span families on *both*
//! sides (recording is independent of the enabled flag by design), so its
//! cost is inside the measured baseline, not hidden by it.
//! Results go to `BENCH_telemetry.json` at the workspace root.
//!
//! The warm path is the worst case for instrumentation: a cache hit does no
//! solving, so the clock reads and atomic bumps are the largest *relative*
//! cost they will ever be. Min-over-trials on both sides filters scheduler
//! noise so the ratio compares best-case against best-case.
//!
//! Run with `cargo bench -p knn-bench --bench telemetry_overhead`.
//! Pass `--full` for more trials and a bigger batch.

use knn_engine::{EngineConfig, EngineData, ExplanationEngine, Request};
use knn_telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Maximum tolerated warm-path slowdown: enabled vs idle.
const MAX_OVERHEAD: f64 = 0.05;

fn requests(queries: usize, dim: usize, rng: &mut StdRng) -> Vec<Request> {
    (0..queries)
        .map(|i| {
            let point: Vec<String> =
                (0..dim).map(|_| if rng.gen_bool(0.5) { "1" } else { "0" }.into()).collect();
            let cmd = match i % 4 {
                0..=1 => "classify",
                2 => "minimal-sr",
                _ => "counterfactual",
            };
            let line = format!(
                r#"{{"id":"q{i}","cmd":"{cmd}","metric":"hamming","k":3,"point":[{}]}}"#,
                point.join(",")
            );
            Request::from_json_line(&line, &i.to_string()).expect("generated request parses")
        })
        .collect()
}

/// Warm the cache, then return the minimum wall time over `trials` repeats of
/// the all-hits batch.
fn min_warm_secs(engine: &ExplanationEngine, reqs: &[Request], trials: usize) -> f64 {
    let _ = engine.run_batch_with_stats(reqs);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let (_, stats) = engine.run_batch_with_stats(reqs);
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(stats.cache_hits, reqs.len(), "measured runs must be all hits");
    }
    best
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_points, dim, q, trials) = if full { (40, 12, 512, 60) } else { (24, 10, 256, 30) };

    let mut rng = StdRng::seed_from_u64(2025);
    let boolean = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.5);
    let continuous = boolean.to_continuous::<f64>();
    let reqs = requests(q, dim, &mut rng);
    let data = || EngineData::new(continuous.clone(), Some(boolean.clone()));
    let config = EngineConfig::default();

    // Telemetry compiled in but idle: the construction default.
    let idle_engine = ExplanationEngine::new(data(), config.clone());
    // Telemetry enabled: every query records route/phase histograms and is a
    // slow-ring candidate.
    let telemetry = Telemetry::new();
    telemetry.set_enabled(true);
    // The enabled side also carries an SLO objective so the whole accounting
    // plane is armed; burn-rate windows are only evaluated at scrape time, so
    // the warm path must not feel it.
    telemetry
        .slo()
        .set("bench", knn_telemetry::SloObjective::default())
        .expect("default objective is valid");
    let hot_engine = ExplanationEngine::with_telemetry(data(), config, telemetry.clone(), "bench");

    // Interleave idle/enabled trials so drift hits both sides equally.
    let mut idle = f64::INFINITY;
    let mut hot = f64::INFINITY;
    for _ in 0..3 {
        idle = idle.min(min_warm_secs(&idle_engine, &reqs, trials));
        hot = hot.min(min_warm_secs(&hot_engine, &reqs, trials));
    }

    // The enabled engine really recorded: warm hits land in the cache-probe
    // phase histogram (1-in-16 sampled, so a fraction of the query count).
    let recorded: u64 = count_recorded(&telemetry);
    assert!(recorded >= (q * trials / 16) as u64, "enabled run must have recorded samples");

    // The flight recorder really sampled: the reservoir holds span events
    // even though no query carried a trace id (1-in-64 per-thread sampling).
    let recorder_events = telemetry.recorder().len();
    assert!(recorder_events > 0, "flight recorder captured no span events");

    let idle_qps = q as f64 / idle;
    let hot_qps = q as f64 / hot;
    let overhead = hot / idle - 1.0;
    println!("idle    {idle_qps:>11.1} q/s  (telemetry compiled in, disabled)");
    println!("enabled {hot_qps:>11.1} q/s  (histograms + traces + slow ring)");
    println!("warm-path overhead {:+.2}%  (budget {:.0}%)", overhead * 100.0, MAX_OVERHEAD * 100.0);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {n_points}, \"dim\": {dim}, \"queries\": {q}, \"trials\": {trials}}},"
    );
    let _ = writeln!(json, "  \"idle_qps\": {idle_qps:.1},");
    let _ = writeln!(json, "  \"enabled_qps\": {hot_qps:.1},");
    let _ = writeln!(json, "  \"overhead_frac\": {overhead:.4},");
    let _ = writeln!(json, "  \"recorder_events\": {recorder_events},");
    let _ = writeln!(json, "  \"budget_frac\": {MAX_OVERHEAD}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, &json).expect("write BENCH_telemetry.json");
    println!("wrote {path}");

    assert!(
        overhead <= MAX_OVERHEAD,
        "telemetry warm-path overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}

/// Total samples across the phase histograms the enabled engine recorded.
fn count_recorded(telemetry: &Arc<Telemetry>) -> u64 {
    let text = telemetry.render();
    text.lines()
        .filter(|l| l.starts_with("knn_phase_duration_us_count{") && l.contains("phase=\"cache\""))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}
