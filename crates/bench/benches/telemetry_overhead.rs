//! Telemetry overhead on the warm serving path: the same cache-hit batch is
//! timed against telemetry compiled in but idle (the default) and telemetry
//! fully enabled (route + phase histograms, per-query traces, slow-ring
//! candidacy), and the enabled run must stay within **5%** of the idle run.
//! The always-on flight recorder samples span families on *both* sides
//! (recording is independent of the enabled flag by design), so its cost is
//! inside the measured baseline, not hidden by it.
//!
//! The forensics plane gets two more arms on an enabled engine: **capture**
//! (the always-on capture-ring push per response that `Tenant::serve` does)
//! and **audit** (capture plus shadow-audit election and queue hand-off at
//! the deployed 1-in-64 rate, with a live auditor thread re-executing every
//! elected query). The capture ring is unconditional by design, so its cost
//! is reported as an absolute per-query figure — it rides the server layer,
//! where a query also pays socket and parse costs, so a ratio against the
//! engine-only cache hit would gate it on the wrong denominator. The shadow
//! audit is the optional knob, and ITS marginal overhead over the capture
//! baseline is gated at the same **5%** budget.
//! Results go to `BENCH_telemetry.json` at the workspace root.
//!
//! The warm path is the worst case for instrumentation: a cache hit does no
//! solving, so the clock reads and atomic bumps are the largest *relative*
//! cost they will ever be. Min-over-trials on both sides filters scheduler
//! noise so the ratio compares best-case against best-case.
//!
//! Run with `cargo bench -p knn-bench --bench telemetry_overhead`.
//! Pass `--full` for more trials and a bigger batch.

use knn_engine::{AuditOutcome, EngineConfig, EngineData, ExplanationEngine, Request};
use knn_telemetry::{AuditJob, CaptureEntry, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum tolerated warm-path slowdown: enabled vs idle.
const MAX_OVERHEAD: f64 = 0.05;

fn requests(queries: usize, dim: usize, rng: &mut StdRng) -> Vec<Request> {
    (0..queries)
        .map(|i| {
            let point: Vec<String> =
                (0..dim).map(|_| if rng.gen_bool(0.5) { "1" } else { "0" }.into()).collect();
            let cmd = match i % 4 {
                0..=1 => "classify",
                2 => "minimal-sr",
                _ => "counterfactual",
            };
            let line = format!(
                r#"{{"id":"q{i}","cmd":"{cmd}","metric":"hamming","k":3,"point":[{}]}}"#,
                point.join(",")
            );
            Request::from_json_line(&line, &i.to_string()).expect("generated request parses")
        })
        .collect()
}

/// Warm the cache, then return the minimum wall time over `trials` repeats of
/// the all-hits batch.
fn min_warm_secs(engine: &ExplanationEngine, reqs: &[Request], trials: usize) -> f64 {
    let _ = engine.run_batch_with_stats(reqs);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let (_, stats) = engine.run_batch_with_stats(reqs);
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(stats.cache_hits, reqs.len(), "measured runs must be all hits");
    }
    best
}

/// [`min_warm_secs`] with the forensics plane on the timed path: after the
/// batch, every response is pushed into the capture ring and put up for
/// shadow-audit election exactly as `Tenant::serve` does (the engine-level
/// batch API bypasses the server layer, so the bench replays its per-query
/// additions by hand — raw-line clone, response clone, ring push, election,
/// queue offer). With the sampler's rate at 0 this measures the capture arm
/// (election collapses to one atomic load); at the deployed rate it is the
/// audit arm. The auditor consuming the queue runs on its own thread, like
/// in the server, so its re-executions contend for CPU but are not on the
/// serving path itself.
fn min_warm_forensics_secs(
    engine: &ExplanationEngine,
    telemetry: &Arc<Telemetry>,
    reqs: &[Request],
    raws: &[String],
    trials: usize,
) -> f64 {
    let (warm, _) = engine.run_batch_with_stats(reqs);
    let resps: Vec<String> = warm.iter().map(|r| r.to_json_line()).collect();
    let capture = telemetry.capture();
    let audit = telemetry.audit();
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let (_, stats) = engine.run_batch_with_stats(reqs);
        for (i, (raw, resp)) in raws.iter().zip(&resps).enumerate() {
            capture.push(CaptureEntry {
                tenant: "bench".to_string(),
                epoch: 0,
                conn: 1,
                seq: i as u64,
                trace: None,
                request: raw.clone(),
                response: resp.clone(),
            });
            if audit.elect() {
                audit.offer(AuditJob {
                    tenant: "bench".to_string(),
                    epoch: 0,
                    id: format!("q{i}"),
                    request: raw.clone(),
                    response: resp.clone(),
                    conn: 1,
                    seq: i as u64,
                    trace: None,
                });
            }
        }
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(stats.cache_hits, reqs.len(), "measured runs must be all hits");
    }
    best
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_points, dim, q, trials) = if full { (40, 12, 512, 60) } else { (24, 10, 256, 30) };

    let mut rng = StdRng::seed_from_u64(2025);
    let boolean = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.5);
    let continuous = boolean.to_continuous::<f64>();
    let reqs = requests(q, dim, &mut rng);
    let data = || EngineData::new(continuous.clone(), Some(boolean.clone()));
    let config = EngineConfig::default();

    // Telemetry compiled in but idle: the construction default.
    let idle_engine = ExplanationEngine::new(data(), config.clone());
    // Telemetry enabled: every query records route/phase histograms and is a
    // slow-ring candidate.
    let telemetry = Telemetry::new();
    telemetry.set_enabled(true);
    // The enabled side also carries an SLO objective so the whole accounting
    // plane is armed; burn-rate windows are only evaluated at scrape time, so
    // the warm path must not feel it.
    telemetry
        .slo()
        .set("bench", knn_telemetry::SloObjective::default())
        .expect("default objective is valid");
    let hot_engine =
        ExplanationEngine::with_telemetry(data(), config.clone(), telemetry.clone(), "bench");

    // Telemetry enabled AND the forensics plane armed: capture ring, shadow
    // audit at the deployed 1-in-64 rate, and a live auditor thread that
    // re-executes every elected query (bypassing the cache, like the real
    // auditor) while the serving path is being timed.
    let audited = Telemetry::new();
    audited.set_enabled(true);
    let audit_rate = audited.audit().rate();
    let audit_engine =
        Arc::new(ExplanationEngine::with_telemetry(data(), config, audited.clone(), "bench"));
    let raws: Vec<String> = reqs.iter().map(Request::to_json_line).collect();
    let audit_checked = Arc::new(AtomicU64::new(0));
    let audit_diverged = Arc::new(AtomicU64::new(0));
    let auditor = {
        let telemetry = audited.clone();
        let engine = audit_engine.clone();
        let checked = audit_checked.clone();
        let diverged = audit_diverged.clone();
        std::thread::spawn(move || {
            let audit = telemetry.audit();
            loop {
                let Some(job) = audit.next(Duration::from_millis(5)) else {
                    if audit.is_closed() {
                        return;
                    }
                    continue;
                };
                let Ok(req) = Request::from_json_line(&job.request, &job.id) else { continue };
                match engine.audit_replay(&req, job.epoch, &job.response) {
                    AuditOutcome::Match | AuditOutcome::Stale => {}
                    AuditOutcome::Diverged { .. } => {
                        diverged.fetch_add(1, Ordering::Relaxed);
                    }
                }
                checked.fetch_add(1, Ordering::Relaxed);
            }
        })
    };

    // Interleave the trials so drift hits all four sides equally. The
    // sampler's rate toggles between 0 (capture arm: ring push only) and
    // the deployed rate (audit arm: ring push + election + hand-off).
    let mut idle = f64::INFINITY;
    let mut hot = f64::INFINITY;
    let mut cap = f64::INFINITY;
    let mut aud = f64::INFINITY;
    for _ in 0..3 {
        idle = idle.min(min_warm_secs(&idle_engine, &reqs, trials));
        hot = hot.min(min_warm_secs(&hot_engine, &reqs, trials));
        audited.audit().set_rate(0);
        cap = cap.min(min_warm_forensics_secs(&audit_engine, &audited, &reqs, &raws, trials));
        audited.audit().set_rate(audit_rate);
        aud = aud.min(min_warm_forensics_secs(&audit_engine, &audited, &reqs, &raws, trials));
    }
    audited.audit().close();
    auditor.join().expect("auditor thread exits cleanly");

    // The shadow audit really ran and the invariant really held: elected
    // queries were re-executed off-path and every one byte-matched.
    assert!(audit_checked.load(Ordering::Relaxed) > 0, "auditor re-executed no queries");
    assert_eq!(audit_diverged.load(Ordering::Relaxed), 0, "shadow audit found a divergence");

    // The enabled engine really recorded: warm hits land in the cache-probe
    // phase histogram (1-in-16 sampled, so a fraction of the query count).
    let recorded: u64 = count_recorded(&telemetry);
    assert!(recorded >= (q * trials / 16) as u64, "enabled run must have recorded samples");

    // The flight recorder really sampled: the reservoir holds span events
    // even though no query carried a trace id (1-in-64 per-thread sampling).
    let recorder_events = telemetry.recorder().len();
    assert!(recorder_events > 0, "flight recorder captured no span events");

    let idle_qps = q as f64 / idle;
    let hot_qps = q as f64 / hot;
    let cap_qps = q as f64 / cap;
    let aud_qps = q as f64 / aud;
    let overhead = hot / idle - 1.0;
    let capture_ns = (cap - hot).max(0.0) / q as f64 * 1e9;
    let audit_overhead = aud / cap - 1.0;
    println!("idle    {idle_qps:>11.1} q/s  (telemetry compiled in, disabled)");
    println!("enabled {hot_qps:>11.1} q/s  (histograms + traces + slow ring)");
    println!("capture {cap_qps:>11.1} q/s  (enabled + always-on capture ring)");
    println!("audited {aud_qps:>11.1} q/s  (capture + shadow audit at 1-in-{audit_rate})");
    println!("warm-path overhead {:+.2}%  (budget {:.0}%)", overhead * 100.0, MAX_OVERHEAD * 100.0);
    println!("capture ring cost {capture_ns:.0} ns/query (absolute; always-on by design)");
    println!(
        "shadow-audit overhead over capture {:+.2}%  (budget {:.0}%)",
        audit_overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {n_points}, \"dim\": {dim}, \"queries\": {q}, \"trials\": {trials}}},"
    );
    let _ = writeln!(json, "  \"idle_qps\": {idle_qps:.1},");
    let _ = writeln!(json, "  \"enabled_qps\": {hot_qps:.1},");
    let _ = writeln!(json, "  \"overhead_frac\": {overhead:.4},");
    let _ = writeln!(json, "  \"capture_qps\": {cap_qps:.1},");
    let _ = writeln!(json, "  \"capture_ns_per_query\": {capture_ns:.0},");
    let _ = writeln!(json, "  \"audit_qps\": {aud_qps:.1},");
    let _ = writeln!(json, "  \"audit_overhead_frac\": {audit_overhead:.4},");
    let _ = writeln!(json, "  \"recorder_events\": {recorder_events},");
    let _ = writeln!(json, "  \"budget_frac\": {MAX_OVERHEAD}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, &json).expect("write BENCH_telemetry.json");
    println!("wrote {path}");

    assert!(
        overhead <= MAX_OVERHEAD,
        "telemetry warm-path overhead {:.2}% exceeds the {:.0}% budget",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
    assert!(
        audit_overhead <= MAX_OVERHEAD,
        "shadow-audit warm-path overhead {:.2}% over the capture baseline exceeds the {:.0}% budget",
        audit_overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}

/// Total samples across the phase histograms the enabled engine recorded.
fn count_recorded(telemetry: &Arc<Telemetry>) -> u64 {
    let text = telemetry.render();
    text.lines()
        .filter(|l| l.starts_with("knn_phase_duration_us_count{") && l.contains("phase=\"cache\""))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<u64>().ok())
        .sum()
}
