//! Network-server throughput: queries/second through a real TCP loopback
//! server with **two tenants**, at 1, 4, and 16 concurrent clients, cold
//! (fresh engines) vs warm (identical streams against populated caches),
//! written to `BENCH_server.json` at the workspace root.
//!
//! Run with `cargo bench -p knn-bench --bench server_throughput`.
//! Pass `--full` for the larger workload. The default is small enough for
//! the CI smoke step that keeps `BENCH_server.json` generation alive.

use knn_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// One client's request stream against `tenant` ("alpha" = Hamming queries,
/// "beta" = ℓ2), shuffled per client so concurrent streams interleave
/// differently.
fn stream(tenant: &str, dim: usize, queries: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let metric = if tenant == "alpha" { "hamming" } else { "l2" };
    let mut lines: Vec<String> = (0..queries)
        .map(|i| {
            let point: Vec<String> =
                (0..dim).map(|_| if rng.gen_bool(0.5) { "1" } else { "0" }.into()).collect();
            let cmd = match i % 10 {
                0..=4 => "classify",
                5..=7 => "minimal-sr",
                _ => "counterfactual",
            };
            // k = 3 only where it stays polynomial in practice: the ℓ2
            // abductive/counterfactual routes build the O(n^k) Prop-1 region
            // cache, which would turn the bench into a one-time artifact
            // build instead of a serving measurement.
            let k = if i % 3 == 0 && (metric == "hamming" || cmd == "classify") { 3 } else { 1 };
            format!(
                r#"{{"dataset":"{tenant}","id":"{tenant}-{i}","cmd":"{cmd}","metric":"{metric}","k":{k},"point":[{}]}}"#,
                point.join(",")
            )
        })
        .collect();
    for i in (1..lines.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        lines.swap(i, j);
    }
    lines.join("\n")
}

/// Runs `streams` concurrently (one client connection each) and returns the
/// wall time plus every client's responses (request order per client).
fn run_clients(addr: std::net::SocketAddr, streams: &[String]) -> (f64, Vec<Vec<String>>) {
    let t0 = Instant::now();
    let outputs: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|s| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    c.run_stream(s).expect("stream")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    (t0.elapsed().as_secs_f64(), outputs)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_points, dim, q) = if full { (60, 12, 240) } else { (30, 8, 60) };

    let mut rng = StdRng::seed_from_u64(2026);
    let alpha = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.5);
    let beta = knn_datasets::random::random_boolean_dataset(&mut rng, n_points, dim, 0.35);
    let alpha_text = dataset_text(&alpha);
    let beta_text = dataset_text(&beta);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {n_points}, \"dim\": {dim}, \"queries_per_client\": {q}, \"tenants\": 2}},"
    );

    let client_counts = [1usize, 4, 16];
    for (ci, &clients) in client_counts.iter().enumerate() {
        // Fresh server per client count: cold numbers must not inherit warm
        // caches from the previous round.
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        server.registry().load("alpha", &alpha_text).expect("load alpha");
        server.registry().load("beta", &beta_text).expect("load beta");
        let handle = server.spawn();
        let addr = handle.addr();

        let streams: Vec<String> = (0..clients)
            .map(|i| {
                let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
                stream(tenant, dim, q, 0xBEEF ^ i as u64)
            })
            .collect();

        let (cold, cold_out) = run_clients(addr, &streams);
        let (warm, warm_out) = run_clients(addr, &streams);

        // Sanity: the warm pass must be byte-identical per client (caching is
        // transparent over the wire too), and everything must be served.
        assert_eq!(cold_out, warm_out, "cache changed response bytes");
        for out in &cold_out {
            for line in out {
                assert!(!line.contains("\"ok\":false"), "error response: {line}");
            }
        }

        let total = (clients * q) as f64;
        let (cold_qps, warm_qps) = (total / cold, total / warm);
        println!(
            "{clients:>2} clients   cold {cold_qps:>9.1} q/s   warm {warm_qps:>11.1} q/s   speedup {:>6.1}x",
            warm_qps / cold_qps
        );
        let _ = writeln!(
            json,
            "  \"clients_{clients}\": {{\"cold_qps\": {cold_qps:.1}, \"warm_qps\": {warm_qps:.1}, \"cache_speedup\": {:.1}}}{}",
            warm_qps / cold_qps,
            if ci + 1 < client_counts.len() { "," } else { "" }
        );

        let mut closer = Client::connect(addr).expect("connect for shutdown");
        closer.roundtrip(r#"{"verb":"shutdown"}"#).expect("shutdown");
        handle.shutdown();
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server.json");
    std::fs::write(path, &json).expect("write BENCH_server.json");
    println!("wrote {path}");
}

/// Renders a boolean dataset in the `+/-` text format the `load` verb takes.
fn dataset_text(ds: &knn_space::BooleanDataset) -> String {
    let mut out = String::new();
    for (bits, label) in ds.iter() {
        out.push(if label == knn_space::Label::Positive { '+' } else { '-' });
        for i in 0..ds.dim() {
            out.push(' ');
            out.push(if bits.get(i) { '1' } else { '0' });
        }
        out.push('\n');
    }
    out
}
