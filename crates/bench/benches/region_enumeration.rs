//! Eager vs lazy Prop 1 region enumeration, written to `BENCH_regions.json`
//! at the workspace root.
//!
//! For each k ∈ {1, 3, 5, 7} over one two-blob ℓ2 workload:
//!
//! * **eager** — `RegionCache::build` materializes the whole `O(n^k)`
//!   decomposition before the first answer (the former serving model), then
//!   the query set runs against the `*_in` oracle paths, which replay the
//!   lazy ordering over the cache (per-query key sort, build-time prune
//!   flags) so both sides perform the same LP sequence. Skipped, and
//!   recorded as `"eager_feasible": false`, when the decomposition estimate
//!   exceeds the materialization limit — which is exactly what made k ≥ 7
//!   unservable;
//! * **lazy** — `LazyRegions` (`O(n)` setup), cold query set (streams,
//!   prunes and memoizes on the fly), then the same set warm.
//!
//! The numbers to look at: `eager_build_s / lazy_cold_s` for k = 5 (the
//! lazy path answers while the eager one is still materializing) and
//! `lazy_warm_s / eager_query_s` for k ∈ {1, 3} (laziness must not tax the
//! small-k fast path).
//!
//! Run with `cargo bench -p knn-bench --bench region_enumeration`.

use knn_core::abductive::l2::L2Abductive;
use knn_core::counterfactual::l2::L2Counterfactual;
use knn_core::regions::{LazyRegions, RegionCache};
use knn_datasets::blobs::{blobs_dataset, Blob};
use knn_space::{ContinuousDataset, Label, OddK};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Polyhedron-count ceiling for the eager build (both regions together).
/// Past this the materialization is not a serving option (memory and build
/// time both `O(n^k)`), and the bench records it as infeasible.
const EAGER_LIMIT: usize = 150_000;

fn binom(n: usize, r: usize) -> usize {
    if r > n {
        return 0;
    }
    (0..r).fold(1usize, |acc, i| acc.saturating_mul(n - i) / (i + 1))
}

fn region_estimate(ds: &ContinuousDataset<f64>, k: OddK) -> usize {
    let (p, m) = (ds.count_of(Label::Positive), ds.count_of(Label::Negative));
    let maj = k.majority();
    let min = k.minority();
    binom(p, maj).saturating_mul(binom(m, min.min(m)))
        + binom(m, maj).saturating_mul(binom(p, min.min(p)))
}

/// The query set: counterfactual balls (short-circuit showcase) plus
/// check-SR on a pinned coordinate (early-witness showcase), from points
/// straddling the two blobs.
struct Queries {
    points: Vec<Vec<f64>>,
    radius_sq: Vec<f64>,
}

fn queries(ds: &ContinuousDataset<f64>, n: usize) -> Queries {
    let dim = ds.dim();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1).max(1) as f64;
            // A line sweeping from inside the positive blob toward the
            // negative one.
            (0..dim).map(|d| if d == 0 { -1.0 + 5.0 * t } else { 0.3 * t }).collect()
        })
        .collect();
    // A generous ball: the squared distance to the farthest-class nearest
    // point, scaled — guarantees the counterfactual query usually answers
    // "yes" after a handful of regions.
    let radius_sq = points
        .iter()
        .map(|x| {
            let nearest = |label| {
                ds.iter()
                    .filter(|&(_, l)| l == label)
                    .map(|(p, _)| p.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                    .fold(f64::INFINITY, f64::min)
            };
            1.1 * nearest(Label::Positive).max(nearest(Label::Negative))
        })
        .collect();
    Queries { points, radius_sq }
}

fn run_eager(ds: &ContinuousDataset<f64>, k: OddK, q: &Queries, cache: &RegionCache<f64>) {
    let cf = L2Counterfactual::new(ds, k);
    let ab = L2Abductive::new(ds, k);
    for (x, r) in q.points.iter().zip(&q.radius_sq) {
        std::hint::black_box(cf.within_in(x, r, cache));
        std::hint::black_box(ab.check_in(x, &[ds.dim() - 1], cache));
    }
}

fn run_lazy(ds: &ContinuousDataset<f64>, k: OddK, q: &Queries, lazy: &LazyRegions<f64>) {
    let cf = L2Counterfactual::new(ds, k);
    let ab = L2Abductive::new(ds, k);
    for (x, r) in q.points.iter().zip(&q.radius_sq) {
        std::hint::black_box(cf.within_lazy(x, r, lazy));
        std::hint::black_box(ab.check_lazy(x, &[ds.dim() - 1], lazy));
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (per_class, dim, n_queries) = if full { (16, 6, 12) } else { (14, 6, 8) };

    let mut rng = StdRng::seed_from_u64(2025);
    let mut center_pos = vec![0.0; dim];
    let mut center_neg = vec![0.0; dim];
    center_pos[0] = -1.0;
    center_neg[0] = 4.0;
    let ds = blobs_dataset(
        &mut rng,
        &[
            Blob {
                center: center_pos.clone(),
                sigma: 0.8,
                label: Label::Positive,
                count: per_class,
            },
            Blob {
                center: center_neg.clone(),
                sigma: 0.8,
                label: Label::Negative,
                count: per_class,
            },
        ],
    );
    let q = queries(&ds, n_queries);

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {}, \"dim\": {dim}, \"queries\": {}, \"eager_limit\": {EAGER_LIMIT}}},",
        ds.len(),
        n_queries
    );

    // Process warmup on a throwaway view: the very first timed pass must
    // measure region enumeration, not first-touch allocator/code-path costs.
    {
        let warm = LazyRegions::new(&ds, OddK::ONE);
        run_lazy(&ds, OddK::ONE, &q, &warm);
    }

    let ks = [1u32, 3, 5, 7];
    for (ki, &kv) in ks.iter().enumerate() {
        let k = OddK::of(kv);
        let estimate = region_estimate(&ds, k);
        let eager_feasible = estimate <= EAGER_LIMIT;

        // Sub-millisecond passes are scheduler-noise-prone, so warm numbers
        // are the best of three runs.
        let best_of_3 = |f: &dyn Fn()| {
            (0..3)
                .map(|_| {
                    let t = Instant::now();
                    f();
                    t.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };

        // Lazy first, so its cold pass is not polluted by the eager build's
        // heap churn (hundreds of MB of freshly-faulted pages at k = 5).
        let lazy = LazyRegions::new(&ds, k);
        let t2 = Instant::now();
        run_lazy(&ds, k, &q, &lazy);
        let lazy_cold = t2.elapsed().as_secs_f64();
        let lazy_warm = best_of_3(&|| run_lazy(&ds, k, &q, &lazy));

        let (eager_build, eager_query) = if eager_feasible {
            let t0 = Instant::now();
            let cache = RegionCache::build(&ds, k);
            let build = t0.elapsed().as_secs_f64();
            let query = best_of_3(&|| run_eager(&ds, k, &q, &cache));
            (Some(build), Some(query))
        } else {
            (None, None)
        };

        let fmt_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.6}"),
            None => "null".to_string(),
        };
        println!(
            "k={kv}: regions≈{estimate:>8}  eager build {:>10} query {:>10}   lazy cold {:>9.6}s warm {:>9.6}s  visited {}",
            fmt_opt(eager_build),
            fmt_opt(eager_query),
            lazy_cold,
            lazy_warm,
            lazy.memoized(),
        );
        let _ = writeln!(
            json,
            "  \"k{kv}\": {{\"regions_estimate\": {estimate}, \"eager_feasible\": {eager_feasible}, \"eager_build_s\": {}, \"eager_query_s\": {}, \"lazy_cold_s\": {lazy_cold:.6}, \"lazy_warm_s\": {lazy_warm:.6}, \"lazy_regions_visited\": {}}}{}",
            fmt_opt(eager_build),
            fmt_opt(eager_query),
            lazy.memoized(),
            if ki + 1 < ks.len() { "," } else { "" }
        );

        // The acceptance claims, asserted where measurable: lazy small-k
        // warm latency stays in the same ballpark as eager warm latency, and
        // at k = 5 the lazy cold pass beats materializing the decomposition
        // by a wide margin (or the decomposition is infeasible outright).
        if kv <= 3 {
            // Best-of-3 on both sides plus a 1 ms floor: the claim is "same
            // ballpark", and sub-millisecond deltas on a shared CI runner
            // must not fail the build.
            let eq = eager_query.expect("small k is always eager-feasible");
            assert!(
                lazy_warm <= 2.0 * eq.max(1e-3),
                "k={kv}: lazy warm {lazy_warm}s must be within 2x of eager warm {eq}s"
            );
        }
        if kv == 5 {
            if let Some(build) = eager_build {
                assert!(
                    build >= 10.0 * lazy_cold,
                    "k=5: eager build {build}s must be ≥ 10x lazy cold queries {lazy_cold}s"
                );
            }
        }
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_regions.json");
    std::fs::write(path, &json).expect("write BENCH_regions.json");
    println!("wrote {path}");
}
