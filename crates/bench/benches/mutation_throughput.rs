//! Mutation throughput: what live mutation buys over the old
//! reload-the-tenant workflow, written to `BENCH_delta.json` at the
//! workspace root.
//!
//! Three measurements over a two-cluster boolean dataset:
//!
//! * **insert + first query (warm side)** — apply one insert near the
//!   positive cluster, then answer a classify on the far (negative) side:
//!   the untouched class's indexes carry over and the cached answer
//!   revalidates, so the query costs a guard check, not a rebuild;
//! * **insert + first query (mutated side)** — the same insert, then a
//!   classify whose guard the insert kills: pays one class's index rebuild
//!   and a recompute, still never touches the other class;
//! * **full reload + first query** — the pre-delta workflow: re-parse the
//!   dataset text, build a fresh engine, answer the same query cold.
//!
//! The acceptance gate (asserted here, recorded in the JSON): single-point
//! insert + first query is ≥ 5× faster than full reload + first query.
//! A separate pass measures **warm-hit retention**: the fraction of a
//! 2·`queries` classify set still served from the cache right after a
//! mutation (far-side entries revalidate across the epoch; mutated-side
//! entries recompute).
//!
//! Run with `cargo bench -p knn-bench --bench mutation_throughput`; pass
//! `--full` for the larger workload. The default is small enough for the
//! CI smoke step that keeps `BENCH_delta.json` generation alive.

use knn_bench::Stats;
use knn_engine::{textfmt, EngineConfig, ExplanationEngine, Mutation, Request};
use knn_space::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Two well-separated clusters in {0,1}^dim: positives dense in the low
/// half of the bits, negatives in the high half. Separation is what gives
/// far-side classify guards room to survive a near-side insert.
fn two_cluster_text(rng: &mut StdRng, n_per_class: usize, dim: usize) -> String {
    let mut out = String::new();
    for label in ['+', '-'] {
        for _ in 0..n_per_class {
            out.push(label);
            for j in 0..dim {
                let low_half = j < dim / 2;
                let dense = (label == '+') == low_half;
                let bit = if rng.gen_bool(if dense { 0.9 } else { 0.1 }) { 1 } else { 0 };
                let _ = write!(out, " {bit}");
            }
            out.push('\n');
        }
    }
    out
}

/// A classify request on a perturbed copy of the `i`-th dataset point.
fn classify_line(text: &str, i: usize, flip: usize, id: &str) -> String {
    let line = text.lines().nth(i).expect("point exists");
    let mut bits: Vec<u8> =
        line[1..].split_whitespace().map(|t| t.parse::<u8>().unwrap()).collect();
    let j = flip % bits.len();
    bits[j] ^= 1;
    format!(
        r#"{{"id":"{id}","cmd":"classify","metric":"l2","k":3,"point":[{}]}}"#,
        bits.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(",")
    )
}

fn req(line: &str) -> Request {
    Request::from_json_line(line, "0").unwrap()
}

/// A point inside the positive cluster but off its ideal center (three
/// low-half bits cleared): close enough to invalidate positive-side guards
/// near it, far enough from the negative cluster to spare that side, and
/// unlikely to duplicate an existing point (which would blunt the
/// mutated-side measurement).
fn pos_cluster_point(dim: usize) -> Vec<f64> {
    (0..dim).map(|j| if j < dim / 2 && j >= 3 { 1.0 } else { 0.0 }).collect()
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (n_per_class, dim, queries, reps) =
        if full { (500, 16, 400, 12) } else { (250, 12, 120, 8) };

    let mut rng = StdRng::seed_from_u64(0xDE17A);
    let seed_text = two_cluster_text(&mut rng, n_per_class, dim);
    // The far-side probe is a negative-cluster point; the mutated-side
    // probe sits exactly at the inserted point, so its cached guard
    // observes distance 0 and must fail: the first query after the insert
    // pays the one-class rebuild + recompute.
    let warm_probe = classify_line(&seed_text, n_per_class + 7, 3, "warm-side");
    let inserted = pos_cluster_point(dim);
    let cold_probe = format!(
        r#"{{"id":"mutated-side","cmd":"classify","metric":"l2","k":3,"point":[{}]}}"#,
        inserted.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",")
    );
    let insert = Mutation::Insert { point: inserted, label: Label::Positive };

    // The dataset the reload path loads: seed + the inserted point (so both
    // paths answer over identical data).
    let final_text = {
        let e = ExplanationEngine::new(
            textfmt::parse_dataset(&seed_text).unwrap(),
            EngineConfig::default(),
        );
        e.apply(insert.clone()).unwrap();
        e.dataset_text()
    };

    let warm_engine = || {
        let e = ExplanationEngine::new(
            textfmt::parse_dataset(&seed_text).unwrap(),
            EngineConfig::default(),
        );
        e.run(&req(&warm_probe));
        e.run(&req(&cold_probe));
        e
    };

    // (a) insert + first query, far side: revalidated hit on carried-over
    // state. (b) insert + first query, mutated side: one-class rebuild.
    // (c) reload + first query: everything from scratch. Engines are
    // prepared untimed; only the mutation-or-reload plus the first query is
    // inside the clock.
    let mut samples = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..reps {
        let e = warm_engine();
        let t0 = Instant::now();
        e.apply(insert.clone()).unwrap();
        e.run(&req(&warm_probe));
        samples.0.push(t0.elapsed().as_secs_f64());

        let e = warm_engine();
        let t0 = Instant::now();
        e.apply(insert.clone()).unwrap();
        e.run(&req(&cold_probe));
        samples.1.push(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let fresh = ExplanationEngine::new(
            textfmt::parse_dataset(&final_text).unwrap(),
            EngineConfig::default(),
        );
        fresh.run(&req(&warm_probe));
        samples.2.push(t0.elapsed().as_secs_f64());
    }
    let (mutate_warm, mutate_cold, reload) = (
        Stats::from_samples(&samples.0),
        Stats::from_samples(&samples.1),
        Stats::from_samples(&samples.2),
    );
    let speedup_warm = reload.mean / mutate_warm.mean;
    let speedup_cold = reload.mean / mutate_cold.mean;

    // Warm-hit retention: a 2·queries classify set (half per cluster side),
    // warmed, then re-run right after the insert. Far-side entries
    // revalidate; mutated-side entries miss.
    let e = ExplanationEngine::new(
        textfmt::parse_dataset(&seed_text).unwrap(),
        EngineConfig::default(),
    );
    let batch: Vec<Request> = (0..queries)
        .flat_map(|i| {
            let pos = classify_line(&seed_text, i % n_per_class, i / 3, &format!("p{i}"));
            let neg =
                classify_line(&seed_text, n_per_class + i % n_per_class, i / 3, &format!("n{i}"));
            [req(&pos), req(&neg)]
        })
        .collect();
    let warm_responses = e.run_batch(&batch);
    e.apply(insert.clone()).unwrap();
    let (after_responses, stats) = e.run_batch_with_stats(&batch);
    let retention = stats.cache_hits as f64 / batch.len() as f64;
    let revalidated = e.stats().revalidated;

    // Sanity: the retained answers are sound — every post-mutation response
    // equals the fresh-load oracle (cheap spot check over the whole batch).
    let oracle = ExplanationEngine::new(
        textfmt::parse_dataset(&e.dataset_text()).unwrap(),
        EngineConfig::default(),
    );
    for (r, o) in after_responses.iter().zip(oracle.run_batch(&batch)) {
        assert_eq!(r.to_json_line(), o.to_json_line(), "retention changed response bytes");
    }
    drop(warm_responses);

    println!(
        "insert+query (far side)     mean={:>9.6}s  ±{:.6}s",
        mutate_warm.mean, mutate_warm.ci95
    );
    println!(
        "insert+query (mutated side) mean={:>9.6}s  ±{:.6}s",
        mutate_cold.mean, mutate_cold.ci95
    );
    println!("reload+query                mean={:>9.6}s  ±{:.6}s", reload.mean, reload.ci95);
    println!(
        "speedup: {speedup_warm:.1}x (far side), {speedup_cold:.1}x (mutated side); warm-hit retention {:.0}% ({revalidated} revalidated)",
        retention * 100.0
    );

    // Acceptance gates (ISSUE 5): single-point mutation + first query ≥ 5×
    // faster than full reload + first query; retention is real.
    assert!(
        speedup_warm >= 5.0,
        "insert+first-query must be ≥ 5x faster than reload+first-query, got {speedup_warm:.1}x"
    );
    assert!(
        retention >= 0.25 && revalidated > 0,
        "mutation must retain warm hits for untouched queries, got {:.0}% ({revalidated} revalidated)",
        retention * 100.0
    );

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"points\": {}, \"dim\": {dim}, \"retention_queries\": {}, \"reps\": {reps}}},",
        2 * n_per_class,
        2 * queries
    );
    let _ = writeln!(
        json,
        "  \"insert_first_query_far_side_s\": {:.6},\n  \"insert_first_query_mutated_side_s\": {:.6},\n  \"reload_first_query_s\": {:.6},",
        mutate_warm.mean, mutate_cold.mean, reload.mean
    );
    let _ = writeln!(
        json,
        "  \"speedup_far_side\": {speedup_warm:.1},\n  \"speedup_mutated_side\": {speedup_cold:.1},\n  \"warm_hit_retention\": {retention:.3},\n  \"revalidated\": {revalidated}"
    );
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_delta.json");
    std::fs::write(path, &json).expect("write BENCH_delta.json");
    println!("wrote {path}");
}
