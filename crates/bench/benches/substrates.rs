//! Substrate microbenches and the design ablation called out in DESIGN.md:
//! native guarded-cardinality propagation vs the sequential-counter CNF
//! encoding (what cardinality-cadical buys the paper's encoding), plus the
//! classifier, index, LP and QP baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knn_datasets::random::{random_boolean_dataset, random_boolean_point};
use knn_sat::encode::add_card_ge_cnf;
use knn_sat::{Lit, Solver};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ablation: one counterfactual-shaped query (selector clause + guarded
/// at-least constraints + distance bound) with native cards vs CNF cards.
fn cardinality_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cardinality");
    group.sample_size(10);
    for &native in &[true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if native { "native" } else { "cnf_seqcounter" }),
            &native,
            |b, &native| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(9);
                    let n = 60usize;
                    let groups = 30usize;
                    let mut s = Solver::new();
                    let z = s.new_vars(n);
                    let sel: Vec<Lit> = (0..groups).map(|_| s.new_var().pos()).collect();
                    s.add_clause(&sel);
                    for g in &sel {
                        let width = rng.gen_range(10..30usize);
                        let lits: Vec<Lit> = (0..width)
                            .map(|_| z[rng.gen_range(0..n)].lit(rng.gen_bool(0.5)))
                            .collect();
                        let mut uniq = lits.clone();
                        uniq.sort();
                        uniq.dedup();
                        // Drop complementary pairs to keep the constraint well-formed.
                        let clean: Vec<Lit> =
                            uniq.iter().copied().filter(|l| !uniq.contains(&l.negate())).collect();
                        if clean.len() < 3 {
                            continue;
                        }
                        let bound = (clean.len() / 2 + 1) as u32;
                        if native {
                            s.add_card_ge(Some(*g), &clean, bound);
                        } else {
                            add_card_ge_cnf(&mut s, Some(*g), &clean, bound);
                        }
                    }
                    criterion::black_box(s.solve())
                });
            },
        );
    }
    group.finish();
}

fn classifier_and_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10);

    group.bench_function("hamming_classifier_N500_n128", |b| {
        let mut rng = StdRng::seed_from_u64(10);
        let ds = random_boolean_dataset(&mut rng, 500, 128, 0.5);
        let knn = knn_core::BooleanKnn::new(&ds, knn_core::OddK::THREE);
        let x = random_boolean_point(&mut rng, 128);
        b.iter(|| criterion::black_box(knn.classify(&x)));
    });

    group.bench_function("kdtree_knn_N2000_d8", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let pts: Vec<Vec<f64>> =
            (0..2000).map(|_| (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
        let tree = knn_index::KdTree::new(pts, knn_space::LpMetric::L2);
        let q: Vec<f64> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        b.iter(|| criterion::black_box(tree.knn(&q, 5)));
    });

    group.bench_function("lp_simplex_f64_40x60", |b| {
        let mut rng = StdRng::seed_from_u64(12);
        let n = 60usize;
        let m = 40usize;
        let mut lp = knn_lp::LpProblem::<f64>::new(n);
        for j in 0..n {
            lp.set_lower(j, 0.0);
            lp.set_upper(j, 10.0);
        }
        for _ in 0..m {
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..3.0)).collect();
            lp.add_dense(&a, knn_lp::Rel::Le, rng.gen_range(5.0..50.0));
        }
        let c_vec: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..2.0)).collect();
        b.iter(|| criterion::black_box(lp.solve(&c_vec, knn_lp::Objective::Maximize)));
    });

    group.bench_function("qp_projection_f64_d50_m30", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 50usize;
        let mut poly = knn_qp::Polyhedron::<f64>::whole_space(n);
        for _ in 0..30 {
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            poly.add_le(a, rng.gen_range(0.5..2.0));
        }
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        b.iter(|| criterion::black_box(knn_qp::project_onto_polyhedron(&x, &poly)));
    });

    group.finish();
}

/// Ablation: the three exact NN structures (the FAISS role, DESIGN.md §1) on
/// one clustered workload — brute scan, KD-tree, VP-tree. KD wins at low
/// dimension, brute catches up as dimension grows (the §1-cited curse of
/// dimensionality), VP pays a metric-agnosticity tax.
fn index_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_index");
    group.sample_size(20);
    for &dim in &[4usize, 16, 64] {
        let mut rng = StdRng::seed_from_u64(14);
        let n = 4000usize;
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let center = if i % 2 == 0 { 1.0 } else { -1.0 };
                (0..dim).map(|_| center + rng.gen_range(-0.5..0.5)).collect()
            })
            .collect();
        let queries: Vec<Vec<f64>> =
            (0..32).map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect()).collect();

        let brute = knn_index::BruteForceIndex::new(pts.clone(), knn_space::LpMetric::L2);
        group.bench_function(BenchmarkId::new("brute", dim), |b| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(brute.knn(q, 5));
                }
            })
        });

        let kd = knn_index::KdTree::new(pts.clone(), knn_space::LpMetric::L2);
        group.bench_function(BenchmarkId::new("kdtree", dim), |b| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(kd.knn(q, 5));
                }
            })
        });

        let vp = knn_index::VpTree::new(pts.clone(), |a: &Vec<f64>, b: &Vec<f64>| {
            knn_space::LpMetric::L2.dist_f64(a, b)
        });
        group.bench_function(BenchmarkId::new("vptree", dim), |b| {
            b.iter(|| {
                for q in &queries {
                    criterion::black_box(vp.knn(q, 5));
                }
            })
        });
    }
    group.finish();
}

/// Ablation: MILP node-order and rounding-heuristic options on the Figure-5a
/// counterfactual model (the design choices added on top of plain DFS B&B).
fn milp_ablation(c: &mut Criterion) {
    use knn_core::counterfactual::hamming::closest_milp_with;
    use knn_milp::{MilpConfig, NodeOrder};
    let mut group = c.benchmark_group("ablation_milp");
    group.sample_size(10);
    let configs: [(&str, MilpConfig); 3] = [
        ("dfs", MilpConfig::default()),
        ("dfs+rounding", MilpConfig { rounding_heuristic: true, ..Default::default() }),
        (
            "best_bound+rounding",
            MilpConfig {
                node_order: NodeOrder::BestBound,
                rounding_heuristic: true,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in configs {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut rng = StdRng::seed_from_u64(15);
            let ds = random_boolean_dataset(&mut rng, 25, 12, 0.5);
            let x = random_boolean_point(&mut rng, 12);
            b.iter(|| criterion::black_box(closest_milp_with(&ds, &x, cfg.clone()).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    cardinality_ablation,
    classifier_and_index,
    index_ablation,
    milp_ablation
);
criterion_main!(benches);
