//! Active-set projection onto a polyhedron.

use crate::linalg::{gram, independent_rows, mat_vec, solve_square};
use crate::polyhedron::Polyhedron;
use knn_num::field::{dot, norm_sq};
use knn_num::Field;

/// Result of a projection QP.
#[derive(Clone, Debug, PartialEq)]
pub enum QpOutcome<F> {
    /// The closest point of the polyhedron to `x` and the squared distance.
    Optimal {
        /// The projection of `x` onto the polyhedron.
        y: Vec<F>,
        /// `‖x − y‖²`.
        dist_sq: F,
    },
    /// The polyhedron is empty.
    Infeasible,
}

impl<F: Field> QpOutcome<F> {
    /// The optimal point, if any.
    pub fn point(&self) -> Option<&[F]> {
        match self {
            QpOutcome::Optimal { y, .. } => Some(y),
            QpOutcome::Infeasible => None,
        }
    }

    /// The squared distance, if feasible.
    pub fn dist_sq(&self) -> Option<&F> {
        match self {
            QpOutcome::Optimal { dist_sq, .. } => Some(dist_sq),
            QpOutcome::Infeasible => None,
        }
    }
}

/// Minimizes `‖x − y‖²` over the closed polyhedron (Theorem 2's subproblem).
///
/// Strictly convex objective ⇒ the active-set iteration terminates finitely;
/// with the exact field it is exact. The multiplier *drop* rule picks the most
/// negative multiplier (lowest index on ties) and the *add* rule picks the
/// first blocking constraint, which avoids cycling in practice; a generous
/// iteration cap guards the float instantiation.
pub fn project_onto_polyhedron<F: Field>(x: &[F], poly: &Polyhedron<F>) -> QpOutcome<F> {
    project_onto_polyhedron_from(x, poly, None)
}

/// [`project_onto_polyhedron`] with an optional warm start: when `start` is a
/// feasible point of the polyhedron, the phase-1 LP is skipped entirely —
/// the dominant cost when projecting onto many Voronoi-type cells whose
/// owning data point is trivially feasible (Theorem 2's inner loop).
pub fn project_onto_polyhedron_from<F: Field>(
    x: &[F],
    poly: &Polyhedron<F>,
    start: Option<&[F]>,
) -> QpOutcome<F> {
    crate::tally::bump_qp_solves();
    let n = poly.dim();
    assert_eq!(x.len(), n);

    // Independent equality rows (also detects inconsistent equalities early).
    let eqs = poly.eqs();
    let Some(eq_keep) = independent_rows(eqs) else {
        return QpOutcome::Infeasible;
    };
    let eq_rows: Vec<(Vec<F>, F)> = eq_keep.iter().map(|&i| eqs[i].clone()).collect();

    let warm = start.filter(|s| poly.contains(s)).map(|s| s.to_vec());
    let Some(mut y) = warm.or_else(|| poly.feasible_point()) else {
        return QpOutcome::Infeasible;
    };

    let ineqs = poly.ineqs();
    let mut working: Vec<usize> = Vec::new(); // indices into ineqs
    let cap = 200 + 20 * (n + ineqs.len() + eq_rows.len());

    for _iter in 0..cap {
        // Active matrix A: equality rows first, then working inequalities.
        let active: Vec<&Vec<F>> =
            eq_rows.iter().map(|(a, _)| a).chain(working.iter().map(|&j| &ineqs[j].0)).collect();
        let r: Vec<F> = x.iter().zip(&y).map(|(xi, yi)| xi.clone() - yi.clone()).collect();

        // Project r onto the null space of A.
        let p = if active.is_empty() {
            r.clone()
        } else {
            let a_rows: Vec<Vec<F>> = active.iter().map(|a| (*a).clone()).collect();
            let g = gram(&a_rows);
            let ar = mat_vec(&a_rows, &r);
            match solve_square(&g, &ar) {
                Some(z) => {
                    let mut p = r.clone();
                    for (zi, row) in z.iter().zip(&a_rows) {
                        for (pk, ak) in p.iter_mut().zip(row) {
                            *pk = pk.clone() - zi.clone() * ak.clone();
                        }
                    }
                    p
                }
                None => {
                    // Dependent working set (can only happen through degenerate
                    // additions); drop the most recently added inequality.
                    working.pop();
                    continue;
                }
            }
        };

        if norm_sq(&p).is_zero() {
            // Stationary on the active set: check multipliers.
            if working.is_empty() {
                return finish(x, y);
            }
            let a_rows: Vec<Vec<F>> = eq_rows
                .iter()
                .map(|(a, _)| a.clone())
                .chain(working.iter().map(|&j| ineqs[j].0.clone()))
                .collect();
            let g = gram(&a_rows);
            let two_r: Vec<F> = r.iter().map(|v| v.clone() + v.clone()).collect();
            let rhs = mat_vec(&a_rows, &two_r);
            let Some(lambda) = solve_square(&g, &rhs) else {
                working.pop();
                continue;
            };
            // Multipliers of the working inequalities sit after the equalities.
            let mut worst: Option<(usize, F)> = None;
            for (pos, &j) in working.iter().enumerate() {
                let l = &lambda[eq_rows.len() + pos];
                if l.is_negative() {
                    match &worst {
                        Some((_, w)) if *l >= *w => {}
                        _ => worst = Some((pos, l.clone())),
                    }
                }
                let _ = j;
            }
            match worst {
                None => return finish(x, y),
                Some((pos, _)) => {
                    working.remove(pos);
                }
            }
            continue;
        }

        // Line search toward y + p, blocked by inactive inequalities.
        let mut alpha = F::one();
        let mut blocker: Option<usize> = None;
        for (j, (a, b)) in ineqs.iter().enumerate() {
            if working.contains(&j) {
                continue;
            }
            let d = dot(a, &p);
            if d.is_positive() {
                let slack = b.clone() - dot(a, &y);
                let t = slack / d;
                let t = if t.is_negative() { F::zero() } else { t };
                if t < alpha {
                    alpha = t;
                    blocker = Some(j);
                }
            }
        }
        if !alpha.is_zero() {
            for (yk, pk) in y.iter_mut().zip(&p) {
                *yk = yk.clone() + alpha.clone() * pk.clone();
            }
        }
        if let Some(j) = blocker {
            working.push(j);
        }
    }
    panic!("active-set QP exceeded {cap} iterations; numerically stuck");
}

fn finish<F: Field>(x: &[F], y: Vec<F>) -> QpOutcome<F> {
    let diff: Vec<F> = x.iter().zip(&y).map(|(a, b)| a.clone() - b.clone()).collect();
    let dist_sq = norm_sq(&diff);
    QpOutcome::Optimal { y, dist_sq }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64, q: i64) -> Rat {
        Rat::frac(p, q)
    }

    fn unit_box() -> Polyhedron<Rat> {
        let mut p = Polyhedron::whole_space(2);
        p.add_ge(vec![r(1, 1), r(0, 1)], r(0, 1));
        p.add_le(vec![r(1, 1), r(0, 1)], r(1, 1));
        p.add_ge(vec![r(0, 1), r(1, 1)], r(0, 1));
        p.add_le(vec![r(0, 1), r(1, 1)], r(1, 1));
        p
    }

    #[test]
    fn interior_point_projects_to_itself() {
        let x = [r(1, 2), r(1, 3)];
        match project_onto_polyhedron(&x, &unit_box()) {
            QpOutcome::Optimal { y, dist_sq } => {
                assert_eq!(y, vec![r(1, 2), r(1, 3)]);
                assert!(dist_sq.is_zero());
            }
            _ => panic!("feasible box"),
        }
    }

    #[test]
    fn face_projection() {
        let x = [r(2, 1), r(1, 2)];
        match project_onto_polyhedron(&x, &unit_box()) {
            QpOutcome::Optimal { y, dist_sq } => {
                assert_eq!(y, vec![r(1, 1), r(1, 2)]);
                assert_eq!(dist_sq, r(1, 1));
            }
            _ => panic!("feasible box"),
        }
    }

    #[test]
    fn corner_projection() {
        let x = [r(3, 1), r(4, 1)];
        match project_onto_polyhedron(&x, &unit_box()) {
            QpOutcome::Optimal { y, dist_sq } => {
                assert_eq!(y, vec![r(1, 1), r(1, 1)]);
                assert_eq!(dist_sq, r(13, 1)); // 2² + 3²
            }
            _ => panic!("feasible box"),
        }
    }

    #[test]
    fn projection_onto_affine_line() {
        // Project the origin onto {x + y = 1}: closest point (1/2, 1/2).
        let mut p = Polyhedron::whole_space(2);
        p.add_eq(vec![r(1, 1), r(1, 1)], r(1, 1));
        match project_onto_polyhedron(&[r(0, 1), r(0, 1)], &p) {
            QpOutcome::Optimal { y, dist_sq } => {
                assert_eq!(y, vec![r(1, 2), r(1, 2)]);
                assert_eq!(dist_sq, r(1, 2));
            }
            _ => panic!("line is nonempty"),
        }
    }

    #[test]
    fn projection_onto_simplex() {
        // {x ≥ 0, y ≥ 0, x + y ≤ 1} from (2,2) → (1/2, 1/2).
        let mut p = Polyhedron::whole_space(2);
        p.add_ge(vec![r(1, 1), r(0, 1)], r(0, 1));
        p.add_ge(vec![r(0, 1), r(1, 1)], r(0, 1));
        p.add_le(vec![r(1, 1), r(1, 1)], r(1, 1));
        match project_onto_polyhedron(&[r(2, 1), r(2, 1)], &p) {
            QpOutcome::Optimal { y, dist_sq } => {
                assert_eq!(y, vec![r(1, 2), r(1, 2)]);
                assert_eq!(dist_sq, r(9, 2));
            }
            _ => panic!("simplex is nonempty"),
        }
    }

    #[test]
    fn infeasible_polyhedron() {
        let mut p = Polyhedron::whole_space(1);
        p.add_ge(vec![r(1, 1)], r(1, 1));
        p.add_le(vec![r(1, 1)], r(0, 1));
        assert_eq!(project_onto_polyhedron(&[r(0, 1)], &p), QpOutcome::Infeasible);
    }

    #[test]
    fn redundant_constraints_tolerated() {
        let mut p = unit_box();
        // Duplicate a face twice more.
        p.add_le(vec![r(1, 1), r(0, 1)], r(1, 1));
        p.add_le(vec![r(2, 1), r(0, 1)], r(2, 1));
        match project_onto_polyhedron(&[r(5, 1), r(1, 2)], &p) {
            QpOutcome::Optimal { y, .. } => assert_eq!(y, vec![r(1, 1), r(1, 2)]),
            _ => panic!("feasible"),
        }
    }

    #[test]
    fn inconsistent_equalities() {
        let mut p = Polyhedron::whole_space(2);
        p.add_eq(vec![r(1, 1), r(1, 1)], r(1, 1));
        p.add_eq(vec![r(2, 1), r(2, 1)], r(3, 1));
        assert_eq!(project_onto_polyhedron(&[r(0, 1), r(0, 1)], &p), QpOutcome::Infeasible);
    }

    #[test]
    fn exact_and_float_agree_on_random_projections() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..25 {
            let n = rng.gen_range(1..4usize);
            let m = rng.gen_range(1..6usize);
            let mut pr = Polyhedron::<Rat>::whole_space(n);
            let mut pf = Polyhedron::<f64>::whole_space(n);
            for _ in 0..m {
                let a: Vec<i64> = (0..n).map(|_| rng.gen_range(-3i64..4)).collect();
                if a.iter().all(|&v| v == 0) {
                    continue;
                }
                let b = rng.gen_range(0i64..8);
                pr.add_le(a.iter().map(|&v| Rat::from_int(v)).collect(), Rat::from_int(b));
                pf.add_le(a.iter().map(|&v| v as f64).collect(), b as f64);
            }
            let x: Vec<i64> = (0..n).map(|_| rng.gen_range(-5i64..6)).collect();
            let xr: Vec<Rat> = x.iter().map(|&v| Rat::from_int(v)).collect();
            let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
            let or = project_onto_polyhedron(&xr, &pr);
            let of = project_onto_polyhedron(&xf, &pf);
            match (or, of) {
                (
                    QpOutcome::Optimal { dist_sq: dr, y: yr },
                    QpOutcome::Optimal { dist_sq: df, .. },
                ) => {
                    assert!(
                        (dr.to_f64() - df).abs() < 1e-6,
                        "distance mismatch: exact {dr} vs float {df}"
                    );
                    assert!(pr.contains(&yr), "exact projection must stay feasible");
                }
                (QpOutcome::Infeasible, QpOutcome::Infeasible) => {}
                (a, b) => panic!("outcome class mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn optimality_dominates_random_feasible_points() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let poly = unit_box();
        for _ in 0..40 {
            let x =
                [Rat::frac(rng.gen_range(-40i64..40), 8), Rat::frac(rng.gen_range(-40i64..40), 8)];
            let QpOutcome::Optimal { dist_sq, .. } = project_onto_polyhedron(&x, &poly) else {
                panic!("box feasible");
            };
            for _ in 0..10 {
                let z =
                    [Rat::frac(rng.gen_range(0i64..=8), 8), Rat::frac(rng.gen_range(0i64..=8), 8)];
                let d: Rat = norm_sq(&[x[0].clone() - z[0].clone(), x[1].clone() - z[1].clone()]);
                assert!(d >= dist_sq, "random feasible point beats 'optimal' projection");
            }
        }
    }
}
