//! Closed polyhedra `{y : Gy ≤ h, Ey = e}` and their LP views.

use knn_lp::{LpProblem, Rel};
use knn_num::Field;

/// A closed polyhedron in `ℝⁿ`, given by inequalities `a·y ≤ b` and
/// equalities `a·y = b`.
///
/// The open polyhedra of Proposition 1 (`f = 0` regions) are represented by
/// the closure here plus strictness handled at the call sites (Theorem 2's
/// closure argument, implemented in `knn-core`).
#[derive(Clone, Debug)]
pub struct Polyhedron<F> {
    n: usize,
    ineqs: Vec<(Vec<F>, F)>,
    eqs: Vec<(Vec<F>, F)>,
}

impl<F: Field> Polyhedron<F> {
    /// The whole space `ℝⁿ`.
    pub fn whole_space(n: usize) -> Self {
        Polyhedron { n, ineqs: Vec::new(), eqs: Vec::new() }
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Adds `a·y ≤ b`.
    pub fn add_le(&mut self, a: Vec<F>, b: F) {
        assert_eq!(a.len(), self.n);
        self.ineqs.push((a, b));
    }

    /// Adds `a·y ≥ b` (stored as `−a·y ≤ −b`).
    pub fn add_ge(&mut self, a: Vec<F>, b: F) {
        self.add_le(a.into_iter().map(|c| -c).collect(), -b);
    }

    /// Adds `a·y = b`.
    pub fn add_eq(&mut self, a: Vec<F>, b: F) {
        assert_eq!(a.len(), self.n);
        self.eqs.push((a, b));
    }

    /// Fixes coordinate `i` to `v` (the affine subspaces `U(X, x̄)` of Prop 3).
    pub fn fix_coord(&mut self, i: usize, v: F) {
        let mut a = vec![F::zero(); self.n];
        a[i] = F::one();
        self.add_eq(a, v);
    }

    /// The inequality rows `(a, b)` meaning `a·y ≤ b`.
    pub fn ineqs(&self) -> &[(Vec<F>, F)] {
        &self.ineqs
    }

    /// The equality rows.
    pub fn eqs(&self) -> &[(Vec<F>, F)] {
        &self.eqs
    }

    /// Evaluates membership of `y` (closed semantics).
    pub fn contains(&self, y: &[F]) -> bool {
        self.ineqs.iter().all(|(a, b)| !(knn_num::field::dot(a, y) - b.clone()).is_positive())
            && self.eqs.iter().all(|(a, b)| (knn_num::field::dot(a, y) - b.clone()).is_zero())
    }

    /// Evaluates strict membership (all inequalities strictly satisfied;
    /// equalities still exactly satisfied).
    pub fn contains_strictly(&self, y: &[F]) -> bool {
        self.ineqs.iter().all(|(a, b)| (knn_num::field::dot(a, y) - b.clone()).is_negative())
            && self.eqs.iter().all(|(a, b)| (knn_num::field::dot(a, y) - b.clone()).is_zero())
    }

    /// Builds the corresponding LP feasibility problem.
    pub fn to_lp(&self) -> LpProblem<F> {
        let mut lp = LpProblem::new(self.n);
        for (a, b) in &self.ineqs {
            lp.add_dense(a, Rel::Le, b.clone());
        }
        for (a, b) in &self.eqs {
            lp.add_dense(a, Rel::Eq, b.clone());
        }
        lp
    }

    /// Builds the LP with every inequality made strict (the *interior*, given
    /// the equalities): used for open-polyhedron nonemptiness (Prop 1 f=0 side).
    pub fn to_strict_lp(&self) -> LpProblem<F> {
        let mut lp = LpProblem::new(self.n);
        for (a, b) in &self.ineqs {
            lp.add_dense(a, Rel::Lt, b.clone());
        }
        for (a, b) in &self.eqs {
            lp.add_dense(a, Rel::Eq, b.clone());
        }
        lp
    }

    /// Any feasible point of the closed polyhedron.
    pub fn feasible_point(&self) -> Option<Vec<F>> {
        self.to_lp().feasible_point()
    }

    /// Any point satisfying all inequalities strictly (and equalities exactly).
    pub fn strict_feasible_point(&self) -> Option<Vec<F>> {
        self.to_strict_lp().strict_feasible()
    }

    /// Like [`Polyhedron::feasible_point`] restricted to the affine subspace
    /// `{y : yᵢ = v ∀(i, v) ∈ fixed}`, without mutating (or cloning) the
    /// polyhedron — the memoized-regions hot path of the batch engine.
    pub fn feasible_point_fixed(&self, fixed: &[(usize, F)]) -> Option<Vec<F>> {
        let mut lp = self.to_lp();
        for (i, v) in fixed {
            lp.fix_var(*i, v.clone());
        }
        lp.feasible_point()
    }

    /// Like [`Polyhedron::strict_feasible_point`] restricted to an affine
    /// subspace, without mutating the polyhedron.
    pub fn strict_feasible_point_fixed(&self, fixed: &[(usize, F)]) -> Option<Vec<F>> {
        let mut lp = self.to_strict_lp();
        for (i, v) in fixed {
            lp.fix_var(*i, v.clone());
        }
        lp.strict_feasible()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64, q: i64) -> Rat {
        Rat::frac(p, q)
    }

    fn unit_box() -> Polyhedron<Rat> {
        let mut p = Polyhedron::whole_space(2);
        p.add_ge(vec![r(1, 1), r(0, 1)], r(0, 1));
        p.add_le(vec![r(1, 1), r(0, 1)], r(1, 1));
        p.add_ge(vec![r(0, 1), r(1, 1)], r(0, 1));
        p.add_le(vec![r(0, 1), r(1, 1)], r(1, 1));
        p
    }

    #[test]
    fn membership() {
        let p = unit_box();
        assert!(p.contains(&[r(1, 2), r(1, 2)]));
        assert!(p.contains(&[r(0, 1), r(1, 1)]));
        assert!(!p.contains(&[r(3, 2), r(1, 2)]));
        assert!(p.contains_strictly(&[r(1, 2), r(1, 2)]));
        assert!(!p.contains_strictly(&[r(0, 1), r(1, 2)]));
    }

    #[test]
    fn feasible_points() {
        let p = unit_box();
        let y = p.feasible_point().unwrap();
        assert!(p.contains(&y));
        let ys = p.strict_feasible_point().unwrap();
        assert!(p.contains_strictly(&ys));
    }

    #[test]
    fn empty_interior() {
        // A segment: 0 ≤ x ≤ 1, y = 0 — closed nonempty, but x-strict interior
        // exists while adding contradictory strict rows kills it.
        let mut p = Polyhedron::whole_space(1);
        p.add_ge(vec![r(1, 1)], r(0, 1));
        p.add_le(vec![r(1, 1)], r(0, 1));
        assert!(p.feasible_point().is_some());
        assert!(p.strict_feasible_point().is_none());
    }

    #[test]
    fn fixed_coordinates() {
        let mut p = unit_box();
        p.fix_coord(0, r(1, 4));
        let y = p.feasible_point().unwrap();
        assert_eq!(y[0], r(1, 4));
    }
}
