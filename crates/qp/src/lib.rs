//! Convex quadratic programming for the `explainable-knn` workspace.
//!
//! The only QP shape the paper needs (Theorem 2, Corollary 2) is the
//! *projection problem*: minimize `‖x − y‖²` subject to `Gy ≤ h`, `Ey = e`.
//! Kozlov–Tarasov–Khachiyan polynomial solvability justifies the complexity
//! claims; operationally we use the textbook active-set method for strictly
//! convex QPs (Nocedal & Wright, Alg. 16.3), which terminates finitely and —
//! instantiated with exact rationals — exactly.
//!
//! The solver is generic over [`knn_num::Field`]: `Rat` is the ground truth in
//! tests and small instances, `f64` is the benchmarking path (Figure 6b).
//!
//! ```
//! use knn_qp::{Polyhedron, project_onto_polyhedron, QpOutcome};
//!
//! // Project the origin onto the halfplane x + y ≥ 2 (i.e. −x − y ≤ −2).
//! let mut poly = Polyhedron::<f64>::whole_space(2);
//! poly.add_le(vec![-1.0, -1.0], -2.0);
//! match project_onto_polyhedron(&[0.0, 0.0], &poly) {
//!     QpOutcome::Optimal { y, dist_sq } => {
//!         assert!((y[0] - 1.0).abs() < 1e-9 && (y[1] - 1.0).abs() < 1e-9);
//!         assert!((dist_sq - 2.0).abs() < 1e-9);
//!     }
//!     QpOutcome::Infeasible => unreachable!(),
//! }
//! ```

#![warn(missing_docs)]

pub mod linalg;
pub mod polyhedron;
pub mod solver;

pub use polyhedron::Polyhedron;
pub use solver::{project_onto_polyhedron, project_onto_polyhedron_from, QpOutcome};

/// Thread-local work tally for resource accounting (mirrors
/// `knn_lp::tally`): every projection solve bumps a non-atomic thread-local
/// counter that serving layers sample around a query's compute phase.
pub mod tally {
    use std::cell::Cell;

    thread_local! {
        static QP_SOLVES: Cell<u64> = const { Cell::new(0) };
    }

    /// Monotonic count of QP projection solves started on this thread.
    pub fn qp_solves() -> u64 {
        QP_SOLVES.with(|c| c.get())
    }

    pub(crate) fn bump_qp_solves() {
        QP_SOLVES.with(|c| c.set(c.get().wrapping_add(1)));
    }
}
