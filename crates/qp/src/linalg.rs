//! Dense exact linear algebra helpers (Gaussian elimination).

use knn_num::Field;

/// Solves the square system `M z = w` by Gaussian elimination with partial
/// pivoting (largest |pivot| — meaningful for `f64`, harmless for `Rat`).
///
/// Returns `None` if `M` is singular.
pub fn solve_square<F: Field>(m: &[Vec<F>], w: &[F]) -> Option<Vec<F>> {
    let n = m.len();
    debug_assert!(m.iter().all(|row| row.len() == n));
    debug_assert_eq!(w.len(), n);
    // Augmented matrix.
    let mut a: Vec<Vec<F>> = m
        .iter()
        .zip(w)
        .map(|(row, b)| {
            let mut r = row.clone();
            r.push(b.clone());
            r
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let mut piv = None;
        let mut best = F::zero();
        for (i, row) in a.iter().enumerate().skip(col) {
            let v = row[col].abs();
            if !v.is_zero() && (piv.is_none() || v > best) {
                piv = Some(i);
                best = v;
            }
        }
        let piv = piv?;
        a.swap(col, piv);
        let inv = F::one() / a[col][col].clone();
        for j in col..=n {
            a[col][j] = a[col][j].clone() * inv.clone();
        }
        for i in 0..n {
            if i == col {
                continue;
            }
            let f = a[i][col].clone();
            if f.is_zero() {
                continue;
            }
            for j in col..=n {
                a[i][j] = a[i][j].clone() - f.clone() * a[col][j].clone();
            }
        }
    }
    Some(a.into_iter().map(|row| row[row.len() - 1].clone()).collect())
}

/// Reduces `rows` (with right-hand sides) to an independent subset spanning the
/// same affine constraints. Returns the indices of the kept rows, or `None` if
/// the system is inconsistent (a zero row with nonzero rhs).
pub fn independent_rows<F: Field>(rows: &[(Vec<F>, F)]) -> Option<Vec<usize>> {
    if rows.is_empty() {
        return Some(Vec::new());
    }
    let n = rows[0].0.len();
    let mut kept: Vec<usize> = Vec::new();
    // Row-echelon accumulation of the kept rows.
    let mut echelon: Vec<(Vec<F>, F)> = Vec::new();
    for (idx, (a, b)) in rows.iter().enumerate() {
        let mut v = a.clone();
        let mut rhs = b.clone();
        for (e, erhs) in &echelon {
            // Eliminate using the leading entry of e.
            let lead = e.iter().position(|c| !c.is_zero()).unwrap();
            if !v[lead].is_zero() {
                let f = v[lead].clone() / e[lead].clone();
                for j in 0..n {
                    v[j] = v[j].clone() - f.clone() * e[j].clone();
                }
                rhs = rhs - f * erhs.clone();
            }
        }
        if v.iter().all(|c| c.is_zero()) {
            if !rhs.is_zero() {
                return None; // inconsistent
            }
            continue; // dependent row
        }
        echelon.push((v, rhs));
        kept.push(idx);
    }
    Some(kept)
}

/// Computes `M v` for a dense matrix (rows) and vector.
pub fn mat_vec<F: Field>(m: &[Vec<F>], v: &[F]) -> Vec<F> {
    m.iter().map(|row| knn_num::field::dot(row, v)).collect()
}

/// Computes the Gram matrix `A Aᵀ` of the given rows.
pub fn gram<F: Field>(a: &[Vec<F>]) -> Vec<Vec<F>> {
    a.iter().map(|ri| a.iter().map(|rj| knn_num::field::dot(ri, rj)).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64) -> Rat {
        Rat::from_int(p)
    }

    #[test]
    fn solve_2x2_exact() {
        let m = vec![vec![r(2), r(1)], vec![r(1), r(3)]];
        let w = vec![r(5), r(10)];
        let z = solve_square(&m, &w).unwrap();
        assert_eq!(z, vec![r(1), r(3)]);
    }

    #[test]
    fn singular_detected() {
        let m = vec![vec![r(1), r(2)], vec![r(2), r(4)]];
        assert!(solve_square(&m, &[r(1), r(2)]).is_none());
    }

    #[test]
    fn solve_with_pivoting_f64() {
        let m = vec![vec![1e-12, 1.0], vec![1.0, 1.0]];
        let w = vec![1.0, 2.0];
        let z = solve_square(&m, &w).unwrap();
        assert!((z[0] - 1.0).abs() < 1e-6);
        assert!((z[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn independent_rows_filtering() {
        let rows = vec![
            (vec![r(1), r(0)], r(1)),
            (vec![r(2), r(0)], r(2)), // dependent, consistent
            (vec![r(0), r(1)], r(3)),
        ];
        assert_eq!(independent_rows(&rows).unwrap(), vec![0, 2]);
    }

    #[test]
    fn inconsistent_rows_detected() {
        let rows = vec![(vec![r(1), r(1)], r(1)), (vec![r(2), r(2)], r(3))];
        assert!(independent_rows(&rows).is_none());
    }

    #[test]
    fn gram_and_matvec() {
        let a = vec![vec![r(1), r(2)], vec![r(3), r(4)]];
        assert_eq!(mat_vec(&a, &[r(1), r(1)]), vec![r(3), r(7)]);
        let g = gram(&a);
        assert_eq!(g[0], vec![r(5), r(11)]);
        assert_eq!(g[1], vec![r(11), r(25)]);
    }
}
