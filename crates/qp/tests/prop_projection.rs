//! Property tests for the projection QP (`min ‖x − y‖²` over a polyhedron):
//! feasibility, optimality against sampled feasible points, and the
//! variational characterization of Euclidean projections.

use knn_qp::{project_onto_polyhedron, Polyhedron, QpOutcome};
use proptest::prelude::*;

const TOL: f64 = 1e-5;

/// A random polyhedron guaranteed nonempty: every halfspace is offset to
/// keep a designated anchor point feasible with nonnegative slack.
#[derive(Clone, Debug)]
struct Instance {
    n: usize,
    anchor: Vec<f64>,
    halfspaces: Vec<(Vec<f64>, f64)>, // a·y ≤ b with a·anchor ≤ b
    x: Vec<f64>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1..=4usize).prop_flat_map(|n| {
        (
            prop::collection::vec(-2.0..2.0f64, n),
            prop::collection::vec((prop::collection::vec(-2.0..2.0f64, n), 0.0..1.5f64), 1..=6),
            prop::collection::vec(-3.0..3.0f64, n),
        )
            .prop_map(move |(anchor, rows, x)| {
                let halfspaces = rows
                    .into_iter()
                    .filter(|(a, _)| a.iter().any(|&c| c.abs() > 1e-6))
                    .map(|(a, slack)| {
                        let b = dot(&a, &anchor) + slack;
                        (a, b)
                    })
                    .collect();
                Instance { n, anchor, halfspaces, x }
            })
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn build(inst: &Instance) -> Polyhedron<f64> {
    let mut p = Polyhedron::whole_space(inst.n);
    for (a, b) in &inst.halfspaces {
        p.add_le(a.clone(), *b);
    }
    p
}

fn feasible(inst: &Instance, y: &[f64]) -> bool {
    inst.halfspaces.iter().all(|(a, b)| dot(a, y) <= b + TOL)
}

/// Deterministic feasible samples: blends of the anchor and projections of
/// box points toward it (all convex blends with the anchor stay feasible
/// only if the other end is feasible, so rejection-filter the blends).
fn feasible_samples(inst: &Instance) -> Vec<Vec<f64>> {
    let mut out = vec![inst.anchor.clone()];
    let mut state = 0xD1B5_4A32_D192_ED03u64;
    for _ in 0..96 {
        let mut y = Vec::with_capacity(inst.n);
        for j in 0..inst.n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            y.push(inst.anchor[j] + (u - 0.5) * 4.0);
        }
        if feasible(inst, &y) {
            out.push(y);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The projection exists (anchor guarantees nonemptiness), is feasible,
    /// reports the right distance, and no sampled feasible point is closer.
    #[test]
    fn projection_is_feasible_and_closest(inst in instance_strategy()) {
        let poly = build(&inst);
        match project_onto_polyhedron(&inst.x, &poly) {
            QpOutcome::Infeasible => {
                prop_assert!(false, "anchor {:?} is feasible by construction", inst.anchor);
            }
            QpOutcome::Optimal { y, dist_sq: d } => {
                prop_assert!(feasible(&inst, &y), "projection {y:?} infeasible");
                prop_assert!((dist_sq(&inst.x, &y) - d).abs() < 1e-4,
                    "reported dist_sq {d} vs actual {}", dist_sq(&inst.x, &y));
                for s in feasible_samples(&inst) {
                    prop_assert!(
                        dist_sq(&inst.x, &s) >= d - 1e-4,
                        "sample {s:?} closer than the projection"
                    );
                }
            }
        }
    }

    /// Variational inequality: `⟨x − p, y − p⟩ ≤ 0` for all feasible y —
    /// the defining property of Euclidean projection onto a convex set.
    #[test]
    fn variational_inequality_holds(inst in instance_strategy()) {
        let poly = build(&inst);
        if let QpOutcome::Optimal { y: p, .. } = project_onto_polyhedron(&inst.x, &poly) {
            let xm: Vec<f64> = inst.x.iter().zip(&p).map(|(a, b)| a - b).collect();
            for s in feasible_samples(&inst) {
                let sm: Vec<f64> = s.iter().zip(&p).map(|(a, b)| a - b).collect();
                prop_assert!(
                    dot(&xm, &sm) <= 1e-3,
                    "⟨x−p, y−p⟩ = {} > 0 for feasible {s:?}",
                    dot(&xm, &sm)
                );
            }
        }
    }

    /// Projecting a feasible point returns (essentially) the point itself.
    #[test]
    fn projection_of_feasible_point_is_identity(inst in instance_strategy()) {
        let poly = build(&inst);
        if let QpOutcome::Optimal { dist_sq: d, .. } =
            project_onto_polyhedron(&inst.anchor, &poly)
        {
            prop_assert!(d < 1e-6, "anchor is feasible; distance must be ~0, got {d}");
        } else {
            prop_assert!(false, "nonempty polyhedron reported infeasible");
        }
    }
}
