//! The SAT model of the discrete setting: an incremental encoding of
//! `f^k_{S⁺,S⁻}(z̄) = target` over variables `z̄ ∈ {0,1}ⁿ`.
//!
//! For k = 1 and `target = 0` this is **exactly the paper's novel encoding**
//! (§9.2): a selector `c_o` per negative point `ō` with clause `⋁ c_o`, and
//! per pair `(ō, s̄)` the guarded cardinality constraint
//!
//! > `c_o ⇒ Σ_{i∈Δ₀} ¬z_i + Σ_{i∈Δ₁} z_i ≥ ⌊(|Δ₀|+|Δ₁|)/2⌋ + 1`
//!
//! expressing `d_H(z̄, ō) < d_H(z̄, s̄)`. We generalize it to any odd k via
//! Proposition 1: selectors `s_a` over the witness class A (`Σ s_a ≥ (k+1)/2`),
//! exclusion selectors `t_c` over the other class B (`Σ t_c ≤ (k−1)/2`), and a
//! guard `g_{a,c}` per pair activated by `s_a ∧ ¬t_c`.
//!
//! Two lazily-added families of *assumption* literals make the one solver
//! instance serve every query incrementally:
//! * `e_i ⇒ z_i = x̄_i` — fixing coordinate `i` (sufficient-reason checks);
//! * `g_r ⇒ d_H(z̄, x̄) ≤ r` — distance bounds (counterfactual binary search).

use knn_sat::{Lit, SolveResult, Solver, Var};
use knn_space::{BitVec, BooleanDataset, Label, OddK};
use std::collections::BTreeMap;

/// Incremental SAT model for "`z̄` is classified `target`".
pub struct DiscreteModel {
    solver: Solver,
    z: Vec<Var>,
    x: BitVec,
    eq_lits: Vec<Lit>,
    dist_guards: BTreeMap<usize, Lit>,
    /// Whether the constraint set is trivially unsatisfiable (no witness
    /// candidates at all).
    trivially_unsat: bool,
}

impl DiscreteModel {
    /// Builds the model for dataset `ds`, neighborhood size `k`, anchor point
    /// `x` (used for the `e_i` and distance literals) and target label.
    pub fn build(ds: &BooleanDataset, k: OddK, x: &BitVec, target: Label) -> Self {
        assert_eq!(x.len(), ds.dim());
        let n = ds.dim();
        let mut solver = Solver::new();
        let z = solver.new_vars(n);
        // Bias the search toward the anchor: close counterfactuals are found
        // early, which the descending distance search then only has to prove
        // optimal.
        for (i, &v) in z.iter().enumerate() {
            solver.set_phase(v, x.get(i));
        }

        // Equality-assumption literals e_i ⇒ (z_i = x_i).
        let eq_lits: Vec<Lit> = (0..n)
            .map(|i| {
                let e = solver.new_var().pos();
                solver.add_clause(&[e.negate(), z[i].lit(x.get(i))]);
                e
            })
            .collect();

        // Witness class A and excluded class B per Proposition 1.
        let (a_label, strict) = match target {
            Label::Positive => (Label::Positive, false),
            Label::Negative => (Label::Negative, true),
        };
        let a_idx = ds.indices_of(a_label);
        let b_idx = ds.indices_of(a_label.flip());
        let maj = k.majority();
        let min_sz = k.minority();

        let mut trivially_unsat = false;
        if a_idx.len() < maj {
            trivially_unsat = true;
        } else {
            let s_a: Vec<Lit> = a_idx.iter().map(|_| solver.new_var().pos()).collect();
            solver.add_card_ge(None, &s_a, maj as u32);
            // Exclusion selectors are only materialized when the budget is
            // positive; with min_sz = 0 (k = 1) the guard of a pair constraint
            // is the witness selector itself — the paper's exact encoding.
            let t_c: Vec<Lit> = if min_sz == 0 {
                Vec::new()
            } else {
                b_idx.iter().map(|_| solver.new_var().pos()).collect()
            };
            if !t_c.is_empty() && min_sz < t_c.len() {
                // At most min_sz exclusions: Σ ¬t_c ≥ |B| − min_sz.
                let neg_t: Vec<Lit> = t_c.iter().map(|l| l.negate()).collect();
                solver.add_card_ge(None, &neg_t, (t_c.len() - min_sz) as u32);
            }
            for (ai, &a) in a_idx.iter().enumerate() {
                for (ci, &c) in b_idx.iter().enumerate() {
                    // Skip pairs the exclusion budget can always absorb.
                    if min_sz >= b_idx.len() {
                        continue;
                    }
                    let a_pt = ds.point(a);
                    let c_pt = ds.point(c);
                    let diff = a_pt.diff_indices(c_pt);
                    let d = diff.len();
                    // Bound for d(z,a) < d(z,c): agreements with a on the
                    // differing set ≥ ⌊d/2⌋+1; non-strict: ≥ ⌈d/2⌉.
                    let bound = if strict { d / 2 + 1 } else { d.div_ceil(2) };
                    let lits: Vec<Lit> = diff.iter().map(|&i| z[i].lit(a_pt.get(i))).collect();
                    // Guard: s_a ∧ ¬t_c ⇒ constraint. With |B| = 0 or when the
                    // pair constraint is trivial we can simplify.
                    if bound == 0 {
                        continue; // constraint trivially true
                    }
                    if bound > d {
                        // Constraint unsatisfiable: forbid s_a ∧ ¬t_c.
                        let mut clause = vec![s_a[ai].negate()];
                        if !t_c.is_empty() {
                            clause.push(t_c[ci]);
                        }
                        solver.add_clause(&clause);
                        continue;
                    }
                    if t_c.is_empty() {
                        // k = 1 shape: guard is the selector itself (the
                        // paper's encoding).
                        solver.add_card_ge(Some(s_a[ai]), &lits, bound as u32);
                    } else {
                        let g = solver.new_var().pos();
                        solver.add_clause(&[g, s_a[ai].negate(), t_c[ci]]);
                        solver.add_card_ge(Some(g), &lits, bound as u32);
                    }
                }
            }
        }

        DiscreteModel {
            solver,
            z,
            x: x.clone(),
            eq_lits,
            dist_guards: BTreeMap::new(),
            trivially_unsat,
        }
    }

    /// The guard literal for `d_H(z, x) ≤ r`, creating it on first use.
    fn distance_guard(&mut self, r: usize) -> Lit {
        let n = self.z.len();
        if let Some(&g) = self.dist_guards.get(&r) {
            return g;
        }
        let g = self.solver.new_var().pos();
        // Σ agreements with x ≥ n − r.
        let agree: Vec<Lit> = (0..n).map(|i| self.z[i].lit(self.x.get(i))).collect();
        self.solver.add_card_ge(Some(g), &agree, (n - r) as u32);
        self.dist_guards.insert(r, g);
        g
    }

    fn extract(&self) -> BitVec {
        BitVec::from_bools(
            &self.z.iter().map(|&v| self.solver.value(v).unwrap_or(false)).collect::<Vec<_>>(),
        )
    }

    /// Is there a `z` with `f(z) = target` agreeing with `x` on `fixed`?
    /// (The complement of Check-SR: SAT ⇔ `fixed` is *not* sufficient.)
    pub fn solve_with_fixed(&mut self, fixed: &[usize]) -> Option<BitVec> {
        if self.trivially_unsat {
            return None;
        }
        let assumptions: Vec<Lit> = fixed.iter().map(|&i| self.eq_lits[i]).collect();
        match self.solver.solve_with(&assumptions) {
            SolveResult::Sat => Some(self.extract()),
            SolveResult::Unsat => None,
        }
    }

    /// Is there a `z` with `f(z) = target` and `d_H(z, x) ≤ r`?
    pub fn solve_within(&mut self, r: usize) -> Option<BitVec> {
        if self.trivially_unsat {
            return None;
        }
        let g = self.distance_guard(r.min(self.z.len()));
        match self.solver.solve_with(&[g]) {
            SolveResult::Sat => Some(self.extract()),
            SolveResult::Unsat => None,
        }
    }

    /// Budgeted variant of [`DiscreteModel::solve_within`]: `None` when the
    /// conflict budget ran out before an answer.
    pub fn solve_within_limited(&mut self, r: usize, max_conflicts: u64) -> Option<Option<BitVec>> {
        if self.trivially_unsat {
            return Some(None);
        }
        let g = self.distance_guard(r.min(self.z.len()));
        match self.solver.solve_limited(&[g], max_conflicts) {
            Some(SolveResult::Sat) => Some(Some(self.extract())),
            Some(SolveResult::Unsat) => Some(None),
            None => None,
        }
    }

    /// Anytime closest-counterfactual search: descends from the first model
    /// like [`DiscreteModel::closest`], but spends at most `max_conflicts`
    /// CDCL conflicts per step. Returns the best witness found and whether it
    /// was **proven** optimal (`true`) or is only budget-best (`false`).
    pub fn closest_budgeted(&mut self, max_conflicts: u64) -> Option<(BitVec, usize, bool)> {
        let n = self.z.len();
        let first = self.solve_within(n)?;
        let mut best_d = self.x.hamming(&first);
        let mut best = first;
        let proven = loop {
            if best_d == 0 {
                break true;
            }
            match self.solve_within_limited(best_d - 1, max_conflicts) {
                Some(Some(z)) => {
                    best_d = self.x.hamming(&z);
                    best = z;
                }
                Some(None) => break true,
                None => break false,
            }
        };
        Some((best, best_d, proven))
    }

    /// The closest `z` with `f(z) = target`.
    ///
    /// §9.2 suggests binary or linear search on the distance bound. UNSAT
    /// queries (bounds below the optimum) are by far the hardest for a CDCL
    /// solver, so the default is a **descending** search: start from the
    /// trivial bound, repeatedly ask for something strictly better than the
    /// incumbent, and stop at the single final UNSAT proof of optimality.
    pub fn closest(&mut self) -> Option<(BitVec, usize)> {
        let n = self.z.len();
        let first = self.solve_within(n)?;
        let mut best_d = self.x.hamming(&first);
        let mut best = first;
        while best_d > 0 {
            match self.solve_within(best_d - 1) {
                Some(z) => {
                    let d = self.x.hamming(&z);
                    debug_assert!(d < best_d);
                    best = z;
                    best_d = d;
                }
                None => break,
            }
        }
        Some((best, best_d))
    }

    /// [`DiscreteModel::closest`] with classic binary search (kept for the
    /// search-strategy comparison in the benchmark suite).
    pub fn closest_binary_search(&mut self) -> Option<(BitVec, usize)> {
        let n = self.z.len();
        let first = self.solve_within(n)?;
        let mut best_d = self.x.hamming(&first);
        let mut best = first;
        let (mut lo, mut hi) = (0usize, best_d);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.solve_within(mid) {
                Some(z) => {
                    let d = self.x.hamming(&z);
                    debug_assert!(d <= mid);
                    best = z;
                    best_d = d;
                    hi = d;
                }
                None => lo = mid + 1,
            }
        }
        Some((best, best_d))
    }

    /// Solver statistics (conflicts) for the benchmark harness.
    pub fn conflicts(&self) -> u64 {
        self.solver.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::BooleanKnn;

    fn example2() -> BooleanDataset {
        let to_bv = |v: [u8; 3]| BitVec::from_bits(&v);
        let pos = vec![to_bv([0, 1, 1]), to_bv([1, 0, 1]), to_bv([1, 1, 1])];
        let mut neg = Vec::new();
        for m in 0..8u8 {
            let bv = to_bv([m & 1, (m >> 1) & 1, (m >> 2) & 1]);
            if !pos.contains(&bv) {
                neg.push(bv);
            }
        }
        BooleanDataset::from_sets(pos, neg)
    }

    #[test]
    fn model_finds_positive_witnesses() {
        let ds = example2();
        let x = BitVec::zeros(3);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        // f(x) = 0; a positive-classified z exists (e.g. 111).
        let mut m = DiscreteModel::build(&ds, OddK::ONE, &x, Label::Positive);
        let z = m.solve_with_fixed(&[]).expect("positive region nonempty");
        assert_eq!(knn.classify(&z), Label::Positive);
    }

    #[test]
    fn fixed_coordinates_respected() {
        let ds = example2();
        let x = BitVec::zeros(3);
        let mut m = DiscreteModel::build(&ds, OddK::ONE, &x, Label::Positive);
        // {2} (component 3) is a sufficient reason in Example 2, so fixing it
        // makes the search UNSAT; {0} is not sufficient.
        assert!(m.solve_with_fixed(&[2]).is_none());
        let w = m.solve_with_fixed(&[0]).expect("{0} is not sufficient");
        assert!(!w.get(0));
    }

    #[test]
    fn closest_counterfactual_distance() {
        let ds = example2();
        let x = BitVec::zeros(3);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        assert_eq!(knn.classify(&x), Label::Negative);
        let mut m = DiscreteModel::build(&ds, OddK::ONE, &x, Label::Positive);
        let (z, d) = m.closest().expect("counterfactual exists");
        assert_eq!(d, 2, "brute force says the closest positive point is at 2");
        assert_eq!(knn.classify(&z), Label::Positive);
        assert_eq!(x.hamming(&z), 2);
    }

    #[test]
    fn model_agrees_with_brute_force_randomly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(55);
        for round in 0..30 {
            let dim = rng.gen_range(2..7usize);
            let npts = rng.gen_range(3..8usize);
            let k = if npts >= 3 && rng.gen_bool(0.4) { OddK::THREE } else { OddK::ONE };
            let mut ds = BooleanDataset::new(dim);
            for i in 0..npts {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i < npts.div_ceil(2) { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let knn = BooleanKnn::new(&ds, k);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let fx = knn.classify(&x);
            let target = fx.flip();
            let mut m = DiscreteModel::build(&ds, k, &x, target);
            let brute = crate::brute::closest_counterfactual(&knn, &x);
            let sat = m.closest();
            match (brute, sat) {
                (None, None) => {}
                (Some((_, bd)), Some((z, sd))) => {
                    assert_eq!(bd, sd, "round {round}: distance mismatch");
                    assert_eq!(knn.classify(&z), target, "round {round}: bad witness");
                }
                (b, s) => panic!("round {round}: brute {b:?} vs sat {s:?}"),
            }
        }
    }

    #[test]
    fn k3_fixed_search_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(56);
        for round in 0..25 {
            let dim = rng.gen_range(2..6usize);
            let npts = rng.gen_range(4..8usize);
            let mut ds = BooleanDataset::new(dim);
            for i in 0..npts {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let knn = BooleanKnn::new(&ds, OddK::THREE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let target = knn.classify(&x).flip();
            let fixed: Vec<usize> = (0..dim).filter(|_| rng.gen_bool(0.4)).collect();
            let mut m = DiscreteModel::build(&ds, OddK::THREE, &x, target);
            let sat_says_counterexample = m.solve_with_fixed(&fixed).is_some();
            let brute_sufficient = crate::brute::is_sufficient_reason(&knn, &x, &fixed);
            assert_eq!(
                sat_says_counterexample, !brute_sufficient,
                "round {round}: fixed={fixed:?}"
            );
        }
    }
}
