//! Multi-label explanations for k = 1 (§10, second bullet).
//!
//! The paper observes that for k = 1 the multi-label case reduces to the
//! binary one: if `x̄` is classified with label `ℓ`, merge all other labels
//! into a single negative class — the nearest neighbor (and hence the
//! classification, and hence every explanation notion) is unchanged. For
//! k ≥ 3 the merge is unsound (the paper leaves that case open); the API
//! only exposes k = 1.
//!
//! [`MultiLabelDataset`] is the discrete version (Hamming, SAT-backed
//! counterfactuals); [`MultiLabelContinuous`] is the ℝⁿ version, backed by
//! the Theorem-2 QP pipeline under ℓ2 and Proposition 4 under ℓ1 — e.g. the
//! ten-class digit problem the paper's §9.1 protocol carves into
//! one-vs-rest tasks.

use crate::abductive::hamming::HammingAbductive;
use crate::abductive::l1::L1Abductive;
use crate::counterfactual::hamming::closest_sat;
use crate::counterfactual::l2::L2Counterfactual;
use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label, LpMetric, OddK};

/// A discrete dataset with arbitrary `usize` labels.
#[derive(Clone, Debug)]
pub struct MultiLabelDataset {
    dim: usize,
    points: Vec<BitVec>,
    labels: Vec<usize>,
}

impl MultiLabelDataset {
    /// An empty dataset of the given dimension.
    pub fn new(dim: usize) -> Self {
        MultiLabelDataset { dim, points: Vec::new(), labels: Vec::new() }
    }

    /// Appends a labeled point.
    pub fn push(&mut self, point: BitVec, label: usize) {
        assert_eq!(point.len(), self.dim);
        self.points.push(point);
        self.labels.push(label);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// 1-NN multi-label classification (nearest point's label; ties broken by
    /// the smallest point index, mirroring the deterministic index order).
    pub fn classify_1nn(&self, x: &BitVec) -> usize {
        assert!(!self.points.is_empty());
        let mut best = 0usize;
        let mut best_d = self.points[0].hamming(x);
        for i in 1..self.points.len() {
            let d = self.points[i].hamming(x);
            if d < best_d {
                best = i;
                best_d = d;
            }
        }
        self.labels[best]
    }

    /// The binary one-vs-rest view for a given label: the paper's merge.
    pub fn one_vs_rest(&self, label: usize) -> BooleanDataset {
        let mut ds = BooleanDataset::new(self.dim);
        for (p, &l) in self.points.iter().zip(&self.labels) {
            ds.push(p.clone(), if l == label { Label::Positive } else { Label::Negative });
        }
        ds
    }

    /// A minimal sufficient reason for the 1-NN multi-label classification of
    /// `x̄` — computed on the merged binary dataset.
    pub fn minimal_sufficient_reason(&self, x: &BitVec) -> Vec<usize> {
        let label = self.classify_1nn(x);
        let merged = self.one_vs_rest(label);
        HammingAbductive::new(&merged, OddK::ONE).minimal(x)
    }

    /// The closest input receiving a *different* label than `x̄` (counter-
    /// factual in the multi-label sense), via the merged binary dataset.
    pub fn closest_counterfactual(&self, x: &BitVec) -> Option<(BitVec, usize)> {
        let label = self.classify_1nn(x);
        let merged = self.one_vs_rest(label);
        closest_sat(&merged, OddK::ONE, x)
    }
}

/// A continuous dataset with arbitrary `usize` labels (1-NN only — see the
/// module docs for why the merge argument needs k = 1).
#[derive(Clone, Debug)]
pub struct MultiLabelContinuous {
    dim: usize,
    points: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl MultiLabelContinuous {
    /// An empty dataset of the given dimension.
    pub fn new(dim: usize) -> Self {
        MultiLabelContinuous { dim, points: Vec::new(), labels: Vec::new() }
    }

    /// Appends a labeled point.
    pub fn push(&mut self, point: Vec<f64>, label: usize) {
        assert_eq!(point.len(), self.dim);
        self.points.push(point);
        self.labels.push(label);
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// 1-NN classification under the given ℓp metric (ties → smallest index).
    pub fn classify_1nn(&self, metric: LpMetric, x: &[f64]) -> usize {
        assert!(!self.points.is_empty());
        let mut best = 0usize;
        let mut best_d = metric.dist_pow::<f64>(&self.points[0], x);
        for i in 1..self.points.len() {
            let d = metric.dist_pow::<f64>(&self.points[i], x);
            if d < best_d {
                best = i;
                best_d = d;
            }
        }
        self.labels[best]
    }

    /// The binary one-vs-rest view for a given label: the paper's merge.
    pub fn one_vs_rest(&self, label: usize) -> ContinuousDataset<f64> {
        let mut ds = ContinuousDataset::new(self.dim);
        for (p, &l) in self.points.iter().zip(&self.labels) {
            ds.push(p.clone(), if l == label { Label::Positive } else { Label::Negative });
        }
        ds
    }

    /// A minimal sufficient reason for the ℓ1 classification of `x̄`
    /// (Proposition 4 on the merged dataset).
    pub fn minimal_sufficient_reason_l1(&self, x: &[f64]) -> Vec<usize> {
        let label = self.classify_1nn(LpMetric::L1, x);
        let merged = self.one_vs_rest(label);
        L1Abductive::new(&merged).minimal(x)
    }

    /// The infimum ℓ2 distance at which `x̄`'s label changes, and a witness
    /// just beyond it (Theorem 2 / Corollary 2 on the merged dataset).
    /// `None` when every point carries `x̄`'s label.
    pub fn closest_counterfactual_l2(&self, x: &[f64]) -> Option<(Vec<f64>, f64)> {
        let label = self.classify_1nn(LpMetric::L2, x);
        let merged = self.one_vs_rest(label);
        let cf = L2Counterfactual::new(&merged, OddK::ONE);
        let inf = cf.infimum(x)?;
        let witness = cf.within(x, &(inf.dist_sq * 1.0001 + 1e-12))?;
        Some((witness, inf.dist_sq.sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BooleanKnn;

    #[test]
    fn continuous_multilabel_roundtrip() {
        let mut ds = MultiLabelContinuous::new(2);
        ds.push(vec![0.0, 0.0], 0);
        ds.push(vec![4.0, 0.0], 1);
        ds.push(vec![0.0, 4.0], 2);
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.classify_1nn(LpMetric::L2, &[1.0, 1.0]), 0);
        assert_eq!(ds.classify_1nn(LpMetric::L2, &[3.5, 1.0]), 1);

        // Counterfactual: from near prototype 0, the cheapest flip is toward
        // prototype 1 or 2 (bisectors at distance 2 from the origin).
        let (w, d) = ds.closest_counterfactual_l2(&[0.0, 0.0]).unwrap();
        assert!((d - 2.0).abs() < 1e-6, "bisector at 2, got {d}");
        assert_ne!(ds.classify_1nn(LpMetric::L2, &w), 0);

        // ℓ1 sufficient reason on the merged view is genuinely sufficient.
        let sr = ds.minimal_sufficient_reason_l1(&[0.5, 0.5]);
        let merged = ds.one_vs_rest(0);
        assert!(L1Abductive::new(&merged).is_sufficient(&[0.5, 0.5], &sr));
    }

    #[test]
    fn continuous_merge_preserves_the_winning_label() {
        // On a grid of queries, the merged binary classifier must agree
        // "positive" wherever the multi-label classifier picks that label.
        let mut ds = MultiLabelContinuous::new(2);
        ds.push(vec![0.0, 0.0], 7);
        ds.push(vec![3.0, 1.0], 1);
        ds.push(vec![-1.0, 2.5], 4);
        ds.push(vec![1.5, -2.0], 1);
        for i in -4..=4 {
            for j in -4..=4 {
                let x = [i as f64 * 0.7, j as f64 * 0.7];
                let l = ds.classify_1nn(LpMetric::L2, &x);
                let merged = ds.one_vs_rest(l);
                let knn = crate::ContinuousKnn::new(&merged, LpMetric::L2, OddK::ONE);
                assert_eq!(knn.classify(&x), Label::Positive, "x = {x:?}");
            }
        }
    }

    #[test]
    fn constant_label_has_no_continuous_counterfactual() {
        let mut ds = MultiLabelContinuous::new(1);
        ds.push(vec![0.0], 3);
        ds.push(vec![1.0], 3);
        assert!(ds.closest_counterfactual_l2(&[0.5]).is_none());
    }

    fn three_class_dataset() -> MultiLabelDataset {
        // Three well-separated prototypes in {0,1}⁶.
        let mut ds = MultiLabelDataset::new(6);
        ds.push(BitVec::from_bits(&[0, 0, 0, 0, 0, 0]), 0);
        ds.push(BitVec::from_bits(&[1, 1, 1, 0, 0, 0]), 1);
        ds.push(BitVec::from_bits(&[0, 0, 0, 1, 1, 1]), 2);
        ds
    }

    #[test]
    fn multilabel_classification() {
        let ds = three_class_dataset();
        assert_eq!(ds.classify_1nn(&BitVec::from_bits(&[1, 1, 0, 0, 0, 0])), 1);
        assert_eq!(ds.classify_1nn(&BitVec::from_bits(&[0, 0, 0, 1, 1, 0])), 2);
        assert_eq!(ds.classify_1nn(&BitVec::zeros(6)), 0);
    }

    #[test]
    fn merge_preserves_classification() {
        let ds = three_class_dataset();
        for bits in 0..64u8 {
            let x = BitVec::from_bools(&(0..6).map(|i| (bits >> i) & 1 == 1).collect::<Vec<_>>());
            let ml = ds.classify_1nn(&x);
            let merged = ds.one_vs_rest(ml);
            let knn = BooleanKnn::new(&merged, OddK::ONE);
            // The merged classifier must consider x "positive" whenever the
            // multi-label classifier picks `ml` — optimistic ties make the
            // binary side at least as positive.
            assert_eq!(knn.classify(&x), Label::Positive, "x = {x:?}");
        }
    }

    #[test]
    fn counterfactual_changes_label() {
        let ds = three_class_dataset();
        let x = BitVec::zeros(6);
        let (y, d) = ds.closest_counterfactual(&x).unwrap();
        assert!(d >= 1);
        assert_ne!(ds.classify_1nn(&y), ds.classify_1nn(&x));
    }

    #[test]
    fn sufficient_reason_on_merged_dataset() {
        let ds = three_class_dataset();
        let x = BitVec::zeros(6);
        let sr = ds.minimal_sufficient_reason(&x);
        // Verify against the merged brute force.
        let merged = ds.one_vs_rest(0);
        let knn = BooleanKnn::new(&merged, OddK::ONE);
        assert!(crate::brute::is_sufficient_reason(&knn, &x, &sr));
    }
}
