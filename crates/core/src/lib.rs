//! Abductive and counterfactual explanations for k-NN classifiers.
//!
//! This crate is the paper's primary contribution, implemented in full:
//!
//! * [`classifier`] — the optimistic k-NN classification function `f^k_{S⁺,S⁻}`
//!   of §2, via the order-statistic characterization derived from Prop 1;
//! * [`abductive`] — sufficient-reason checking and computation:
//!   * ℓ2, any odd k: polynomial Check-SR by LP over the Prop 1 polyhedra
//!     (Prop 3) and minimal SR by greedy deletion (Prop 2 / Cor 1);
//!   * ℓ1, k = 1: the witness-substitution algorithm of Prop 4 / Cor 3;
//!   * Hamming, k = 1: the projected-witness algorithm of Prop 6 / Cor 4;
//!   * Hamming, any odd k: Check-SR by SAT counterexample search (the
//!     problem is coNP-complete, Thm 7);
//!   * minimum SR everywhere via an exact implicit-hitting-set loop with a
//!     per-setting counterexample oracle (NP-hard / Σ₂ᵖ-complete: Thm 1,
//!     Cor 6, Thm 8), plus a greedy upper-bound heuristic;
//! * [`counterfactual`] — closest counterfactuals:
//!   * ℓ2, any odd k: polynomial via per-polyhedron projection QPs, the
//!     open-polyhedron closure argument, and the interior nudge (Thm 2,
//!     Cor 2);
//!   * ℓ1: exact MILP model (the problem is NP-complete even for
//!     singleton classes, Thm 4);
//!   * Hamming: the paper's novel guarded-cardinality SAT encoding (§9.2)
//!     with incremental distance search, the linearized IQP model on the
//!     MILP solver, and a brute-force oracle (NP-complete, Thm 6);
//! * [`brute`] — exponential reference oracles for the discrete setting used
//!   throughout the test suite;
//! * [`multilabel`] — the k = 1 multi-label reduction sketched in §10;
//! * [`thinning`] — Hart's condensed-NN training-set thinning (§10's global
//!   interpretability remark).

#![warn(missing_docs)]

pub mod abductive;
pub mod brute;
pub mod classifier;
pub mod counterfactual;
pub mod multilabel;
pub mod regions;
pub mod satenc;
pub mod tally;
pub mod thinning;

pub use classifier::{BooleanKnn, ContinuousKnn};
pub use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label, LpMetric, OddK};

/// Outcome of a sufficient-reason check: either `X` is sufficient, or a
/// counterexample completion proves it is not.
#[derive(Clone, Debug, PartialEq)]
pub enum SrCheck<P> {
    /// Every completion of `x̄` over the complement of `X` keeps the label.
    Sufficient,
    /// A witness `ȳ` agreeing with `x̄` on `X` but classified differently.
    NotSufficient {
        /// The counterexample point.
        witness: P,
    },
}

impl<P> SrCheck<P> {
    /// True iff the set was sufficient.
    pub fn is_sufficient(&self) -> bool {
        matches!(self, SrCheck::Sufficient)
    }

    /// The counterexample, if any.
    pub fn witness(&self) -> Option<&P> {
        match self {
            SrCheck::Sufficient => None,
            SrCheck::NotSufficient { witness } => Some(witness),
        }
    }
}
