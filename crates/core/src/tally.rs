//! Thread-local work tally for resource accounting.
//!
//! [`crate::regions::RegionStream`] bumps a plain thread-local counter each
//! time it yields a polyhedron (memoized re-yields included). Serving layers
//! sample the counter before and after a query's compute phase and attribute
//! the delta to the query's route — exact, because a single query executes
//! entirely on one worker thread. Unlike
//! [`crate::regions::RegionCounters`], which are engine-wide shared atomics,
//! this counter is a non-atomic `Cell`: the bump costs ~1 ns, touches no
//! shared state, and cannot perturb the byte-determinism contract.

use std::cell::Cell;

thread_local! {
    static REGION_YIELDS: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic count of region polyhedra yielded on this thread.
pub fn region_yields() -> u64 {
    REGION_YIELDS.with(|c| c.get())
}

pub(crate) fn bump_region_yields() {
    REGION_YIELDS.with(|c| c.set(c.get().wrapping_add(1)));
}
