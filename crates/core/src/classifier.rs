//! The optimistic k-NN classification function `f^k_{S⁺,S⁻}` of §2.
//!
//! Instead of enumerating the subsets `T` of the paper's definition, we use an
//! order-statistic characterization equivalent to Proposition 1's
//! ball-inflation argument: with `maj = (k+1)/2`,
//!
//! > `f(x̄) = 1` ⟺ the `maj`-th smallest distance from `x̄` to `S⁺` is **≤**
//! > the `maj`-th smallest distance from `x̄` to `S⁻`.
//!
//! (Inflate a ball around `x̄`; the side whose `maj`-th point enters first
//! wins, positives winning ties.) The equivalence with the literal subset
//! definition and with both directions of Proposition 1 is exercised by the
//! exhaustive tests at the bottom of this module.

use knn_num::Field;
use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label, LpMetric, OddK};

/// Picks the label according to the optimistic rule given per-point
/// `(distance key, label)` pairs. Distance keys only need `PartialOrd`, so
/// p-th powers of distances (exact over `Rat`) are fine.
pub(crate) fn optimistic_label<D: PartialOrd + Clone>(
    dists: impl Iterator<Item = (D, Label)>,
    k: OddK,
) -> Label {
    let maj = k.majority();
    let mut pos: Vec<D> = Vec::new();
    let mut neg: Vec<D> = Vec::new();
    for (d, l) in dists {
        match l {
            Label::Positive => pos.push(d),
            Label::Negative => neg.push(d),
        }
    }
    let sort =
        |v: &mut Vec<D>| v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sort(&mut pos);
    sort(&mut neg);
    match (pos.get(maj - 1), neg.get(maj - 1)) {
        (Some(rp), Some(rn)) => {
            if rp.partial_cmp(rn) != Some(std::cmp::Ordering::Greater) {
                Label::Positive
            } else {
                Label::Negative
            }
        }
        (Some(_), None) => Label::Positive,
        (None, Some(_)) => Label::Negative,
        (None, None) => panic!("dataset smaller than (k+1)/2 on both classes"),
    }
}

/// k-NN classifier over a continuous dataset with an ℓp metric.
#[derive(Clone, Debug)]
pub struct ContinuousKnn<'a, F> {
    ds: &'a ContinuousDataset<F>,
    metric: LpMetric,
    k: OddK,
}

impl<'a, F: Field> ContinuousKnn<'a, F> {
    /// Builds the classifier. Panics if the dataset is smaller than `k`.
    pub fn new(ds: &'a ContinuousDataset<F>, metric: LpMetric, k: OddK) -> Self {
        assert!(
            ds.len() >= k.get() as usize,
            "dataset must contain at least k = {} points",
            k.get()
        );
        ContinuousKnn { ds, metric, k }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a ContinuousDataset<F> {
        self.ds
    }

    /// The metric.
    pub fn metric(&self) -> LpMetric {
        self.metric
    }

    /// The neighborhood size.
    pub fn k(&self) -> OddK {
        self.k
    }

    /// Classifies `x` with optimistic tie-breaking.
    pub fn classify(&self, x: &[F]) -> Label {
        assert_eq!(x.len(), self.ds.dim());
        optimistic_label(self.ds.iter().map(|(p, l)| (self.metric.dist_pow(x, p), l)), self.k)
    }
}

/// k-NN classifier over a boolean dataset with the Hamming distance.
#[derive(Clone, Debug)]
pub struct BooleanKnn<'a> {
    ds: &'a BooleanDataset,
    k: OddK,
}

impl<'a> BooleanKnn<'a> {
    /// Builds the classifier. Panics if the dataset is smaller than `k`.
    pub fn new(ds: &'a BooleanDataset, k: OddK) -> Self {
        assert!(
            ds.len() >= k.get() as usize,
            "dataset must contain at least k = {} points",
            k.get()
        );
        BooleanKnn { ds, k }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'a BooleanDataset {
        self.ds
    }

    /// The neighborhood size.
    pub fn k(&self) -> OddK {
        self.k
    }

    /// Classifies `x` with optimistic tie-breaking.
    pub fn classify(&self, x: &BitVec) -> Label {
        assert_eq!(x.len(), self.ds.dim());
        optimistic_label(self.ds.iter().map(|(p, l)| (p.hamming(x), l)), self.k)
    }
}

/// Literal implementation of the paper's subset definition of `f^k` —
/// exponential, used only to validate [`optimistic_label`] in tests and in the
/// Table 1 harness.
pub fn subset_definition_label<D: PartialOrd + Clone>(dists: &[(D, Label)], k: OddK) -> Label {
    let n = dists.len();
    let k_usz = k.get() as usize;
    assert!(n >= k_usz);
    // Enumerate all subsets T of size k with max_T ≤ min_outside and majority
    // positive; f = 1 iff one exists.
    let idx: Vec<usize> = (0..n).collect();
    let mut chosen = Vec::with_capacity(k_usz);
    fn rec<D: PartialOrd + Clone>(
        dists: &[(D, Label)],
        idx: &[usize],
        start: usize,
        k: usize,
        chosen: &mut Vec<usize>,
        maj: usize,
    ) -> bool {
        if chosen.len() == k {
            let n_pos = chosen.iter().filter(|&&i| dists[i].1 == Label::Positive).count();
            if n_pos < maj {
                return false;
            }
            let max_in = chosen
                .iter()
                .map(|&i| &dists[i].0)
                .max_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap();
            return (0..dists.len())
                .filter(|i| !chosen.contains(i))
                .all(|i| dists[i].0.partial_cmp(max_in) != Some(std::cmp::Ordering::Less));
        }
        if idx.len() - start < k - chosen.len() {
            return false;
        }
        for pos in start..idx.len() {
            chosen.push(idx[pos]);
            if rec(dists, idx, pos + 1, k, chosen, maj) {
                chosen.pop();
                return true;
            }
            chosen.pop();
        }
        false
    }
    if rec(dists, &idx, 0, k_usz, &mut chosen, k.majority()) {
        Label::Positive
    } else {
        Label::Negative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;
    use knn_space::BitVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn one_nn_basic() {
        let ds = ContinuousDataset::from_sets(vec![vec![1.0, 0.0]], vec![vec![-1.0, 0.0]]);
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
        assert_eq!(knn.classify(&[0.5, 0.0]), Label::Positive);
        assert_eq!(knn.classify(&[-0.5, 0.0]), Label::Negative);
        // Exact tie → optimistic positive.
        assert_eq!(knn.classify(&[0.0, 7.0]), Label::Positive);
    }

    #[test]
    fn exact_tie_with_rationals() {
        let ds =
            ContinuousDataset::from_sets(vec![vec![Rat::frac(1, 3)]], vec![vec![Rat::frac(-1, 3)]]);
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
        assert_eq!(knn.classify(&[Rat::zero()]), Label::Positive);
        assert_eq!(knn.classify(&[Rat::frac(-1, 1000000)]), Label::Negative);
    }

    #[test]
    fn three_nn_majority() {
        // Two positives near the origin, two negatives to the right.
        let ds =
            ContinuousDataset::from_sets(vec![vec![0.1], vec![-0.1]], vec![vec![1.0], vec![1.4]]);
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::THREE);
        // From 0: both positives are the 2 nearest → positive.
        assert_eq!(knn.classify(&[0.0]), Label::Positive);
        // From 1.2: both negatives (d = 0.2) beat both positives (d ≥ 1.1).
        assert_eq!(knn.classify(&[1.2]), Label::Negative);
    }

    #[test]
    fn example_2_from_paper() {
        // S⁺ = {011, 101, 111}, S⁻ = rest of {0,1}³, x = 000 → f(x) = 0.
        let all: Vec<BitVec> = (0..8u8)
            .map(|m| BitVec::from_bools(&[(m & 1) == 1, (m & 2) == 2, (m & 4) == 4]))
            .collect();
        let pos: Vec<BitVec> = vec![all[0b110].clone(), all[0b101].clone(), all[0b111].clone()];
        // Note: paper writes vectors (v1,v2,v3); our bit i = component i+1.
        let neg: Vec<BitVec> = all.iter().filter(|p| !pos.contains(p)).cloned().collect();
        let ds = BooleanDataset::from_sets(pos, neg);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        assert_eq!(knn.classify(&BitVec::zeros(3)), Label::Negative);
        assert_eq!(knn.classify(&BitVec::ones(3)), Label::Positive);
    }

    #[test]
    fn order_statistic_rule_matches_subset_definition() {
        // Exhaustive-random cross-check of the two semantics, with many ties
        // (small integer coordinates in 1-D force frequent equal distances).
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..300 {
            let k = OddK::of([1, 3, 5][rng.gen_range(0..3usize)]);
            let n_points = rng.gen_range(k.get() as usize..k.get() as usize + 6);
            let dists: Vec<(usize, Label)> = (0..n_points)
                .map(|_| {
                    (
                        rng.gen_range(0..4usize),
                        if rng.gen_bool(0.5) { Label::Positive } else { Label::Negative },
                    )
                })
                .collect();
            let fast = optimistic_label(dists.iter().cloned(), k);
            let slow = subset_definition_label(&dists, k);
            assert_eq!(fast, slow, "k={k:?} dists={dists:?}");
        }
    }

    #[test]
    fn proposition_1_characterization() {
        // Prop 1(a): f(x)=1 iff ∃A⊆S⁺ of size maj and B⊆S⁻ of size ≤ min with
        // d(x,a) ≤ d(x,c) for all a∈A, c∈S⁻\B. Checked exhaustively.
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..200 {
            let k = OddK::of([1, 3][rng.gen_range(0..2usize)]);
            let maj = k.majority();
            let n_pos = rng.gen_range(maj..maj + 3);
            let n_neg = rng.gen_range(maj..maj + 3);
            let pos: Vec<usize> = (0..n_pos).map(|_| rng.gen_range(0..5)).collect();
            let neg: Vec<usize> = (0..n_neg).map(|_| rng.gen_range(0..5)).collect();
            let dists: Vec<(usize, Label)> = pos
                .iter()
                .map(|&d| (d, Label::Positive))
                .chain(neg.iter().map(|&d| (d, Label::Negative)))
                .collect();
            let f = optimistic_label(dists.iter().cloned(), k);
            // Prop 1(a) evaluation by enumeration.
            let mut prop1a = false;
            'outer: for a_mask in 0u32..(1 << n_pos) {
                if (a_mask.count_ones() as usize) != maj {
                    continue;
                }
                for b_mask in 0u32..(1 << n_neg) {
                    if (b_mask.count_ones() as usize) > k.minority() {
                        continue;
                    }
                    let ok = (0..n_pos).filter(|i| (a_mask >> i) & 1 == 1).all(|i| {
                        (0..n_neg).filter(|j| (b_mask >> j) & 1 == 0).all(|j| pos[i] <= neg[j])
                    });
                    if ok {
                        prop1a = true;
                        break 'outer;
                    }
                }
            }
            assert_eq!(f == Label::Positive, prop1a, "pos={pos:?} neg={neg:?} k={k:?}");
        }
    }

    #[test]
    fn missing_class_sides() {
        // Only positives exist and k exceeds... dataset of 3 positives, 1 negative, k=3:
        // the maj-th (2nd) negative distance doesn't exist → positive wins when
        // it has a 2nd point.
        let ds =
            ContinuousDataset::from_sets(vec![vec![5.0], vec![6.0], vec![7.0]], vec![vec![0.0]]);
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::THREE);
        assert_eq!(knn.classify(&[0.0]), Label::Positive);
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn dataset_too_small_panics() {
        let ds = ContinuousDataset::from_sets(vec![vec![0.0]], vec![vec![1.0]]);
        let _ = ContinuousKnn::new(&ds, LpMetric::L2, OddK::THREE);
    }

    #[test]
    fn hamming_vs_continuous_embedding_agree() {
        // Classifying a boolean dataset via its 0/1 continuous embedding under
        // ℓ1 (= Hamming on binary data) must agree with the Hamming classifier.
        let mut rng = StdRng::seed_from_u64(79);
        for _ in 0..50 {
            let dim = rng.gen_range(2..6usize);
            let n = rng.gen_range(3..8usize);
            let mut ds = BooleanDataset::new(dim);
            for i in 0..n {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let cont = ds.to_continuous::<Rat>();
            let k = OddK::of(if n >= 3 && rng.gen_bool(0.5) { 3 } else { 1 });
            let bk = BooleanKnn::new(&ds, k);
            let ck = ContinuousKnn::new(&cont, LpMetric::L1, k);
            let q: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let qc: Vec<Rat> = q.iter().map(|b| if b { Rat::one() } else { Rat::zero() }).collect();
            assert_eq!(bk.classify(&q), ck.classify(&qc));
        }
    }
}
