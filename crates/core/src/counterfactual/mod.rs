//! Counterfactual explanations: the closest differently-classified point.
//!
//! * [`l2`] — polynomial for every odd k via per-polyhedron projection QPs
//!   (Theorem 2) including witness computation (Corollary 2);
//! * [`l1`] — NP-complete even for `|S⁺| = |S⁻| = (k+1)/2` (Theorem 4);
//!   solved exactly by a big-M MILP model;
//! * [`hamming`] — NP-complete (Theorem 6); solved by the paper's novel
//!   guarded-cardinality SAT encoding (§9.2), by the linearized IQP model on
//!   the branch & bound MILP solver, and by brute force for validation;
//! * [`lp_general`] — a local-search probe of §10's first open problem:
//!   heuristic counterfactuals for ℓp with `p ⩾ 3` (where the Prop-1 cells
//!   are not polyhedra), cross-validated against the exact engines at
//!   `p ∈ {1, 2}`.

pub mod hamming;
pub mod l1;
pub mod l2;
pub mod lp_general;
