//! Counterfactuals under ℓ2 (Theorem 2, Corollary 2): polynomial for fixed k.
//!
//! The opposite decision region is a union of Prop 1 polyhedra. For each:
//!
//! * positive target (closed polyhedron): project `x̄` with the QP solver;
//!   the minimum is attained and any optimal point is a valid witness.
//! * negative target (open polyhedron): per Theorem 2's closure argument,
//!   the open piece `P` meets the ball `B_ℓ(x̄)` iff `P ≠ ∅` and the
//!   projection onto the *closure* has distance **strictly** below `ℓ`; a
//!   witness is produced by nudging the projection along an
//!   interior-pointing direction found by LP (Corollary 2).

use crate::classifier::ContinuousKnn;
use crate::regions::{LazyRegions, RegionCache, RegionStream};
use knn_lp::{LpProblem, Rel};
use knn_num::field::{dot, norm_sq};
use knn_num::Field;
use knn_qp::{project_onto_polyhedron, Polyhedron, QpOutcome};
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};

/// The infimum of the counterfactual distance and how it is realized.
#[derive(Clone, Debug)]
pub struct CfInfimum<F> {
    /// `inf { ‖x − y‖² : f(y) ≠ f(x) }`.
    pub dist_sq: F,
    /// A point of the *closure* of the opposite region realizing the infimum.
    pub closure_witness: Vec<F>,
    /// Whether the infimum is attained by a point of the open region itself
    /// (always true for a positive target).
    pub attained: bool,
}

/// Counterfactual engine for the ℓ2 setting.
#[derive(Clone, Debug)]
pub struct L2Counterfactual<'a, F> {
    ds: &'a ContinuousDataset<F>,
    k: OddK,
}

impl<'a, F: Field> L2Counterfactual<'a, F> {
    /// Builds the engine.
    pub fn new(ds: &'a ContinuousDataset<F>, k: OddK) -> Self {
        assert!(ds.len() >= k.get() as usize);
        L2Counterfactual { ds, k }
    }

    fn classifier(&self) -> ContinuousKnn<'a, F> {
        ContinuousKnn::new(self.ds, LpMetric::L2, self.k)
    }

    /// The infimum counterfactual distance (squared), with a closure witness.
    /// `None` if the opposite region is empty.
    ///
    /// Regions are enumerated lazily, nearest-anchor-first and pruned
    /// ([`RegionStream::for_query`]); projection QPs run only on regions the
    /// cheap halfspace lower bound cannot rule out against the incumbent.
    pub fn infimum(&self, x: &[F]) -> Option<CfInfimum<F>> {
        assert_eq!(x.len(), self.ds.dim());
        let target = self.classifier().classify(x).flip();
        let stream = RegionStream::for_query(self.ds, self.k, target, x, None);
        self.infimum_over(x, target, stream.map(|(p, _)| p))
    }

    /// [`L2Counterfactual::infimum`] against a shared [`LazyRegions`] view
    /// (built for the same dataset and `k`): the batch engine's serving path.
    pub fn infimum_lazy(&self, x: &[F], regions: &LazyRegions<F>) -> Option<CfInfimum<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "lazy regions built for a different k");
        let target = self.classifier().classify(x).flip();
        self.infimum_over(x, target, regions.stream(target, x).map(|(p, _)| p))
    }

    /// [`L2Counterfactual::infimum`] against the eager [`RegionCache`]
    /// oracle, replayed in the lazy path's order with the lazy path's prune
    /// decisions ([`RegionCache::ordered_pruned`]) so the two produce
    /// identical witnesses.
    pub fn infimum_in(&self, x: &[F], regions: &RegionCache<F>) -> Option<CfInfimum<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "region cache built for a different k");
        let target = self.classifier().classify(x).flip();
        self.infimum_over(x, target, regions.ordered_pruned(self.ds, target, x))
    }

    fn infimum_over<B: std::borrow::Borrow<Polyhedron<F>>>(
        &self,
        x: &[F],
        target: Label,
        polys: impl IntoIterator<Item = B>,
    ) -> Option<CfInfimum<F>> {
        let mut best: Option<CfInfimum<F>> = None;
        for poly in polys {
            let poly = poly.borrow();
            // Incumbent pruning: if a single violated halfspace already puts
            // the whole region farther than the best distance found, the QP
            // cannot improve it (ties keep the earlier incumbent anyway).
            if let Some(b) = &best {
                if lower_bound_exceeds(x, poly, &b.dist_sq) {
                    continue;
                }
            }
            let candidate = match target {
                Label::Positive => match project_onto_polyhedron(x, poly) {
                    QpOutcome::Optimal { y, dist_sq } => {
                        Some(CfInfimum { dist_sq, closure_witness: y, attained: true })
                    }
                    QpOutcome::Infeasible => None,
                },
                Label::Negative => {
                    // The open piece contributes only if nonempty.
                    if poly.strict_feasible_point().is_none() {
                        None
                    } else {
                        match project_onto_polyhedron(x, poly) {
                            QpOutcome::Optimal { y, dist_sq } => {
                                let attained = poly.contains_strictly(&y);
                                Some(CfInfimum { dist_sq, closure_witness: y, attained })
                            }
                            QpOutcome::Infeasible => None,
                        }
                    }
                }
            };
            if let Some(c) = candidate {
                if best.as_ref().is_none_or(|b| c.dist_sq < b.dist_sq) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// `k`-Counterfactual Explanation(ℝ, D₂): is there `ȳ` with
    /// `f(ȳ) ≠ f(x̄)` and `‖x̄ − ȳ‖ ≤ ℓ`? Returns a witness (Cor 2).
    ///
    /// `radius_sq` is `ℓ²` (squared, to stay in the field).
    pub fn within(&self, x: &[F], radius_sq: &F) -> Option<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        let target = self.classifier().classify(x).flip();
        let stream = RegionStream::for_query(self.ds, self.k, target, x, None);
        self.within_over(x, radius_sq, target, stream.map(|(p, _)| p))
    }

    /// [`L2Counterfactual::within`] against a shared [`LazyRegions`] view.
    /// Nearest-anchor-first ordering makes this the showcase short-circuit:
    /// the first region whose projection fits the ball answers the query.
    pub fn within_lazy(&self, x: &[F], radius_sq: &F, regions: &LazyRegions<F>) -> Option<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "lazy regions built for a different k");
        let target = self.classifier().classify(x).flip();
        self.within_over(x, radius_sq, target, regions.stream(target, x).map(|(p, _)| p))
    }

    /// [`L2Counterfactual::within`] against the eager [`RegionCache`] oracle
    /// (lazy-path order and prune decisions).
    pub fn within_in(&self, x: &[F], radius_sq: &F, regions: &RegionCache<F>) -> Option<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "region cache built for a different k");
        let target = self.classifier().classify(x).flip();
        self.within_over(x, radius_sq, target, regions.ordered_pruned(self.ds, target, x))
    }

    fn within_over<B: std::borrow::Borrow<Polyhedron<F>>>(
        &self,
        x: &[F],
        radius_sq: &F,
        target: Label,
        polys: impl IntoIterator<Item = B>,
    ) -> Option<Vec<F>> {
        for poly in polys {
            let poly = poly.borrow();
            // A single violated halfspace farther than the radius rules the
            // region out without a QP.
            if lower_bound_exceeds(x, poly, radius_sq) {
                continue;
            }
            match target {
                Label::Positive => {
                    if let QpOutcome::Optimal { y, dist_sq } = project_onto_polyhedron(x, poly) {
                        if !(dist_sq.clone() - radius_sq.clone()).is_positive() {
                            // The projection may sit exactly on the cell
                            // boundary. That is a *correct* witness: the
                            // optimistic rule classifies boundary ties
                            // positively (§2). Note for `f64` callers: at an
                            // exact tie, re-classifying the witness with
                            // floating-point distances is rounding-sensitive;
                            // use the exact `Rat` instantiation or step
                            // slightly past the boundary when a strict
                            // witness is needed downstream.
                            debug_assert!(
                                !F::exact() || self.classifier().classify(&y) == target,
                                "exact witness must classify as target"
                            );
                            return Some(y);
                        }
                    }
                }
                Label::Negative => {
                    if poly.strict_feasible_point().is_none() {
                        continue;
                    }
                    if let QpOutcome::Optimal { y, dist_sq } = project_onto_polyhedron(x, poly) {
                        // Strictly inside the ball is required (Thm 2 proof).
                        if (radius_sq.clone() - dist_sq).is_positive() {
                            let w = nudge_into_interior(x, poly, y, radius_sq);
                            debug_assert!(
                                !F::exact() || self.classifier().classify(&w) == target,
                                "exact witness must classify as target"
                            );
                            return Some(w);
                        }
                    }
                }
            }
        }
        None
    }
}

/// A cheap lower bound on `d²(x̄, P)`: for any inequality row `g·y ≤ h` that
/// `x̄` violates, every point of `P` is at least `(g·x̄ − h)/‖g‖` away, so
/// `P` can be skipped whenever `(g·x̄ − h)² > bound_sq·‖g‖²` for some row.
/// The comparison is made through the field's sign test (tolerance-guarded
/// for `f64`), so the skip is conservative, and it is the same deterministic
/// decision on the lazy and eager paths.
fn lower_bound_exceeds<F: Field>(x: &[F], poly: &Polyhedron<F>, bound_sq: &F) -> bool {
    for (g, h) in poly.ineqs() {
        let viol = dot(g, x) - h.clone();
        if !viol.is_positive() {
            continue;
        }
        let g_sq = norm_sq(g);
        if (viol.clone() * viol - bound_sq.clone() * g_sq).is_positive() {
            return true;
        }
    }
    false
}

/// Corollary 2's witness construction: starting from a closure point `y` of an
/// open polyhedron at distance strictly below the radius, find `β` pointing
/// into the interior (an LP over strict inequalities) and walk `y + εβ`,
/// halving `ε` until all strict rows hold and the ball constraint is kept.
fn nudge_into_interior<F: Field>(
    x: &[F],
    poly: &Polyhedron<F>,
    y: Vec<F>,
    radius_sq: &F,
) -> Vec<F> {
    // Already interior?
    if poly.contains_strictly(&y) {
        return y;
    }
    let n = y.len();
    // β must satisfy a·β < 0 for every row tight at y (a·y = b).
    let mut lp: LpProblem<F> = LpProblem::new(n);
    for (a, b) in poly.ineqs() {
        if (dot(a, &y) - b.clone()).is_zero() {
            lp.add_dense(a, Rel::Lt, F::zero());
        }
    }
    let beta = lp.strict_feasible().expect("nonempty open polyhedron admits an interior direction");
    let mut eps = F::one();
    for _ in 0..256 {
        let cand: Vec<F> =
            y.iter().zip(&beta).map(|(yi, bi)| yi.clone() + eps.clone() * bi.clone()).collect();
        let d: Vec<F> = x.iter().zip(&cand).map(|(a, b)| a.clone() - b.clone()).collect();
        let dist_ok = !(knn_num::field::norm_sq(&d) - radius_sq.clone()).is_positive();
        if dist_ok && poly.contains_strictly(&cand) {
            return cand;
        }
        eps = eps / F::from_i64(2);
    }
    panic!("interior nudge failed to converge (should be impossible with exact arithmetic)");
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64) -> Rat {
        Rat::from_int(p)
    }

    fn rq(p: i64, q: i64) -> Rat {
        Rat::frac(p, q)
    }

    /// 1-D, one point each side: positive at 0, negative at 2; x = 0.
    /// Bisector at 1; f = 0 strictly beyond 1. Infimum distance = 1, not attained.
    #[test]
    fn negative_target_infimum_not_attained() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(0)]], vec![vec![r(2)]]);
        let cf = L2Counterfactual::new(&ds, OddK::ONE);
        let x = [r(0)];
        let inf = cf.infimum(&x).unwrap();
        assert_eq!(inf.dist_sq, r(1));
        assert!(!inf.attained);
        // Decision: radius 1 (= boundary) is a NO; radius 1.5 is a YES.
        assert!(cf.within(&x, &r(1)).is_none());
        let w = cf.within(&x, &rq(9, 4)).unwrap(); // ℓ = 3/2
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
        assert_eq!(knn.classify(&w), Label::Negative);
        let d = (w[0].clone() - r(0)).abs();
        assert!(d <= rq(3, 2));
        assert!(d > r(1), "witness must be strictly past the bisector");
    }

    /// Same layout, but x on the negative side: positive target region is
    /// closed, the infimum IS attained at the bisector point.
    #[test]
    fn positive_target_attained_at_bisector() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(0)]], vec![vec![r(2)]]);
        let cf = L2Counterfactual::new(&ds, OddK::ONE);
        let x = [r(2)];
        let inf = cf.infimum(&x).unwrap();
        assert_eq!(inf.dist_sq, r(1));
        assert!(inf.attained);
        assert_eq!(inf.closure_witness, vec![r(1)]);
        // Radius exactly 1 is now a YES (the tie point classifies positive).
        let w = cf.within(&x, &r(1)).unwrap();
        assert_eq!(w, vec![r(1)]);
    }

    #[test]
    fn two_dimensional_projection() {
        // Positives on the left half-plane (x≤0 region via points), negative
        // at (4,0); query at origin is positive; closest counterfactual lies
        // on the bisector x₁ = 2 → distance 2 (not attained, open region).
        let ds = ContinuousDataset::from_sets(vec![vec![r(0), r(0)]], vec![vec![r(4), r(0)]]);
        let cf = L2Counterfactual::new(&ds, OddK::ONE);
        let x = [r(0), r(0)];
        let inf = cf.infimum(&x).unwrap();
        assert_eq!(inf.dist_sq, r(4));
        assert_eq!(inf.closure_witness, vec![r(2), r(0)]);
        assert!(!inf.attained);
        assert!(cf.within(&x, &r(4)).is_none());
        assert!(cf.within(&x, &r(5)).is_some());
    }

    #[test]
    fn k3_counterfactual() {
        // Positives at -1, 0, 1; negatives at 4, 5, 6 (1-D, k=3).
        // Bisector region: moving right, the 2nd-closest-negative vs
        // 2nd-closest-positive order statistic flips between 0/1-cluster and
        // 4/5-cluster; CF from x=0 exists around the midpoint ~ (0+5)/2.
        let ds = ContinuousDataset::from_sets(
            vec![vec![r(-1)], vec![r(0)], vec![r(1)]],
            vec![vec![r(4)], vec![r(5)], vec![r(6)]],
        );
        let cf = L2Counterfactual::new(&ds, OddK::THREE);
        let x = [r(0)];
        let inf = cf.infimum(&x).unwrap();
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::THREE);
        assert_eq!(knn.classify(&x), Label::Positive);
        // Verify the claimed infimum by dense sampling: no closer flip, and a
        // flip exists just beyond it.
        let d = inf.dist_sq.to_f64().sqrt();
        for step in 0..200 {
            let t = d * (step as f64) / 200.0;
            let y = [Rat::from_f64(t * 0.999)];
            assert_eq!(knn.classify(&y), Label::Positive, "flip before infimum at {t}");
        }
        let just_past = [Rat::from_f64(d + 1e-6)];
        assert_eq!(knn.classify(&just_past), Label::Negative);
    }

    #[test]
    fn no_counterfactual_when_region_empty() {
        // Two positives, k = 3, a single negative can never out-vote: f ≡ 1.
        let ds = ContinuousDataset::from_sets(vec![vec![r(0)], vec![r(1)]], vec![vec![r(10)]]);
        let cf = L2Counterfactual::new(&ds, OddK::THREE);
        let x = [r(0)];
        assert!(cf.infimum(&x).is_none());
        assert!(cf.within(&x, &r(1_000_000)).is_none());
    }

    #[test]
    fn float_and_exact_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(67);
        for _ in 0..20 {
            let dim = rng.gen_range(1..4usize);
            let npos = rng.gen_range(1..4usize);
            let nneg = rng.gen_range(1..4usize);
            let pos: Vec<Vec<i64>> =
                (0..npos).map(|_| (0..dim).map(|_| rng.gen_range(-4i64..5)).collect()).collect();
            let neg: Vec<Vec<i64>> =
                (0..nneg).map(|_| (0..dim).map(|_| rng.gen_range(-4i64..5)).collect()).collect();
            let x: Vec<i64> = (0..dim).map(|_| rng.gen_range(-4i64..5)).collect();
            let to_r = |v: &Vec<i64>| -> Vec<Rat> { v.iter().map(|&a| r(a)).collect() };
            let to_f = |v: &Vec<i64>| -> Vec<f64> { v.iter().map(|&a| a as f64).collect() };
            let dsr = ContinuousDataset::from_sets(
                pos.iter().map(to_r).collect(),
                neg.iter().map(to_r).collect(),
            );
            let dsf = ContinuousDataset::from_sets(
                pos.iter().map(to_f).collect(),
                neg.iter().map(to_f).collect(),
            );
            let cfr = L2Counterfactual::new(&dsr, OddK::ONE);
            let cff = L2Counterfactual::new(&dsf, OddK::ONE);
            let ir = cfr.infimum(&to_r(&x));
            let iff = cff.infimum(&to_f(&x));
            match (ir, iff) {
                (Some(a), Some(b)) => {
                    assert!(
                        (a.dist_sq.to_f64() - b.dist_sq).abs() < 1e-6,
                        "infimum mismatch: {} vs {}",
                        a.dist_sq,
                        b.dist_sq
                    );
                }
                (None, None) => {}
                (a, b) => panic!("mismatch: {a:?} vs {b:?}"),
            }
        }
    }
}
