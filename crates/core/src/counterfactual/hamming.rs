//! Counterfactuals in the discrete setting — NP-complete (Theorem 6) — with
//! the paper's two solver routes (§9.2) plus a brute-force validator:
//!
//! * [`closest_sat`]: the novel guarded-cardinality SAT encoding with
//!   incremental binary search on the distance (cardinality-cadical role);
//! * [`closest_milp`]: the IQP model, linearized exactly over binary `ȳ`
//!   (`(x̄ᵢ−ȳᵢ)²` is linear in `ȳᵢ` for fixed `x̄ᵢ ∈ {0,1}`) and solved by
//!   branch & bound (Gurobi role); k = 1 as in the paper's experiments;
//! * [`crate::brute::closest_counterfactual`]: exhaustive reference.

use crate::classifier::BooleanKnn;
use crate::satenc::DiscreteModel;
use knn_lp::Rel;
use knn_milp::{MilpConfig, MilpOutcome, MilpProblem};
use knn_space::{BitVec, BooleanDataset, Label, OddK};

/// Closest counterfactual via the SAT encoding (any odd k).
/// Returns the witness and its Hamming distance, or `None` if the opposite
/// region is empty.
pub fn closest_sat(ds: &BooleanDataset, k: OddK, x: &BitVec) -> Option<(BitVec, usize)> {
    let knn = BooleanKnn::new(ds, k);
    let target = knn.classify(x).flip();
    let mut model = DiscreteModel::build(ds, k, x, target);
    let out = model.closest();
    if let Some((z, d)) = &out {
        debug_assert_eq!(knn.classify(z), target);
        debug_assert_eq!(x.hamming(z), *d);
    }
    out
}

/// Anytime variant of [`closest_sat`]: spends at most `max_conflicts` CDCL
/// conflicts per descending step. The third component reports whether the
/// returned distance was proven optimal (`true`) or is only the best witness
/// found within budget (`false`). Intended for large structured instances
/// where the final optimality proof dominates (see EXPERIMENTS.md).
pub fn closest_sat_budgeted(
    ds: &BooleanDataset,
    k: OddK,
    x: &BitVec,
    max_conflicts: u64,
) -> Option<(BitVec, usize, bool)> {
    let knn = BooleanKnn::new(ds, k);
    let target = knn.classify(x).flip();
    let mut model = DiscreteModel::build(ds, k, x, target);
    let out = model.closest_budgeted(max_conflicts);
    if let Some((z, d, _)) = &out {
        debug_assert_eq!(knn.classify(z), target);
        debug_assert_eq!(x.hamming(z), *d);
    }
    out
}

/// Decision form via SAT: counterfactual within distance `l`?
pub fn within_sat(ds: &BooleanDataset, k: OddK, x: &BitVec, l: usize) -> bool {
    let knn = BooleanKnn::new(ds, k);
    let target = knn.classify(x).flip();
    let mut model = DiscreteModel::build(ds, k, x, target);
    model.solve_within(l).is_some()
}

/// Closest counterfactual via the linearized IQP model (k = 1, as in §9.2).
///
/// Variables: binary `y_i`; continuous `d₊, d₋` tracking
/// `min_{s∈S⁺} d_H(y,s)` and `min_{o∈S⁻} d_H(y,o)` through selector binaries;
/// the flip constraint is `d₋ ≤ d₊ − 1` (strict `<` on integers) when `x̄` is
/// positive, `d₊ ≤ d₋` when negative. Objective `d_H(x̄, ȳ)` is linear.
pub fn closest_milp(ds: &BooleanDataset, x: &BitVec) -> Option<(BitVec, usize)> {
    closest_milp_with(ds, x, MilpConfig::default())
        .expect("default node budget exhausted on discrete counterfactual MILP")
}

/// [`closest_milp`] with an explicit node budget; `Err(())` on budget
/// exhaustion (used by the Figure 5a harness to keep sweeps bounded).
pub fn closest_milp_with(
    ds: &BooleanDataset,
    x: &BitVec,
    config: MilpConfig,
) -> Result<Option<(BitVec, usize)>, ()> {
    let n = ds.dim();
    assert_eq!(x.len(), n);
    let knn = BooleanKnn::new(ds, OddK::ONE);
    let label = knn.classify(x);
    let pos = ds.indices_of(Label::Positive);
    let neg = ds.indices_of(Label::Negative);
    if pos.is_empty() || neg.is_empty() {
        return Ok(None);
    }
    let big_m = (n + 2) as f64;

    // Layout: y (n) | d+ | d- | v+ (|S+|) | v- (|S-|)
    let y0 = 0;
    let dp = n;
    let dm = n + 1;
    let vp0 = n + 2;
    let vm0 = vp0 + pos.len();
    let total = vm0 + neg.len();
    let mut m = MilpProblem::new(total);
    for i in 0..n {
        m.set_binary(y0 + i);
    }
    m.set_lower(dp, 0.0);
    m.set_upper(dp, n as f64);
    m.set_lower(dm, 0.0);
    m.set_upper(dm, n as f64);
    for j in 0..pos.len() {
        m.set_binary(vp0 + j);
    }
    for j in 0..neg.len() {
        m.set_binary(vm0 + j);
    }

    // dist(y, s) = Σ_{s_i=0} y_i + Σ_{s_i=1} (1 − y_i) = c_s + Σ ±y_i.
    let dist_expr = |s: &BitVec| -> (Vec<(usize, f64)>, f64) {
        let mut coeffs = Vec::with_capacity(n);
        let mut cnst = 0.0;
        for i in 0..n {
            if s.get(i) {
                coeffs.push((y0 + i, -1.0));
                cnst += 1.0;
            } else {
                coeffs.push((y0 + i, 1.0));
            }
        }
        (coeffs, cnst)
    };

    let add_min_constraints = |m: &mut MilpProblem, dvar: usize, v0: usize, idxs: &[usize]| {
        for (j, &pi) in idxs.iter().enumerate() {
            let (coeffs, cnst) = dist_expr(ds.point(pi));
            // d ≤ dist(y, s):  d − Σ ±y ≤ c
            let mut row = coeffs.clone();
            row.push((dvar, 1.0));
            m.add_constraint(
                row.iter().map(|&(v, c)| (v, if v == dvar { c } else { -c })).collect(),
                Rel::Le,
                cnst,
            );
            // d ≥ dist(y, s) − M(1 − v_j):  d − Σ ±y + M v_j ≥ c − M + ... →
            // encode as: Σ ±y − d + M(1−v_j) ≥ ... keep it direct:
            // d − (c + Σ ±y) ≥ −M(1 − v_j)
            let mut row2: Vec<(usize, f64)> = coeffs.iter().map(|&(v, c)| (v, -c)).collect();
            row2.push((dvar, 1.0));
            row2.push((v0 + j, -big_m));
            m.add_constraint(row2, Rel::Ge, cnst - big_m);
        }
        // Exactly one selector.
        m.add_constraint(
            idxs.iter().enumerate().map(|(j, _)| (v0 + j, 1.0)).collect(),
            Rel::Eq,
            1.0,
        );
    };
    add_min_constraints(&mut m, dp, vp0, &pos);
    add_min_constraints(&mut m, dm, vm0, &neg);

    // Flip constraint.
    match label {
        Label::Positive => {
            // want f(y) = 0: d- < d+ ⟺ d- ≤ d+ − 1 on integer distances.
            m.add_constraint(vec![(dm, 1.0), (dp, -1.0)], Rel::Le, -1.0);
        }
        Label::Negative => {
            // want f(y) = 1: d+ ≤ d-.
            m.add_constraint(vec![(dp, 1.0), (dm, -1.0)], Rel::Le, 0.0);
        }
    }

    // Objective: Hamming distance to x.
    let mut objective = vec![0.0; total];
    let mut const_term = 0.0;
    for i in 0..n {
        if x.get(i) {
            objective[y0 + i] = -1.0;
            const_term += 1.0;
        } else {
            objective[y0 + i] = 1.0;
        }
    }
    // Unless the caller chose otherwise, branch on the min-selector
    // indicators before the coordinate flips: fixing which training point
    // attains each min collapses the big-M rows to plain distance bounds.
    let mut config = config;
    if config.branch_priority.is_empty() {
        let mut prio = vec![0.0; total];
        for p in prio.iter_mut().skip(vp0) {
            *p = 1.0;
        }
        config.branch_priority = prio;
    }
    match m.solve(&objective, knn_lp::Objective::Minimize, config) {
        MilpOutcome::Optimal { x: sol, value } => {
            let y = BitVec::from_bools(&(0..n).map(|i| sol[y0 + i] > 0.5).collect::<Vec<_>>());
            let d = (value + const_term).round() as usize;
            debug_assert_eq!(x.hamming(&y), d);
            debug_assert_ne!(BooleanKnn::new(ds, OddK::ONE).classify(&y), label);
            Ok(Some((y, d)))
        }
        MilpOutcome::Infeasible => Ok(None),
        MilpOutcome::BudgetExhausted { .. } => Err(()),
        MilpOutcome::Unbounded => unreachable!("bounded binary model"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(rng: &mut StdRng, dim: usize, npts: usize) -> BooleanDataset {
        let mut ds = BooleanDataset::new(dim);
        for i in 0..npts {
            let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
            ds.push(p, l);
        }
        ds
    }

    #[test]
    fn sat_matches_brute_force_k1() {
        let mut rng = StdRng::seed_from_u64(61);
        for round in 0..40 {
            let dim = rng.gen_range(2..8usize);
            let npts = rng.gen_range(2..9usize);
            let ds = random_dataset(&mut rng, dim, npts);
            let knn = BooleanKnn::new(&ds, OddK::ONE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let brute = brute::closest_counterfactual(&knn, &x);
            let sat = closest_sat(&ds, OddK::ONE, &x);
            match (brute, sat) {
                (None, None) => {}
                (Some((_, bd)), Some((_, sd))) => {
                    assert_eq!(bd, sd, "round {round}: distance mismatch")
                }
                (b, s) => panic!("round {round}: {b:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn milp_matches_brute_force_k1() {
        let mut rng = StdRng::seed_from_u64(62);
        for round in 0..25 {
            let dim = rng.gen_range(2..6usize);
            let npts = rng.gen_range(2..7usize);
            let ds = random_dataset(&mut rng, dim, npts);
            let knn = BooleanKnn::new(&ds, OddK::ONE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let brute = brute::closest_counterfactual(&knn, &x);
            let milp = closest_milp(&ds, &x);
            match (brute, milp) {
                (None, None) => {}
                (Some((_, bd)), Some((_, md))) => {
                    assert_eq!(bd, md, "round {round}: distance mismatch")
                }
                (b, m) => panic!("round {round}: {b:?} vs {m:?}"),
            }
        }
    }

    #[test]
    fn sat_matches_brute_force_k3() {
        let mut rng = StdRng::seed_from_u64(63);
        for round in 0..25 {
            let dim = rng.gen_range(2..6usize);
            let npts = rng.gen_range(4..8usize);
            let ds = random_dataset(&mut rng, dim, npts);
            let knn = BooleanKnn::new(&ds, OddK::THREE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let brute = brute::closest_counterfactual(&knn, &x);
            let sat = closest_sat(&ds, OddK::THREE, &x);
            match (brute, sat) {
                (None, None) => {}
                (Some((_, bd)), Some((_, sd))) => {
                    assert_eq!(bd, sd, "round {round}: distance mismatch")
                }
                (b, s) => panic!("round {round}: {b:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn within_decision_consistent() {
        let mut rng = StdRng::seed_from_u64(64);
        let ds = random_dataset(&mut rng, 5, 6);
        let x: BitVec = (0..5).map(|_| rng.gen_bool(0.5)).collect();
        if let Some((_, d)) = closest_sat(&ds, OddK::ONE, &x) {
            assert!(within_sat(&ds, OddK::ONE, &x, d));
            if d > 0 {
                assert!(!within_sat(&ds, OddK::ONE, &x, d - 1));
            }
        }
    }

    #[test]
    fn moderate_size_sat_solves_quickly() {
        // A smoke test at Figure-5-like (scaled-down) parameters.
        let mut rng = StdRng::seed_from_u64(65);
        let ds = knn_datasets::random::random_boolean_dataset(&mut rng, 60, 40, 0.5);
        let x = knn_datasets::random::random_boolean_point(&mut rng, 40);
        let (z, d) = closest_sat(&ds, OddK::ONE, &x).expect("both classes present");
        assert!((1..=40).contains(&d));
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        assert_ne!(knn.classify(&z), knn.classify(&x));
    }
}
