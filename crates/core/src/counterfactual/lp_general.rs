//! Counterfactual search under a general ℓp metric (`p ⩾ 3`) — a numeric
//! probe of the paper's **first open problem** (§10): "whether ℓ2 is the only
//! metric for which [k-Counterfactual Explanation] is tractable".
//!
//! For `p ∉ {1, 2}` the equidistance locus between two points is neither a
//! hyperplane (ℓ2, Figure 3) nor piecewise axis-aligned (ℓ1, Figure 4), so the
//! Prop-1 cells are **not polyhedra** and neither the LP/QP route (Theorem 2)
//! nor the MILP route (Theorem 4's setting) applies. This module implements
//! the natural local-search heuristic that remains available:
//!
//! 1. **Multi-start segment bisection.** For every opposite-class anchor `z̄`
//!    (the `ℓ` closest first), classification along the segment `x̄ → z̄`
//!    flips somewhere before reaching `z̄`; the earliest flip is located by a
//!    scan-plus-bisection and gives a feasible counterfactual upper bound.
//! 2. **Coordinate descent.** Each coordinate of the incumbent is pulled back
//!    toward `x̄` as far as the classification allows (per-coordinate
//!    bisection), repeated in passes until a sweep makes no progress.
//!
//! The result is always a *valid* counterfactual (verified by the exact
//! classifier) and therefore an **upper bound** on the optimum. On the two
//! metrics where exact solvers exist the heuristic is cross-validated in this
//! module's tests: against the Theorem-2 QP pipeline at `p = 2` and against
//! the MILP model at `p = 1`. Those tests measure the optimality gap of the
//! heuristic — evidence (not proof) about the open problem's landscape.

use crate::classifier::ContinuousKnn;
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};

/// Result of the heuristic search: a verified counterfactual together with
/// its exact classification label and its ℓp distance from the query.
#[derive(Clone, Debug)]
pub struct LpCfWitness {
    /// The counterfactual point (classified differently from the query).
    pub point: Vec<f64>,
    /// `‖x̄ − point‖_p` (the distance itself, not its p-th power).
    pub dist: f64,
    /// The label of `point` (the flip of the query's label).
    pub target: Label,
}

/// Tuning knobs for [`LpGeneralCounterfactual`].
#[derive(Clone, Copy, Debug)]
pub struct LpGeneralConfig {
    /// How many opposite-class anchors to start from (closest first;
    /// `usize::MAX` = all of them).
    pub starts: usize,
    /// Segment-scan resolution for locating the first classification flip.
    pub scan_steps: usize,
    /// Bisection iterations (segment and per-coordinate).
    pub bisect_iters: usize,
    /// Maximum coordinate-descent passes per start.
    pub cd_passes: usize,
    /// Shrinking-step pattern-search rounds (tangential sliding along the
    /// decision boundary, which axis-aligned coordinate descent cannot do).
    pub refine_rounds: usize,
    /// Random directions tried per pattern-search round.
    pub refine_samples: usize,
}

impl Default for LpGeneralConfig {
    fn default() -> Self {
        LpGeneralConfig {
            starts: 16,
            scan_steps: 64,
            bisect_iters: 40,
            cd_passes: 6,
            refine_rounds: 48,
            refine_samples: 32,
        }
    }
}

/// A tiny deterministic xorshift64* generator for the pattern search
/// (keeps `rand` a dev-only dependency of this crate).
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[-1, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }
}

/// Heuristic closest-counterfactual search for any `ℓp` metric and odd `k`.
#[derive(Clone, Debug)]
pub struct LpGeneralCounterfactual<'a> {
    ds: &'a ContinuousDataset<f64>,
    metric: LpMetric,
    k: OddK,
    config: LpGeneralConfig,
}

impl<'a> LpGeneralCounterfactual<'a> {
    /// Builds the engine with default configuration.
    pub fn new(ds: &'a ContinuousDataset<f64>, metric: LpMetric, k: OddK) -> Self {
        Self::with_config(ds, metric, k, LpGeneralConfig::default())
    }

    /// Builds the engine with explicit tuning knobs.
    pub fn with_config(
        ds: &'a ContinuousDataset<f64>,
        metric: LpMetric,
        k: OddK,
        config: LpGeneralConfig,
    ) -> Self {
        assert!(ds.len() >= k.get() as usize);
        LpGeneralCounterfactual { ds, metric, k, config }
    }

    fn classifier(&self) -> ContinuousKnn<'a, f64> {
        ContinuousKnn::new(self.ds, self.metric, self.k)
    }

    /// `‖a − b‖_p` as an `f64`.
    pub fn dist(&self, a: &[f64], b: &[f64]) -> f64 {
        self.metric.dist_f64(a, b)
    }

    /// Heuristic closest counterfactual for `x̄`, or `None` when no
    /// counterfactual exists at all (one class empty / unreachable by the
    /// anchors tried).
    ///
    /// The witness is exactly classified (no tolerance games): the returned
    /// point has been run through the real classifier.
    pub fn closest(&self, x: &[f64]) -> Option<LpCfWitness> {
        let n = self.ds.dim();
        assert_eq!(x.len(), n);
        let knn = self.classifier();
        let label = knn.classify(x);
        let target = label.flip();

        // Anchor points of the opposite class, closest first.
        let mut anchors: Vec<&[f64]> =
            self.ds.iter().filter(|(_, l)| *l == target).map(|(p, _)| p).collect();
        if anchors.is_empty() {
            return None;
        }
        anchors.sort_by(|a, b| {
            self.dist(x, a).partial_cmp(&self.dist(x, b)).expect("finite distances")
        });
        anchors.truncate(self.config.starts.max(1));

        let mut best: Option<Vec<f64>> = None;
        let mut best_d = f64::INFINITY;
        for (start_id, z) in anchors.into_iter().enumerate() {
            let Some(seed) = self.segment_flip(&knn, x, z, target) else {
                continue;
            };
            let mut y = self.coordinate_descent(&knn, x, seed, target);
            y = self.pattern_refine(&knn, x, y, target, 0x9E37_79B9 + start_id as u64);
            y = self.coordinate_descent(&knn, x, y, target);
            let d = self.dist(x, &y);
            if d < best_d {
                best_d = d;
                best = Some(y);
            }
        }
        best.map(|point| {
            debug_assert_eq!(knn.classify(&point), target);
            LpCfWitness { point, dist: best_d, target }
        })
    }

    /// Earliest classification flip along the segment `x → z`, or `None` when
    /// even `z`'s own location does not flip (possible for k > 1).
    fn segment_flip(
        &self,
        knn: &ContinuousKnn<'a, f64>,
        x: &[f64],
        z: &[f64],
        target: Label,
    ) -> Option<Vec<f64>> {
        let at =
            |t: f64| -> Vec<f64> { x.iter().zip(z).map(|(xi, zi)| xi + t * (zi - xi)).collect() };
        // Coarse scan for the first t with f = target.
        let steps = self.config.scan_steps.max(2);
        let mut hit_t: Option<f64> = None;
        for s in 1..=steps {
            let t = s as f64 / steps as f64;
            if knn.classify(&at(t)) == target {
                hit_t = Some(t);
                break;
            }
        }
        let mut hi = hit_t?;
        let mut lo = hi - 1.0 / steps as f64;
        // Bisect down to the flip; keep the *feasible* end.
        for _ in 0..self.config.bisect_iters {
            let mid = 0.5 * (lo + hi);
            if knn.classify(&at(mid)) == target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(at(hi))
    }

    /// Shrinking-step pattern search: random directions slide the incumbent
    /// *along* the decision boundary toward the query — the move class that
    /// coordinate descent lacks when the boundary is oblique to the axes
    /// (always, except in the Hamming-like axis-aligned cases).
    fn pattern_refine(
        &self,
        knn: &ContinuousKnn<'a, f64>,
        x: &[f64],
        mut y: Vec<f64>,
        target: Label,
        seed: u64,
    ) -> Vec<f64> {
        let n = y.len();
        let mut rng = XorShift(seed | 1);
        let mut best_d = self.dist(x, &y);
        let mut step = 0.5 * best_d;
        let floor = 1e-10 * (1.0 + best_d);
        let mut cand = vec![0.0; n];
        for _ in 0..self.config.refine_rounds {
            if step <= floor || best_d == 0.0 {
                break;
            }
            let mut improved = false;
            for _ in 0..self.config.refine_samples {
                let mut norm_sq = 0.0;
                for c in cand.iter_mut() {
                    *c = rng.unit();
                    norm_sq += *c * *c;
                }
                if norm_sq < 1e-12 {
                    continue;
                }
                let scale = step / norm_sq.sqrt();
                let moved: Vec<f64> = y.iter().zip(&cand).map(|(yi, di)| yi + scale * di).collect();
                let d = self.dist(x, &moved);
                if d < best_d && knn.classify(&moved) == target {
                    y = moved;
                    best_d = d;
                    improved = true;
                }
            }
            if !improved {
                step *= 0.5;
            }
        }
        y
    }

    /// Pulls every coordinate of `y` toward `x` as far as classification
    /// allows, in passes, until a full sweep improves nothing.
    fn coordinate_descent(
        &self,
        knn: &ContinuousKnn<'a, f64>,
        x: &[f64],
        mut y: Vec<f64>,
        target: Label,
    ) -> Vec<f64> {
        let n = y.len();
        for _ in 0..self.config.cd_passes {
            let mut improved = false;
            for i in 0..n {
                if (y[i] - x[i]).abs() < 1e-12 {
                    continue;
                }
                // Try snapping the coordinate all the way home first.
                let orig = y[i];
                y[i] = x[i];
                if knn.classify(&y) == target {
                    improved = true;
                    continue;
                }
                // Bisect between the query value (infeasible) and the
                // incumbent value (feasible).
                let (mut bad, mut good) = (x[i], orig);
                for _ in 0..self.config.bisect_iters {
                    let mid = 0.5 * (bad + good);
                    y[i] = mid;
                    if knn.classify(&y) == target {
                        good = mid;
                    } else {
                        bad = mid;
                    }
                }
                y[i] = good;
                if (good - orig).abs() > 1e-12 {
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        debug_assert_eq!(knn.classify(&y), target);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterfactual::l1::L1Counterfactual;
    use crate::counterfactual::l2::L2Counterfactual;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(rng: &mut StdRng, n_pts: usize, dim: usize) -> ContinuousDataset<f64> {
        let mut ds = ContinuousDataset::new(dim);
        for i in 0..n_pts {
            let p: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
            ds.push(p, l);
        }
        ds
    }

    #[test]
    fn witness_is_always_a_valid_counterfactual() {
        let mut rng = StdRng::seed_from_u64(71);
        for p in [1u32, 2, 3, 4, 7] {
            for _ in 0..8 {
                let dim = rng.gen_range(2..5usize);
                let n_pts = rng.gen_range(4..9usize);
                let ds = random_dataset(&mut rng, n_pts, dim);
                let metric = LpMetric::new(p);
                let engine = LpGeneralCounterfactual::new(&ds, metric, OddK::ONE);
                let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
                let knn = ContinuousKnn::new(&ds, metric, OddK::ONE);
                let label = knn.classify(&x);
                if let Some(w) = engine.closest(&x) {
                    assert_eq!(knn.classify(&w.point), label.flip(), "p={p}");
                    assert_eq!(w.target, label.flip());
                    let d = metric.dist_f64(&x, &w.point);
                    assert!((d - w.dist).abs() < 1e-9, "reported distance must match");
                }
            }
        }
    }

    #[test]
    fn k3_witnesses_remain_valid() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..10 {
            let dim = rng.gen_range(2..4usize);
            let n_pts = rng.gen_range(6..10usize);
            let ds = random_dataset(&mut rng, n_pts, dim);
            let metric = LpMetric::new(3);
            let engine = LpGeneralCounterfactual::new(&ds, metric, OddK::THREE);
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let knn = ContinuousKnn::new(&ds, metric, OddK::THREE);
            if let Some(w) = engine.closest(&x) {
                assert_eq!(knn.classify(&w.point), knn.classify(&x).flip());
            }
        }
    }

    #[test]
    fn p2_heuristic_is_near_the_exact_qp_optimum() {
        // At p = 2 the Theorem-2 pipeline is exact; the heuristic must come
        // out within a small relative gap (it is an upper bound by
        // construction, and on these smooth instances it should land close).
        let mut rng = StdRng::seed_from_u64(73);
        let mut checked = 0usize;
        let mut matched = 0usize;
        for _ in 0..12 {
            let dim = rng.gen_range(2..4usize);
            let n_pts = rng.gen_range(4..8usize);
            let ds = random_dataset(&mut rng, n_pts, dim);
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let exact = L2Counterfactual::new(&ds, OddK::ONE);
            let heur = LpGeneralCounterfactual::new(&ds, LpMetric::L2, OddK::ONE);
            let (Some(e), Some(h)) = (exact.infimum(&x), heur.closest(&x)) else {
                continue;
            };
            let exact_d = e.dist_sq.sqrt();
            checked += 1;
            assert!(
                h.dist >= exact_d - 1e-6,
                "heuristic {} beat the proven optimum {}",
                h.dist,
                exact_d
            );
            if h.dist <= exact_d * 1.05 + 1e-6 {
                matched += 1;
            }
        }
        assert!(checked >= 6, "enough instances must be checked");
        assert!(
            matched * 2 >= checked,
            "heuristic should land within 5% on at least half the instances \
             ({matched}/{checked})"
        );
    }

    #[test]
    fn p1_heuristic_upper_bounds_the_exact_milp_optimum() {
        let mut rng = StdRng::seed_from_u64(74);
        let mut checked = 0usize;
        for _ in 0..8 {
            let dim = rng.gen_range(2..4usize);
            let ds = random_dataset(&mut rng, 4, dim);
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let exact = L1Counterfactual::new(&ds);
            let heur = LpGeneralCounterfactual::new(&ds, LpMetric::L1, OddK::ONE);
            let (Some((_, exact_d)), Some(h)) = (exact.closest(&x), heur.closest(&x)) else {
                continue;
            };
            checked += 1;
            assert!(
                h.dist >= exact_d - 1e-6,
                "heuristic {} beat the proven ℓ1 optimum {}",
                h.dist,
                exact_d
            );
        }
        assert!(checked >= 4);
    }

    #[test]
    fn p3_beats_a_coarse_grid_search_in_2d() {
        // Reference: dense grid over the bounding box; the heuristic must be
        // at least as good as the best grid point (up to the grid pitch).
        let mut rng = StdRng::seed_from_u64(75);
        for round in 0..4 {
            let ds = random_dataset(&mut rng, 6, 2);
            let metric = LpMetric::new(3);
            let knn = ContinuousKnn::new(&ds, metric, OddK::ONE);
            let x = vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)];
            let target = knn.classify(&x).flip();
            let engine = LpGeneralCounterfactual::new(&ds, metric, OddK::ONE);
            let Some(h) = engine.closest(&x) else { continue };
            let mut grid_best = f64::INFINITY;
            let m = 60;
            for i in 0..=m {
                for j in 0..=m {
                    let y =
                        vec![-3.0 + 6.0 * i as f64 / m as f64, -3.0 + 6.0 * j as f64 / m as f64];
                    if knn.classify(&y) == target {
                        grid_best = grid_best.min(metric.dist_f64(&x, &y));
                    }
                }
            }
            let pitch = 6.0 / m as f64;
            assert!(
                h.dist <= grid_best + 2.0 * pitch,
                "round {round}: heuristic {} vs grid {} (pitch {pitch})",
                h.dist,
                grid_best
            );
        }
    }
}
