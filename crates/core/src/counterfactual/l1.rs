//! Counterfactuals under ℓ1 — NP-complete even for singleton classes
//! (Theorem 4) — solved exactly by a big-M 0–1 MILP model on `knn-milp`.
//!
//! Model (k = 1, target label `t`): variables `ȳ ∈ ℝⁿ` (bounded by the data's
//! coordinate range: moving a coordinate into the range shrinks all distances
//! equally, so an optimal `ȳ` exists inside it), objective `Σ tᵢ` with
//! `tᵢ ≥ ±(x̄ᵢ − yᵢ)`, witness selector `u_a` per point of the target class
//! (`Σ u_a = 1`), and per pair `(a, c)`:
//!
//! > `Σᵢ T^a_i ≤ Σᵢ S^c_i + M(1 − u_a) [− δ]`
//!
//! where `T^a_i ≥ |yᵢ − aᵢ|` *over*-approximates the witness distance and
//! `S^c_i ≤ |yᵢ − cᵢ|` *under*-approximates the competitor distance through
//! big-M sign binaries — making the constraint sound, and tight at an optimum.
//! The `δ` term enforces the strict inequality needed when flipping a positive
//! point; like the paper's own implementation (§9.2 "ignoring tie-breaking
//! concerns"), the float path treats strictness with a small margin.

use crate::classifier::ContinuousKnn;
use knn_lp::Rel;
use knn_milp::{MilpOutcome, MilpProblem};
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};

/// Strictness margin for the `f(ȳ) = 0` target (see module docs).
pub const STRICTNESS_DELTA: f64 = 1e-6;

/// Counterfactual engine for the ℓ1 setting, k = 1.
#[derive(Clone, Debug)]
pub struct L1Counterfactual<'a> {
    ds: &'a ContinuousDataset<f64>,
}

impl<'a> L1Counterfactual<'a> {
    /// Builds the engine (k = 1; Theorem 4 shows NP-completeness already at
    /// `|S⁺| = |S⁻| = 1`, so there is no poly special case to dispatch to).
    pub fn new(ds: &'a ContinuousDataset<f64>) -> Self {
        assert!(!ds.is_empty());
        L1Counterfactual { ds }
    }

    fn classifier(&self) -> ContinuousKnn<'a, f64> {
        ContinuousKnn::new(self.ds, LpMetric::L1, OddK::ONE)
    }

    /// The minimum ℓ1 distance to a counterfactual and a witness, or `None`
    /// when one of the classes is empty (label constant).
    pub fn closest(&self, x: &[f64]) -> Option<(Vec<f64>, f64)> {
        let n = self.ds.dim();
        assert_eq!(x.len(), n);
        let label = self.classifier().classify(x);
        let target = label.flip();
        let witnesses = self.ds.indices_of(target);
        let competitors = self.ds.indices_of(label);
        if witnesses.is_empty() {
            return None;
        }
        if competitors.is_empty() {
            return Some((x.to_vec(), 0.0)); // everything is the target label
        }
        let strict = target == Label::Negative;

        // Coordinate range bounds for y (see module docs) and big-M.
        let mut lo = x.to_vec();
        let mut hi = x.to_vec();
        for (p, _) in self.ds.iter() {
            for i in 0..n {
                lo[i] = lo[i].min(p[i]);
                hi[i] = hi[i].max(p[i]);
            }
        }
        let span: f64 = (0..n).map(|i| hi[i] - lo[i]).sum::<f64>().max(1.0);
        let big_m = 4.0 * span + 4.0;

        // Variable layout:
        //   y:      0 .. n
        //   t:      n .. 2n                     (|x − y|, objective)
        //   u_a:    2n .. 2n + W                (witness selectors, binary)
        //   T^a_i:  block per witness           (n each)
        //   S^c_i:  block per competitor        (n each)
        //   z^c_i:  sign binaries per competitor (n each)
        let w_cnt = witnesses.len();
        let c_cnt = competitors.len();
        let y0 = 0;
        let t0 = n;
        let u0 = 2 * n;
        let ta0 = u0 + w_cnt;
        let sc0 = ta0 + w_cnt * n;
        let zc0 = sc0 + c_cnt * n;
        let total = zc0 + c_cnt * n;
        let mut m = MilpProblem::new(total);
        for i in 0..n {
            m.set_lower(y0 + i, lo[i]);
            m.set_upper(y0 + i, hi[i]);
            m.set_lower(t0 + i, 0.0);
        }
        for (wi, _) in witnesses.iter().enumerate() {
            m.set_binary(u0 + wi);
            for i in 0..n {
                m.set_lower(ta0 + wi * n + i, 0.0);
            }
        }
        for (ci, _) in competitors.iter().enumerate() {
            for i in 0..n {
                m.set_binary(zc0 + ci * n + i);
                m.set_lower(sc0 + ci * n + i, 0.0);
            }
        }

        // t_i ≥ ±(x_i − y_i)
        for i in 0..n {
            m.add_constraint(vec![(t0 + i, 1.0), (y0 + i, 1.0)], Rel::Ge, x[i]);
            m.add_constraint(vec![(t0 + i, 1.0), (y0 + i, -1.0)], Rel::Ge, -x[i]);
        }
        // Exactly one witness.
        m.add_constraint((0..w_cnt).map(|wi| (u0 + wi, 1.0)).collect(), Rel::Eq, 1.0);
        // T^a_i ≥ ±(y_i − a_i)
        for (wi, &widx) in witnesses.iter().enumerate() {
            let a = self.ds.point(widx);
            for i in 0..n {
                let v = ta0 + wi * n + i;
                m.add_constraint(vec![(v, 1.0), (y0 + i, -1.0)], Rel::Ge, -a[i]);
                m.add_constraint(vec![(v, 1.0), (y0 + i, 1.0)], Rel::Ge, a[i]);
            }
        }
        // S^c_i ≤ |y_i − c_i| via sign binaries.
        for (ci, &cidx) in competitors.iter().enumerate() {
            let c = self.ds.point(cidx);
            for i in 0..n {
                let s = sc0 + ci * n + i;
                let z = zc0 + ci * n + i;
                // S ≤ (y_i − c_i) + M(1 − z)
                m.add_constraint(
                    vec![(s, 1.0), (y0 + i, -1.0), (z, big_m)],
                    Rel::Le,
                    -c[i] + big_m,
                );
                // S ≤ (c_i − y_i) + M z
                m.add_constraint(vec![(s, 1.0), (y0 + i, 1.0), (z, -big_m)], Rel::Le, c[i]);
            }
        }
        // Pair constraints: u_a = 1 ⇒ ΣT^a ≤ ΣS^c (− δ).
        let delta = if strict { STRICTNESS_DELTA } else { 0.0 };
        for (wi, _) in witnesses.iter().enumerate() {
            for (ci, _) in competitors.iter().enumerate() {
                let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(2 * n + 1);
                for i in 0..n {
                    coeffs.push((ta0 + wi * n + i, 1.0));
                    coeffs.push((sc0 + ci * n + i, -1.0));
                }
                coeffs.push((u0 + wi, big_m));
                m.add_constraint(coeffs, Rel::Le, big_m - delta);
            }
        }
        let mut objective = vec![0.0; total];
        for i in 0..n {
            objective[t0 + i] = 1.0;
        }
        match m.minimize(&objective) {
            MilpOutcome::Optimal { x: sol, value } => {
                let y: Vec<f64> = (0..n).map(|i| sol[y0 + i]).collect();
                Some((y, value))
            }
            MilpOutcome::Infeasible => None,
            other => panic!("L1 counterfactual MILP did not converge: {other:?}"),
        }
    }

    /// Decision form: is there a counterfactual within ℓ1 distance `l`?
    pub fn within(&self, x: &[f64], l: f64) -> bool {
        self.closest(x).is_some_and(|(_, d)| d <= l + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_singletons() {
        // Positive at 0, negative at 4; x = 0 → flip needs |y| past the
        // bisector at 2: distance 2 (+δ for strictness).
        let ds = ContinuousDataset::from_sets(vec![vec![0.0]], vec![vec![4.0]]);
        let cf = L1Counterfactual::new(&ds);
        let (y, d) = cf.closest(&[0.0]).unwrap();
        assert!((d - 2.0).abs() < 1e-3, "distance {d}");
        let knn = ContinuousKnn::new(&ds, LpMetric::L1, OddK::ONE);
        assert_eq!(knn.classify(&y), Label::Negative);
    }

    #[test]
    fn negative_to_positive_no_strictness() {
        // x on the negative side; ties classify positive, so the bisector
        // point itself is a valid counterfactual: distance exactly 2.
        let ds = ContinuousDataset::from_sets(vec![vec![0.0]], vec![vec![4.0]]);
        let cf = L1Counterfactual::new(&ds);
        let (y, d) = cf.closest(&[4.0]).unwrap();
        assert!((d - 2.0).abs() < 1e-6, "distance {d}");
        let knn = ContinuousKnn::new(&ds, LpMetric::L1, OddK::ONE);
        assert_eq!(knn.classify(&y), Label::Positive);
    }

    #[test]
    fn two_dimensional_diamond_geometry() {
        // ℓ1 balls are diamonds: positive at (0,0), negative at (2,2);
        // from x = (0,0) the flip region boundary {y : d(y,neg) ≤ d(y,pos)}
        // is the anti-diagonal line x+y = 2 (ℓ1 bisector between the points
        // in this diagonal configuration contains the segment); minimum ℓ1
        // distance from origin is 2.
        let ds = ContinuousDataset::from_sets(vec![vec![0.0, 0.0]], vec![vec![2.0, 2.0]]);
        let cf = L1Counterfactual::new(&ds);
        let (y, d) = cf.closest(&[0.0, 0.0]).unwrap();
        assert!((d - 2.0).abs() < 1e-3, "distance {d} at witness {y:?}");
        let knn = ContinuousKnn::new(&ds, LpMetric::L1, OddK::ONE);
        assert_eq!(knn.classify(&y), Label::Negative);
    }

    #[test]
    fn multiple_witness_candidates() {
        // Two positives; x negative; the model must pick the cheaper witness.
        let ds = ContinuousDataset::from_sets(vec![vec![10.0], vec![3.0]], vec![vec![0.0]]);
        let cf = L1Counterfactual::new(&ds);
        let (_, d) = cf.closest(&[0.0]).unwrap();
        // Bisector between 0 and 3 is at 1.5; ties go positive → d = 1.5.
        assert!((d - 1.5).abs() < 1e-6, "distance {d}");
    }

    #[test]
    fn within_decision() {
        let ds = ContinuousDataset::from_sets(vec![vec![0.0]], vec![vec![4.0]]);
        let cf = L1Counterfactual::new(&ds);
        assert!(cf.within(&[4.0], 2.0));
        assert!(!cf.within(&[4.0], 1.9));
    }

    #[test]
    fn brute_grid_agrees_on_random_instances() {
        // Compare the MILP optimum against a fine grid scan in 1-D/2-D.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(91);
        for round in 0..10 {
            let dim = rng.gen_range(1..3usize);
            let npos = rng.gen_range(1..3usize);
            let nneg = rng.gen_range(1..3usize);
            let gen_pt = |rng: &mut StdRng| -> Vec<f64> {
                (0..dim).map(|_| rng.gen_range(-3i64..4) as f64).collect()
            };
            let pos: Vec<Vec<f64>> = (0..npos).map(|_| gen_pt(&mut rng)).collect();
            let neg: Vec<Vec<f64>> = (0..nneg).map(|_| gen_pt(&mut rng)).collect();
            let ds = ContinuousDataset::from_sets(pos, neg);
            let knn = ContinuousKnn::new(&ds, LpMetric::L1, OddK::ONE);
            let x = gen_pt(&mut rng);
            let label = knn.classify(&x);
            let Some((_, milp_d)) = L1Counterfactual::new(&ds).closest(&x) else {
                continue;
            };
            // Grid scan at resolution 1/4 over [-5, 5]^dim.
            let steps = 41i64;
            let mut grid_best = f64::INFINITY;
            let mut idx = vec![0i64; dim];
            'grid: loop {
                let y: Vec<f64> = idx.iter().map(|&i| -5.0 + 0.25 * i as f64).collect();
                if knn.classify(&y) != label {
                    let d: f64 = x.iter().zip(&y).map(|(a, b)| (a - b).abs()).sum();
                    grid_best = grid_best.min(d);
                }
                for i in 0..dim {
                    idx[i] += 1;
                    if idx[i] < steps {
                        continue 'grid;
                    }
                    idx[i] = 0;
                }
                break;
            }
            // The grid can only overestimate the optimum.
            assert!(
                milp_d <= grid_best + 1e-6,
                "round {round}: MILP {milp_d} worse than grid {grid_best}"
            );
            // And it cannot be drastically below the grid resolution bound.
            assert!(
                grid_best <= milp_d + 0.25 * dim as f64 + 1e-6,
                "round {round}: grid {grid_best} too far above MILP {milp_d}"
            );
        }
    }
}
