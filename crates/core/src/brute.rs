//! Exponential reference oracles for the discrete setting.
//!
//! These implement the problem definitions *literally* — enumerate all
//! completions / all subsets / all points — and anchor the correctness of
//! every polynomial algorithm and solver encoding in the test suite and in
//! the Table 1 harness. They are deliberately simple; do not use them beyond
//! ~20 dimensions.

use crate::classifier::BooleanKnn;
use knn_space::BitVec;

/// Enumerates all completions of `x` outside `fixed` and reports whether the
/// label ever changes — the literal definition of a sufficient reason.
pub fn is_sufficient_reason(knn: &BooleanKnn<'_>, x: &BitVec, fixed: &[usize]) -> bool {
    let n = x.len();
    assert!(n <= 24, "brute force limited to small dimension");
    let free: Vec<usize> = (0..n).filter(|i| !fixed.contains(i)).collect();
    let base_label = knn.classify(x);
    let mut y = x.clone();
    for mask in 0u64..(1u64 << free.len()) {
        for (bit, &i) in free.iter().enumerate() {
            y.set(i, (mask >> bit) & 1 == 1);
        }
        if knn.classify(&y) != base_label {
            return false;
        }
    }
    true
}

/// Finds a counterexample completion (if any) for the sufficient-reason check.
pub fn sufficient_reason_counterexample(
    knn: &BooleanKnn<'_>,
    x: &BitVec,
    fixed: &[usize],
) -> Option<BitVec> {
    let n = x.len();
    assert!(n <= 24);
    let free: Vec<usize> = (0..n).filter(|i| !fixed.contains(i)).collect();
    let base_label = knn.classify(x);
    let mut y = x.clone();
    for mask in 0u64..(1u64 << free.len()) {
        for (bit, &i) in free.iter().enumerate() {
            y.set(i, (mask >> bit) & 1 == 1);
        }
        if knn.classify(&y) != base_label {
            return Some(y);
        }
    }
    None
}

/// The size of a minimum sufficient reason, by enumerating subsets in
/// increasing cardinality. Always terminates: the full set is sufficient.
pub fn minimum_sufficient_reason(knn: &BooleanKnn<'_>, x: &BitVec) -> Vec<usize> {
    let n = x.len();
    assert!(n <= 20, "subset enumeration limited to tiny dimension");
    for size in 0..=n {
        let mut subset: Vec<usize> = Vec::with_capacity(size);
        if let Some(found) = search(knn, x, 0, size, &mut subset) {
            return found;
        }
    }
    unreachable!("the full component set is always a sufficient reason");
}

fn search(
    knn: &BooleanKnn<'_>,
    x: &BitVec,
    start: usize,
    size: usize,
    subset: &mut Vec<usize>,
) -> Option<Vec<usize>> {
    if subset.len() == size {
        return is_sufficient_reason(knn, x, subset).then(|| subset.clone());
    }
    if x.len() - start < size - subset.len() {
        return None;
    }
    for i in start..x.len() {
        subset.push(i);
        if let Some(found) = search(knn, x, i + 1, size, subset) {
            return Some(found);
        }
        subset.pop();
    }
    None
}

/// The closest counterfactual by exhaustive scan of `{0,1}ⁿ`, ties broken by
/// the numerically smallest point. `None` if the whole space has one label.
pub fn closest_counterfactual(knn: &BooleanKnn<'_>, x: &BitVec) -> Option<(BitVec, usize)> {
    let n = x.len();
    assert!(n <= 24);
    let base_label = knn.classify(x);
    let mut best: Option<(BitVec, usize)> = None;
    for mask in 0u64..(1u64 << n) {
        let y = BitVec::from_bools(&(0..n).map(|i| (mask >> i) & 1 == 1).collect::<Vec<_>>());
        if knn.classify(&y) != base_label {
            let d = x.hamming(&y);
            if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                best = Some((y, d));
            }
        }
    }
    best
}

/// Decision version: is there a counterfactual within distance `l`?
pub fn counterfactual_within(knn: &BooleanKnn<'_>, x: &BitVec, l: usize) -> bool {
    closest_counterfactual(knn, x).is_some_and(|(_, d)| d <= l)
}

/// All minimal sufficient reasons (for studying Example 2-style situations).
pub fn all_minimal_sufficient_reasons(knn: &BooleanKnn<'_>, x: &BitVec) -> Vec<Vec<usize>> {
    let n = x.len();
    assert!(n <= 12, "exhaustive minimal-SR enumeration is for tiny instances");
    let mut sufficient: Vec<Vec<usize>> = Vec::new();
    for mask in 0u32..(1 << n) {
        let subset: Vec<usize> = (0..n).filter(|i| (mask >> i) & 1 == 1).collect();
        if is_sufficient_reason(knn, x, &subset) {
            sufficient.push(subset);
        }
    }
    sufficient
        .iter()
        .filter(|s| {
            !sufficient.iter().any(|t| t.len() < s.len() && t.iter().all(|i| s.contains(i)))
                && !sufficient
                    .iter()
                    .any(|t| t.len() == s.len() && t != *s && t.iter().all(|i| s.contains(i)))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_space::{BooleanDataset, OddK};

    /// The dataset of the paper's Example 2: S⁺ = {011, 101, 111} (components
    /// written (v1,v2,v3)), S⁻ = the rest, x = 000, k = 1.
    fn example2() -> BooleanDataset {
        let to_bv = |v: [u8; 3]| BitVec::from_bits(&v);
        let pos = vec![to_bv([0, 1, 1]), to_bv([1, 0, 1]), to_bv([1, 1, 1])];
        let mut neg = Vec::new();
        for m in 0..8u8 {
            let v = [m & 1, (m >> 1) & 1, (m >> 2) & 1];
            let bv = to_bv(v);
            if !pos.contains(&bv) {
                neg.push(bv);
            }
        }
        BooleanDataset::from_sets(pos, neg)
    }

    #[test]
    fn example_2_sufficient_reasons() {
        let ds = example2();
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        // The paper: {1,2} (components 1,2 → indices 0,1) and {3} (index 2)
        // are sufficient; {1}, {2}, ∅ are not.
        assert!(is_sufficient_reason(&knn, &x, &[0, 1]));
        assert!(is_sufficient_reason(&knn, &x, &[2]));
        assert!(!is_sufficient_reason(&knn, &x, &[0]));
        assert!(!is_sufficient_reason(&knn, &x, &[1]));
        assert!(!is_sufficient_reason(&knn, &x, &[]));
    }

    #[test]
    fn example_2_minimum_and_minimal() {
        let ds = example2();
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        assert_eq!(minimum_sufficient_reason(&knn, &x), vec![2]);
        let minimal = all_minimal_sufficient_reasons(&knn, &x);
        assert!(minimal.contains(&vec![0, 1]));
        assert!(minimal.contains(&vec![2]));
        assert_eq!(minimal.len(), 2);
    }

    #[test]
    fn superset_of_sufficient_reason_is_sufficient() {
        let ds = example2();
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        assert!(is_sufficient_reason(&knn, &x, &[0, 2]));
        assert!(is_sufficient_reason(&knn, &x, &[0, 1, 2]));
    }

    #[test]
    fn counterexample_witness_flips_label() {
        let ds = example2();
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        let w = sufficient_reason_counterexample(&knn, &x, &[0]).unwrap();
        assert!(!w.get(0), "witness must agree with x on the fixed set");
        assert_ne!(knn.classify(&w), knn.classify(&x));
        assert!(sufficient_reason_counterexample(&knn, &x, &[2]).is_none());
    }

    #[test]
    fn closest_counterfactual_on_example2() {
        let ds = example2();
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        // f(x)=0; the nearest positively-classified point: some point at
        // distance 2 (e.g. 011 itself is positive: d=2).
        let (y, d) = closest_counterfactual(&knn, &x).unwrap();
        assert_eq!(d, 2);
        assert_ne!(knn.classify(&y), knn.classify(&x));
        assert!(counterfactual_within(&knn, &x, 2));
        assert!(!counterfactual_within(&knn, &x, 1));
    }

    #[test]
    fn full_set_always_sufficient() {
        let ds = example2();
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::ones(3);
        assert!(is_sufficient_reason(&knn, &x, &[0, 1, 2]));
    }
}
