//! Training-set thinning for 1-NN (§10's global-interpretability remark).
//!
//! The final remarks point to the line of work on *thinning* k-NN classifiers
//! by removing redundant training points [Eppstein 2022; Flores-Velazco 2022]
//! and note it can speed up local explanation queries. We provide Hart's
//! classic Condensed Nearest Neighbor rule: it returns a subset that
//! classifies **every original training point identically** (a consistent
//! subset), which preserves 1-NN behaviour on the training set and typically
//! shrinks it substantially on clustered data.

use crate::classifier::{BooleanKnn, ContinuousKnn};
use knn_space::{BooleanDataset, ContinuousDataset, LpMetric, OddK};

/// Hart's CNN condensation. Returns the indices of the kept points, in
/// insertion order. The kept subset is *consistent*: 1-NN over it classifies
/// every point of `ds` with its own label.
pub fn condense_1nn(ds: &BooleanDataset) -> Vec<usize> {
    assert!(ds.len() >= 2);
    let mut kept: Vec<usize> = Vec::new();
    // Seed with the first point of each class.
    for label in [knn_space::Label::Positive, knn_space::Label::Negative] {
        if let Some(i) = (0..ds.len()).find(|&i| ds.label(i) == label) {
            kept.push(i);
        }
    }
    loop {
        let mut changed = false;
        for i in 0..ds.len() {
            if kept.contains(&i) {
                continue;
            }
            // Classify i with the current subset.
            let sub = subset(ds, &kept);
            let knn = BooleanKnn::new(&sub, OddK::ONE);
            if knn.classify(ds.point(i)) != ds.label(i) {
                kept.push(i);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    kept.sort_unstable();
    kept
}

/// Materializes the sub-dataset with the given indices.
pub fn subset(ds: &BooleanDataset, indices: &[usize]) -> BooleanDataset {
    let mut out = BooleanDataset::new(ds.dim());
    for &i in indices {
        out.push(ds.point(i).clone(), ds.label(i));
    }
    out
}

/// Hart's CNN condensation for continuous data under any ℓp metric — the
/// same guarantee as [`condense_1nn`]: the kept subset classifies every
/// original training point identically.
pub fn condense_1nn_continuous(ds: &ContinuousDataset<f64>, metric: LpMetric) -> Vec<usize> {
    assert!(ds.len() >= 2);
    let mut kept: Vec<usize> = Vec::new();
    for label in [knn_space::Label::Positive, knn_space::Label::Negative] {
        if let Some(i) = (0..ds.len()).find(|&i| ds.label(i) == label) {
            kept.push(i);
        }
    }
    loop {
        let mut changed = false;
        for i in 0..ds.len() {
            if kept.contains(&i) {
                continue;
            }
            let sub = subset_continuous(ds, &kept);
            let knn = ContinuousKnn::new(&sub, metric, OddK::ONE);
            if knn.classify(ds.point(i)) != ds.label(i) {
                kept.push(i);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    kept.sort_unstable();
    kept
}

/// Materializes the continuous sub-dataset with the given indices.
pub fn subset_continuous(ds: &ContinuousDataset<f64>, indices: &[usize]) -> ContinuousDataset<f64> {
    let mut out = ContinuousDataset::new(ds.dim());
    for &i in indices {
        out.push(ds.point(i).to_vec(), ds.label(i));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_space::{BitVec, Label};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_dataset(rng: &mut StdRng, per_class: usize) -> BooleanDataset {
        // Two prototypes far apart, with small perturbations.
        let dim = 24;
        let proto_pos = BitVec::zeros(dim);
        let proto_neg = BitVec::ones(dim);
        let mut ds = BooleanDataset::new(dim);
        for _ in 0..per_class {
            let mut p = proto_pos.clone();
            let mut q = proto_neg.clone();
            for _ in 0..3 {
                p.flip(rng.gen_range(0..dim));
                q.flip(rng.gen_range(0..dim));
            }
            ds.push(p, Label::Positive);
            ds.push(q, Label::Negative);
        }
        ds
    }

    #[test]
    fn condensed_subset_is_consistent() {
        let mut rng = StdRng::seed_from_u64(70);
        let ds = clustered_dataset(&mut rng, 20);
        let kept = condense_1nn(&ds);
        let sub = subset(&ds, &kept);
        let knn = BooleanKnn::new(&sub, OddK::ONE);
        for (p, l) in ds.iter() {
            assert_eq!(knn.classify(p), l, "consistency violated at {p:?}");
        }
    }

    #[test]
    fn condensation_shrinks_clustered_data() {
        let mut rng = StdRng::seed_from_u64(71);
        let ds = clustered_dataset(&mut rng, 25);
        let kept = condense_1nn(&ds);
        assert!(
            kept.len() < ds.len() / 2,
            "expected substantial shrinkage, kept {} of {}",
            kept.len(),
            ds.len()
        );
    }

    #[test]
    fn continuous_condensation_is_consistent_under_l1_and_l2() {
        let mut rng = StdRng::seed_from_u64(72);
        for metric in [LpMetric::L1, LpMetric::L2] {
            let mut ds = ContinuousDataset::new(3);
            for _ in 0..25 {
                let p: Vec<f64> = (0..3).map(|_| 1.0 + rng.gen_range(-0.4..0.4)).collect();
                let q: Vec<f64> = (0..3).map(|_| -1.0 + rng.gen_range(-0.4..0.4)).collect();
                ds.push(p, Label::Positive);
                ds.push(q, Label::Negative);
            }
            let kept = condense_1nn_continuous(&ds, metric);
            assert!(kept.len() < ds.len() / 2, "clustered data should shrink");
            let sub = subset_continuous(&ds, &kept);
            let knn = crate::ContinuousKnn::new(&sub, metric, OddK::ONE);
            for (p, l) in ds.iter() {
                assert_eq!(knn.classify(p), l);
            }
        }
    }

    #[test]
    fn adversarial_data_keeps_everything_needed() {
        // Alternating labels on a line of points: nothing is redundant-ish;
        // condensation must at least stay consistent.
        let mut ds = BooleanDataset::new(8);
        for i in 0..8 {
            let mut p = BitVec::zeros(8);
            for j in 0..=i {
                p.set(j, true);
            }
            ds.push(p, if i % 2 == 0 { Label::Positive } else { Label::Negative });
        }
        let kept = condense_1nn(&ds);
        let sub = subset(&ds, &kept);
        let knn = BooleanKnn::new(&sub, OddK::ONE);
        for (p, l) in ds.iter() {
            assert_eq!(knn.classify(p), l);
        }
    }
}
