//! Abductive explanations in the discrete setting (Prop 6, Cor 4, Thm 7, Thm 8).
//!
//! * k = 1: Check-SR is polynomial — the counterexample, if one exists, can
//!   always be chosen among the *projections* `ȳ_X` of opposite-class points
//!   (x̄ on `X`, the data point elsewhere); Proposition 6's proof shows that
//!   flipping a counterexample's free coordinates toward its witness point
//!   only strengthens it.
//! * k ≥ 3: Check-SR is coNP-complete (Thm 7); we search for counterexamples
//!   with the incremental SAT model of [`crate::satenc`].
//! * Minimum-SR is NP-complete for k = 1 (Cor 6) and Σ₂ᵖ-complete for k ≥ 3
//!   (Thm 8); both run through the implicit-hitting-set loop whose oracle is
//!   the respective checker — exactly the oracle structure of the paper's
//!   upper-bound arguments.

use crate::abductive::minimum::{minimum_sufficient_reason, HittingSetMode};
use crate::classifier::BooleanKnn;
use crate::satenc::DiscreteModel;
use crate::SrCheck;
use knn_space::{BitVec, BooleanDataset, OddK};

/// Sufficient-reason engine for the discrete setting.
pub struct HammingAbductive<'a> {
    ds: &'a BooleanDataset,
    k: OddK,
}

impl<'a> HammingAbductive<'a> {
    /// Builds the engine for `f^k_{S⁺,S⁻}` under the Hamming distance.
    pub fn new(ds: &'a BooleanDataset, k: OddK) -> Self {
        assert!(ds.len() >= k.get() as usize);
        HammingAbductive { ds, k }
    }

    fn classifier(&self) -> BooleanKnn<'a> {
        BooleanKnn::new(self.ds, self.k)
    }

    /// Check Sufficient Reason. Polynomial for k = 1 (Prop 6); SAT-backed
    /// coNP computation for k ≥ 3 (Thm 7).
    pub fn check(&self, x: &BitVec, fixed: &[usize]) -> SrCheck<BitVec> {
        if self.k == OddK::ONE {
            self.check_k1(x, fixed)
        } else {
            self.check_sat(x, fixed)
        }
    }

    /// The polynomial k = 1 checker (Proposition 6).
    pub fn check_k1(&self, x: &BitVec, fixed: &[usize]) -> SrCheck<BitVec> {
        assert_eq!(self.k, OddK::ONE, "the projected-witness argument needs k = 1");
        assert_eq!(x.len(), self.ds.dim());
        let knn = self.classifier();
        let label = knn.classify(x);
        let candidates = self.ds.indices_of(label.flip());
        for &ci in &candidates {
            let cand = self.ds.point(ci);
            let mut y = cand.clone();
            for &i in fixed {
                y.set(i, x.get(i));
            }
            if knn.classify(&y) != label {
                return SrCheck::NotSufficient { witness: y };
            }
        }
        SrCheck::Sufficient
    }

    /// The SAT-backed checker for any odd k (builds a fresh model per call;
    /// use [`HammingAbductive::session`] for repeated queries on the same x̄).
    pub fn check_sat(&self, x: &BitVec, fixed: &[usize]) -> SrCheck<BitVec> {
        let mut session = self.session(x);
        session.check(fixed)
    }

    /// Convenience boolean form of [`HammingAbductive::check`].
    pub fn is_sufficient(&self, x: &BitVec, fixed: &[usize]) -> bool {
        self.check(x, fixed).is_sufficient()
    }

    /// An incremental checking session for repeated queries on one `x̄`
    /// (greedy minimal-SR and the IHS loop reuse learned clauses this way).
    pub fn session(&self, x: &BitVec) -> CheckSession<'a, '_> {
        let label = self.classifier().classify(x);
        let model = if self.k == OddK::ONE {
            None
        } else {
            Some(DiscreteModel::build(self.ds, self.k, x, label.flip()))
        };
        CheckSession { owner: self, x: x.clone(), model }
    }

    /// A minimal sufficient reason: polynomial for k = 1 (Cor 4), coNP-oracle
    /// greedy for k ≥ 3 (still n oracle calls, each a SAT solve).
    pub fn minimal(&self, x: &BitVec) -> Vec<usize> {
        let mut session = self.session(x);
        super::greedy_minimal(self.ds.dim(), None, |s| session.check(s).is_sufficient())
    }

    /// A minimum sufficient reason — NP-complete for k = 1 (Cor 6),
    /// Σ₂ᵖ-complete for k ≥ 3 (Thm 8). Exact implicit-hitting-set loop.
    pub fn minimum(&self, x: &BitVec) -> Vec<usize> {
        self.minimum_with(x, HittingSetMode::Exact)
    }

    /// Minimum-SR with a selectable hitting-set mode.
    pub fn minimum_with(&self, x: &BitVec, mode: HittingSetMode) -> Vec<usize> {
        let mut session = self.session(x);
        let xc = x.clone();
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            move |s| session.check(s),
            move |w| xc.diff_indices(w),
        )
    }

    /// Decision form of Minimum Sufficient Reason: is there a sufficient
    /// reason of size ≤ `l`? (The Σ₂ᵖ-complete problem of Theorem 8.)
    pub fn has_sufficient_reason_of_size(&self, x: &BitVec, l: usize) -> bool {
        self.minimum(x).len() <= l
    }
}

/// Incremental Check-SR session bound to one anchor point.
pub struct CheckSession<'a, 'b> {
    owner: &'b HammingAbductive<'a>,
    x: BitVec,
    model: Option<DiscreteModel>,
}

impl CheckSession<'_, '_> {
    /// Checks whether `fixed` is a sufficient reason for the session's `x̄`.
    pub fn check(&mut self, fixed: &[usize]) -> SrCheck<BitVec> {
        match &mut self.model {
            None => self.owner.check_k1(&self.x, fixed),
            Some(model) => match model.solve_with_fixed(fixed) {
                Some(witness) => SrCheck::NotSufficient { witness },
                None => SrCheck::Sufficient,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use knn_space::Label;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn example2() -> BooleanDataset {
        let to_bv = |v: [u8; 3]| BitVec::from_bits(&v);
        let pos = vec![to_bv([0, 1, 1]), to_bv([1, 0, 1]), to_bv([1, 1, 1])];
        let mut neg = Vec::new();
        for m in 0..8u8 {
            let bv = to_bv([m & 1, (m >> 1) & 1, (m >> 2) & 1]);
            if !pos.contains(&bv) {
                neg.push(bv);
            }
        }
        BooleanDataset::from_sets(pos, neg)
    }

    #[test]
    fn example_2_check_and_minimum() {
        let ds = example2();
        let ab = HammingAbductive::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        assert!(ab.is_sufficient(&x, &[0, 1]));
        assert!(ab.is_sufficient(&x, &[2]));
        assert!(!ab.is_sufficient(&x, &[0]));
        assert!(!ab.is_sufficient(&x, &[1]));
        assert!(!ab.is_sufficient(&x, &[]));
        assert_eq!(ab.minimum(&x), vec![2]);
        assert!(ab.has_sufficient_reason_of_size(&x, 1));
        let minimal = ab.minimal(&x);
        assert!(minimal == vec![2] || minimal == vec![0, 1]);
    }

    #[test]
    fn k1_checker_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(41);
        for round in 0..60 {
            let dim = rng.gen_range(2..7usize);
            let npts = rng.gen_range(2..8usize);
            let mut ds = BooleanDataset::new(dim);
            for i in 0..npts {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let ab = HammingAbductive::new(&ds, OddK::ONE);
            let knn = BooleanKnn::new(&ds, OddK::ONE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let fixed: Vec<usize> = (0..dim).filter(|_| rng.gen_bool(0.4)).collect();
            assert_eq!(
                ab.is_sufficient(&x, &fixed),
                brute::is_sufficient_reason(&knn, &x, &fixed),
                "round {round}: fixed={fixed:?}"
            );
        }
    }

    #[test]
    fn k3_sat_checker_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..30 {
            let dim = rng.gen_range(2..6usize);
            let npts = rng.gen_range(4..8usize);
            let mut ds = BooleanDataset::new(dim);
            for i in 0..npts {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let ab = HammingAbductive::new(&ds, OddK::THREE);
            let knn = BooleanKnn::new(&ds, OddK::THREE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let fixed: Vec<usize> = (0..dim).filter(|_| rng.gen_bool(0.4)).collect();
            assert_eq!(
                ab.is_sufficient(&x, &fixed),
                brute::is_sufficient_reason(&knn, &x, &fixed),
                "round {round}: fixed={fixed:?}"
            );
        }
    }

    #[test]
    fn minimum_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(43);
        for round in 0..25 {
            let dim = rng.gen_range(2..6usize);
            let npts = rng.gen_range(3..7usize);
            let k = if rng.gen_bool(0.4) && npts >= 3 { OddK::THREE } else { OddK::ONE };
            let mut ds = BooleanDataset::new(dim);
            for i in 0..npts {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let ab = HammingAbductive::new(&ds, k);
            let knn = BooleanKnn::new(&ds, k);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let got = ab.minimum(&x);
            let want = brute::minimum_sufficient_reason(&knn, &x);
            assert_eq!(got.len(), want.len(), "round {round}: {got:?} vs {want:?}");
            assert!(brute::is_sufficient_reason(&knn, &x, &got));
        }
    }

    #[test]
    fn minimal_is_sufficient_and_minimal() {
        let mut rng = StdRng::seed_from_u64(44);
        for _ in 0..20 {
            let dim = rng.gen_range(2..6usize);
            let npts = rng.gen_range(2..7usize);
            let mut ds = BooleanDataset::new(dim);
            for i in 0..npts {
                let p: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
                let l = if i % 2 == 0 { Label::Positive } else { Label::Negative };
                ds.push(p, l);
            }
            let ab = HammingAbductive::new(&ds, OddK::ONE);
            let knn = BooleanKnn::new(&ds, OddK::ONE);
            let x: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let minimal = ab.minimal(&x);
            assert!(brute::is_sufficient_reason(&knn, &x, &minimal));
            for i in 0..minimal.len() {
                let mut sub = minimal.clone();
                sub.remove(i);
                assert!(!brute::is_sufficient_reason(&knn, &x, &sub));
            }
        }
    }

    #[test]
    fn witness_agrees_on_fixed_and_flips_label() {
        let ds = example2();
        let ab = HammingAbductive::new(&ds, OddK::ONE);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let x = BitVec::zeros(3);
        match ab.check(&x, &[0]) {
            SrCheck::NotSufficient { witness } => {
                assert!(!witness.get(0));
                assert_ne!(knn.classify(&witness), knn.classify(&x));
            }
            SrCheck::Sufficient => panic!("{{0}} is not sufficient in Example 2"),
        }
    }
}
