//! Abductive explanations (sufficient reasons).
//!
//! * [`greedy_minimal`] — Proposition 2: any polynomial Check-SR oracle yields
//!   a polynomial *minimal* sufficient reason by greedy deletion.
//! * [`minimum`] — exact *minimum* sufficient reasons by an implicit hitting
//!   set (counterexample-guided) loop, with the per-setting oracles below.
//! * [`l2`] — Proposition 3 / Corollary 1 (ℓ2, any odd k, polynomial).
//! * [`l1`] — Proposition 4 / Corollary 3 (ℓ1, k = 1, polynomial).
//! * [`hamming`] — Proposition 6 / Corollary 4 (k = 1, polynomial) and the
//!   SAT-based checker for k ≥ 3 (coNP-complete, Theorem 7).

pub mod hamming;
pub mod l1;
pub mod l2;
pub mod minimum;

/// Greedy minimal sufficient reason (Proposition 2): start from a sufficient
/// set (the full `0..n` unless `start` is given) and drop components while the
/// set stays sufficient. Exactly `|start|` oracle calls.
///
/// The result is *minimal* (no proper subset is sufficient) but not
/// necessarily *minimum* (Example 2 of the paper separates the two).
pub fn greedy_minimal(
    n: usize,
    start: Option<Vec<usize>>,
    mut is_sufficient: impl FnMut(&[usize]) -> bool,
) -> Vec<usize> {
    let mut x: Vec<usize> = start.unwrap_or_else(|| (0..n).collect());
    debug_assert!(is_sufficient(&x), "greedy_minimal must start from a sufficient set");
    let mut i = 0;
    while i < x.len() {
        let mut candidate = x.clone();
        candidate.remove(i);
        if is_sufficient(&candidate) {
            x = candidate;
        } else {
            i += 1;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_respects_monotone_oracle() {
        // Oracle: sufficient iff contains {1} or contains both {0, 3}.
        let oracle = |s: &[usize]| s.contains(&1) || (s.contains(&0) && s.contains(&3));
        let got = greedy_minimal(5, None, oracle);
        // Greedy drops 0 ({1,2,3,4} OK via 1), keeps 1 only at the end:
        // every later deletion still leaves {1}, so the result is {1}.
        assert_eq!(got, vec![1]);
        assert!(oracle(&got));
        for i in 0..got.len() {
            let mut sub = got.clone();
            sub.remove(i);
            assert!(!oracle(&sub), "result must be minimal");
        }
    }

    #[test]
    fn greedy_from_given_start() {
        let oracle = |s: &[usize]| s.contains(&1);
        let got = greedy_minimal(5, Some(vec![1, 2]), oracle);
        assert_eq!(got, vec![1]);
    }

    #[test]
    fn greedy_on_always_sufficient_oracle_returns_empty() {
        let got = greedy_minimal(4, None, |_| true);
        assert!(got.is_empty());
    }
}
