//! Exact minimum sufficient reasons via implicit hitting sets.
//!
//! A set `X` is a sufficient reason for `x̄` iff it *hits* (intersects) the
//! deviation set `D(ȳ) = {i : ȳᵢ ≠ x̄ᵢ}` of **every** counterexample `ȳ`
//! (every point classified differently from `x̄`): if `X ∩ D(ȳ) = ∅` then `ȳ`
//! agrees with `x̄` on `X` and refutes sufficiency, and conversely. A minimum
//! sufficient reason is therefore a minimum hitting set of an implicitly
//! given family — solved by the classic counterexample-guided loop:
//!
//! 1. compute a minimum hitting set `X` of the counterexamples found so far;
//! 2. ask the Check-SR oracle whether `X` is sufficient;
//! 3. if yes, `X` is optimal (it hits a *subset* of all deviation sets with
//!    minimum cardinality, and every sufficient reason hits all of them);
//!    if no, add the new counterexample's deviation set and repeat.
//!
//! Each iteration adds a deviation set disjoint from the current `X`, so the
//! family strictly grows and the loop terminates. This single engine solves
//! the NP-complete continuous cases (Cor 6) with the LP oracle and the
//! Σ₂ᵖ-complete discrete case (Thm 8) with the SAT oracle — the oracle
//! *is* the complexity-theoretic NP/coNP oracle of the upper-bound proofs.

use crate::SrCheck;

/// Exact minimum hitting set over explicit sets, by branch & bound.
/// `sets` must be nonempty sets of indices `< n`.
pub fn min_hitting_set(sets: &[Vec<usize>], n: usize) -> Vec<usize> {
    debug_assert!(sets.iter().all(|s| !s.is_empty() && s.iter().all(|&i| i < n)));
    if sets.is_empty() {
        return Vec::new();
    }
    let mut best: Vec<usize> = greedy_hitting_set(sets);
    let mut chosen: Vec<usize> = Vec::new();
    branch(sets, &mut chosen, &mut best);
    best
}

fn branch(sets: &[Vec<usize>], chosen: &mut Vec<usize>, best: &mut Vec<usize>) {
    // Lower bound: chosen + a greedy packing of pairwise-disjoint unhit sets.
    let unhit: Vec<&Vec<usize>> =
        sets.iter().filter(|s| !s.iter().any(|i| chosen.contains(i))).collect();
    if unhit.is_empty() {
        if chosen.len() < best.len() {
            *best = chosen.clone();
        }
        return;
    }
    let mut packing = 0usize;
    let mut used: Vec<usize> = Vec::new();
    for s in &unhit {
        if s.iter().all(|i| !used.contains(i)) {
            packing += 1;
            used.extend_from_slice(s);
        }
    }
    if chosen.len() + packing >= best.len() {
        return;
    }
    // Branch on the smallest unhit set.
    let pivot = unhit.iter().min_by_key(|s| s.len()).unwrap();
    let candidates: Vec<usize> = (*pivot).clone();
    for e in candidates {
        chosen.push(e);
        branch(sets, chosen, best);
        chosen.pop();
    }
}

/// Classical `ln m`-approximate greedy hitting set (also exposed as the
/// polynomial heuristic the paper's §10 asks about).
pub fn greedy_hitting_set(sets: &[Vec<usize>]) -> Vec<usize> {
    let mut hit = vec![false; sets.len()];
    let mut out: Vec<usize> = Vec::new();
    loop {
        let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
        for (si, s) in sets.iter().enumerate() {
            if !hit[si] {
                for &e in s {
                    *counts.entry(e).or_insert(0) += 1;
                }
            }
        }
        let Some((&e, _)) = counts.iter().max_by_key(|(_, &c)| c) else {
            break;
        };
        out.push(e);
        for (si, s) in sets.iter().enumerate() {
            if s.contains(&e) {
                hit[si] = true;
            }
        }
    }
    out.sort_unstable();
    out
}

/// How the hitting sets proposed to the oracle are optimized.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HittingSetMode {
    /// Branch & bound exact minimum — the returned reason is a true minimum
    /// sufficient reason.
    Exact,
    /// Greedy approximate hitting sets — polynomial per iteration, returns a
    /// sufficient reason that upper-bounds the minimum (§10's approximation
    /// question).
    Greedy,
}

/// The implicit-hitting-set loop. `check` is the setting-specific Check-SR
/// oracle; `deviation` extracts `D(ȳ)` from its counterexample witness.
///
/// Returns the sufficient reason found (minimum when `mode == Exact`).
pub fn minimum_sufficient_reason<P>(
    n: usize,
    mode: HittingSetMode,
    mut check: impl FnMut(&[usize]) -> SrCheck<P>,
    mut deviation: impl FnMut(&P) -> Vec<usize>,
) -> Vec<usize> {
    let mut family: Vec<Vec<usize>> = Vec::new();
    loop {
        let candidate = match mode {
            HittingSetMode::Exact => min_hitting_set(&family, n),
            HittingSetMode::Greedy => greedy_hitting_set(&family),
        };
        match check(&candidate) {
            SrCheck::Sufficient => return candidate,
            SrCheck::NotSufficient { witness } => {
                let d = deviation(&witness);
                assert!(
                    !d.is_empty(),
                    "counterexample must deviate from x somewhere (it has a different label)"
                );
                assert!(
                    d.iter().all(|i| !candidate.contains(i)),
                    "counterexample must agree with x on the candidate set"
                );
                family.push(d);
            }
        }
        assert!(
            family.len() <= (1usize << n.min(24)),
            "implicit hitting set loop failed to terminate"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hitting_set_examples() {
        // {0,1}, {1,2}, {2,3}: {1,2} hits all, size 2; no single element does.
        let sets = vec![vec![0, 1], vec![1, 2], vec![2, 3]];
        let hs = min_hitting_set(&sets, 4);
        assert_eq!(hs.len(), 2);
        for s in &sets {
            assert!(s.iter().any(|e| hs.contains(e)));
        }
    }

    #[test]
    fn hitting_set_single_element_dominates() {
        let sets = vec![vec![0, 5], vec![1, 5], vec![2, 5], vec![3, 5]];
        assert_eq!(min_hitting_set(&sets, 6), vec![5]);
    }

    #[test]
    fn hitting_set_disjoint_sets_need_one_each() {
        let sets = vec![vec![0], vec![1], vec![2]];
        let hs = min_hitting_set(&sets, 3);
        assert_eq!(hs.len(), 3);
    }

    #[test]
    fn greedy_hits_everything() {
        let sets = vec![vec![0, 1], vec![2], vec![1, 2, 3]];
        let hs = greedy_hitting_set(&sets);
        for s in &sets {
            assert!(s.iter().any(|e| hs.contains(e)));
        }
    }

    #[test]
    fn ihs_loop_against_synthetic_oracle() {
        // Ground truth: counterexamples are all nonempty subsets of {0,1,2}
        // avoiding X... simulate: X sufficient iff it contains 2 or both 0,1
        // (Example-2 shape). Counterexample deviation sets: {2,0}, {2,1} — the
        // complement structure; emulate with a fixed family.
        let truth: Vec<Vec<usize>> = vec![vec![0, 2], vec![1, 2]];
        let check = |x: &[usize]| {
            for t in &truth {
                if !t.iter().any(|i| x.contains(i)) {
                    return SrCheck::NotSufficient { witness: t.clone() };
                }
            }
            SrCheck::Sufficient
        };
        let got = minimum_sufficient_reason(3, HittingSetMode::Exact, check, |w| w.clone());
        assert_eq!(got, vec![2], "the single hitter {{2}} is the minimum");
    }

    #[test]
    fn ihs_greedy_mode_returns_sufficient_set() {
        let truth: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![0, 2]];
        let check = |x: &[usize]| {
            for t in &truth {
                if !t.iter().any(|i| x.contains(i)) {
                    return SrCheck::NotSufficient { witness: t.clone() };
                }
            }
            SrCheck::Sufficient
        };
        let got = minimum_sufficient_reason(3, HittingSetMode::Greedy, check, |w| w.clone());
        for t in &truth {
            assert!(t.iter().any(|i| got.contains(i)));
        }
    }
}
