//! Abductive explanations under ℓ2 (Proposition 3, Corollary 1, Corollary 6).
//!
//! `X` is **not** a sufficient reason for `x̄` iff the affine subspace
//! `U(X, x̄) = {ȳ : ȳᵢ = x̄ᵢ ∀i ∈ X}` intersects the opposite decision
//! region, which by Proposition 1 is a union of polynomially many (for fixed
//! k) polyhedra — closed ones for the positive region (plain LP feasibility),
//! open ones for the negative region (strict feasibility via the ε-LP).

use crate::abductive::minimum::{minimum_sufficient_reason, HittingSetMode};
use crate::classifier::ContinuousKnn;
use crate::regions::{anchor_order, LazyRegions, RegionCache, RegionStream};
use crate::SrCheck;
use knn_num::Field;
use knn_qp::Polyhedron;
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};
use std::borrow::Borrow;

/// Sufficient-reason engine for the ℓ2 setting.
#[derive(Clone, Debug)]
pub struct L2Abductive<'a, F> {
    ds: &'a ContinuousDataset<F>,
    k: OddK,
}

impl<'a, F: Field> L2Abductive<'a, F> {
    /// Builds the engine for `f^k_{S⁺,S⁻}` under ℓ2.
    pub fn new(ds: &'a ContinuousDataset<F>, k: OddK) -> Self {
        assert!(ds.len() >= k.get() as usize);
        L2Abductive { ds, k }
    }

    fn classifier(&self) -> ContinuousKnn<'a, F> {
        ContinuousKnn::new(self.ds, LpMetric::L2, self.k)
    }

    /// `k`-Check Sufficient Reason(ℝ, D₂) — polynomial for fixed k (Prop 3).
    ///
    /// Regions are enumerated lazily, nearest-anchor-first and pruned
    /// ([`RegionStream::for_query`]), so a failing check usually terminates
    /// after a handful of LPs instead of scanning the whole decomposition.
    pub fn check(&self, x: &[F], fixed: &[usize]) -> SrCheck<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        let target = self.classifier().classify(x).flip();
        let stream = RegionStream::for_query(self.ds, self.k, target, x, None);
        self.check_over(x, fixed, target, stream.map(|(p, _)| p))
    }

    /// [`L2Abductive::check`] against a shared [`LazyRegions`] view (built
    /// for the same dataset and `k`): the batch engine's serving path. Warm
    /// queries replay memoized polyhedra; cold ones enumerate and memoize.
    pub fn check_lazy(
        &self,
        x: &[F],
        fixed: &[usize],
        regions: &LazyRegions<F>,
    ) -> SrCheck<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "lazy regions built for a different k");
        let target = self.classifier().classify(x).flip();
        self.check_over(x, fixed, target, regions.stream(target, x).map(|(p, _)| p))
    }

    /// [`L2Abductive::check`] against the eager, pre-materialized
    /// [`RegionCache`] — the differential-testing oracle. Iterates the
    /// cache through [`RegionCache::ordered_pruned`], i.e. in exactly the
    /// order and with exactly the prune decisions of the lazy path, so the
    /// two produce identical witnesses.
    pub fn check_in(&self, x: &[F], fixed: &[usize], regions: &RegionCache<F>) -> SrCheck<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "region cache built for a different k");
        let target = self.classifier().classify(x).flip();
        self.check_over(x, fixed, target, regions.ordered_pruned(self.ds, target, x))
    }

    /// The shared LP loop: first region of `polys` admitting a point of
    /// `U(X, x̄)` yields the counterexample. The polyhedra are used
    /// read-only; the affine restriction is applied per-LP.
    fn check_over<B: Borrow<Polyhedron<F>>>(
        &self,
        x: &[F],
        fixed: &[usize],
        target: Label,
        polys: impl IntoIterator<Item = B>,
    ) -> SrCheck<Vec<F>> {
        let fixed_vals: Vec<(usize, F)> = fixed.iter().map(|&i| (i, x[i].clone())).collect();
        for poly in polys {
            let poly = poly.borrow();
            let witness = match target {
                // The positive region is closed, so any feasible point works —
                // but a bisector-boundary point classifies by exact tie-break,
                // which the float instantiation cannot reproduce reliably.
                // Prefer an interior witness and keep the boundary fallback
                // for measure-zero cells.
                Label::Positive => poly
                    .strict_feasible_point_fixed(&fixed_vals)
                    .or_else(|| poly.feasible_point_fixed(&fixed_vals)),
                Label::Negative => poly.strict_feasible_point_fixed(&fixed_vals),
            };
            if let Some(w) = witness {
                if self.classifier().classify(&w) != target {
                    // Exact fields satisfy Prop 1 on the nose; a float LP can
                    // return a point a rounding error onto the wrong side of a
                    // bisector. Such a point certifies nothing — keep looking.
                    debug_assert!(!F::exact(), "exact witness must classify as target");
                    continue;
                }
                return SrCheck::NotSufficient { witness: w };
            }
        }
        SrCheck::Sufficient
    }

    /// Convenience boolean form of [`L2Abductive::check`].
    pub fn is_sufficient(&self, x: &[F], fixed: &[usize]) -> bool {
        self.check(x, fixed).is_sufficient()
    }

    /// A *minimal* sufficient reason in polynomial time (Cor 1 via Prop 2).
    /// The nearest-anchor-first order depends only on `x`, so it is computed
    /// once and shared by every greedy-deletion check.
    pub fn minimal(&self, x: &[F]) -> Vec<usize> {
        let target = self.classifier().classify(x).flip();
        let order = anchor_order(self.ds, self.k, target, Some(x));
        super::greedy_minimal(self.ds.dim(), None, |s| {
            let stream =
                RegionStream::with_order(self.ds, self.k, target, order.clone(), true, None);
            self.check_over(x, s, target, stream.map(|(p, _)| p)).is_sufficient()
        })
    }

    /// [`L2Abductive::minimal`] over a shared [`LazyRegions`] view (one
    /// anchor ordering for the whole greedy loop).
    pub fn minimal_lazy(&self, x: &[F], regions: &LazyRegions<F>) -> Vec<usize> {
        assert_eq!(regions.k(), self.k, "lazy regions built for a different k");
        let target = self.classifier().classify(x).flip();
        let order = regions.order_for(target, x);
        super::greedy_minimal(self.ds.dim(), None, |s| {
            let stream = regions.stream_with_order(target, order.clone());
            self.check_over(x, s, target, stream.map(|(p, _)| p)).is_sufficient()
        })
    }

    /// [`L2Abductive::minimal`] over the eager [`RegionCache`] oracle (one
    /// entry permutation for the whole greedy loop, mirroring the lazy twin).
    pub fn minimal_in(&self, x: &[F], regions: &RegionCache<F>) -> Vec<usize> {
        assert_eq!(regions.k(), self.k, "region cache built for a different k");
        let target = self.classifier().classify(x).flip();
        let order = regions.query_order(self.ds, target, x);
        super::greedy_minimal(self.ds.dim(), None, |s| {
            self.check_over(x, s, target, regions.ordered_pruned_with(target, order.clone()))
                .is_sufficient()
        })
    }

    /// A *minimum* sufficient reason — NP-complete (Cor 6); exact via the
    /// implicit-hitting-set loop with the polynomial check as oracle.
    pub fn minimum(&self, x: &[F]) -> Vec<usize> {
        self.minimum_with(x, HittingSetMode::Exact)
    }

    /// Minimum-SR loop with a choice of hitting-set mode (`Greedy` gives the
    /// polynomial upper-bound heuristic of §10's approximation question).
    /// One anchor ordering serves every counterexample check in the loop.
    pub fn minimum_with(&self, x: &[F], mode: HittingSetMode) -> Vec<usize> {
        let target = self.classifier().classify(x).flip();
        let order = anchor_order(self.ds, self.k, target, Some(x));
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            |s| {
                let stream =
                    RegionStream::with_order(self.ds, self.k, target, order.clone(), true, None);
                self.check_over(x, s, target, stream.map(|(p, _)| p))
            },
            |w| Self::deviation(x, w),
        )
    }

    /// [`L2Abductive::minimum_with`] over a shared [`LazyRegions`] view (one
    /// anchor ordering for the whole hitting-set loop).
    pub fn minimum_lazy(
        &self,
        x: &[F],
        mode: HittingSetMode,
        regions: &LazyRegions<F>,
    ) -> Vec<usize> {
        assert_eq!(regions.k(), self.k, "lazy regions built for a different k");
        let target = self.classifier().classify(x).flip();
        let order = regions.order_for(target, x);
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            |s| {
                let stream = regions.stream_with_order(target, order.clone());
                self.check_over(x, s, target, stream.map(|(p, _)| p))
            },
            |w| Self::deviation(x, w),
        )
    }

    /// [`L2Abductive::minimum_with`] over the eager [`RegionCache`] oracle
    /// (one entry permutation for the whole hitting-set loop).
    pub fn minimum_in(
        &self,
        x: &[F],
        mode: HittingSetMode,
        regions: &RegionCache<F>,
    ) -> Vec<usize> {
        assert_eq!(regions.k(), self.k, "region cache built for a different k");
        let target = self.classifier().classify(x).flip();
        let order = regions.query_order(self.ds, target, x);
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            |s| self.check_over(x, s, target, regions.ordered_pruned_with(target, order.clone())),
            |w| Self::deviation(x, w),
        )
    }

    /// The deviation set `D(ȳ) = {i : ȳᵢ ≠ x̄ᵢ}` of a counterexample.
    fn deviation(x: &[F], w: &[F]) -> Vec<usize> {
        (0..x.len())
            .filter(|&i| {
                let d = w[i].clone() - x[i].clone();
                !d.is_zero()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64) -> Rat {
        Rat::from_int(p)
    }

    /// 1-D: positives at -1 and 1, negative at 3; x = 0 (positive).
    /// The empty set is NOT sufficient (points near 3 are negative) but any
    /// coordinate fix is: fixing x₁ = 0 pins the whole point in 1-D.
    #[test]
    fn one_dimensional_check() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(-1)], vec![r(1)]], vec![vec![r(3)]]);
        let ab = L2Abductive::new(&ds, OddK::ONE);
        let x = [r(0)];
        assert!(!ab.is_sufficient(&x, &[]));
        assert!(ab.is_sufficient(&x, &[0]));
        assert_eq!(ab.minimal(&x), vec![0]);
        assert_eq!(ab.minimum(&x), vec![0]);
    }

    /// 2-D: classification depends only on coordinate 0; coordinate 1 is
    /// irrelevant, so {0} must be the minimal and minimum sufficient reason.
    #[test]
    fn irrelevant_coordinate_dropped() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![r(-1), r(0)], vec![r(-1), r(5)]],
            vec![vec![r(1), r(0)], vec![r(1), r(5)]],
        );
        let ab = L2Abductive::new(&ds, OddK::ONE);
        let x = [r(-1), r(2)];
        // x is positive; fixing coordinate 0 = -1 keeps any (−1, y₂) closer to
        // some positive than to every negative? d((−1,y), (−1,p))² = (y−p)²;
        // d to negatives = 4 + (y−q)². min over p of (y−p)² ≤ min over q 4+(y−q)²
        // iff min_p (y−p)² ≤ 4 + min_q (y−q)². With p,q ∈ {0,5} equal sets:
        // min_p = min_q → always ≤. So {0} is sufficient.
        assert!(ab.is_sufficient(&x, &[0]));
        assert!(!ab.is_sufficient(&x, &[1]));
        assert!(!ab.is_sufficient(&x, &[]));
        assert_eq!(ab.minimum(&x), vec![0]);
        assert_eq!(ab.minimal(&x), vec![0]);
    }

    /// The witness returned by a failed check must agree with x on the fixed
    /// coordinates and flip the label.
    #[test]
    fn witness_properties() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(0), r(0)]], vec![vec![r(4), r(4)]]);
        let ab = L2Abductive::new(&ds, OddK::ONE);
        let x = [r(0), r(0)];
        match ab.check(&x, &[0]) {
            SrCheck::NotSufficient { witness } => {
                assert_eq!(witness[0], r(0));
                let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
                assert_eq!(knn.classify(&witness), Label::Negative);
            }
            SrCheck::Sufficient => panic!("x₂ can push the point into the negative cell"),
        }
    }

    /// k = 3 with a positive cluster outvoting a single negative.
    #[test]
    fn k3_check() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![r(-1)], vec![r(0)], vec![r(1)]],
            vec![vec![r(10)]],
        );
        let ab = L2Abductive::new(&ds, OddK::THREE);
        let x = [r(0)];
        // With k=3, any point sees at least 2 positives among its 3 nearest
        // (only one negative exists) → label is always positive → ∅ sufficient.
        assert!(ab.is_sufficient(&x, &[]));
        assert_eq!(ab.minimum(&x), Vec::<usize>::new());
    }

    /// Minimum can be smaller than what a poorly-ordered greedy finds
    /// (Example 2's phenomenon, continuous analogue).
    #[test]
    fn minimum_never_larger_than_minimal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..15 {
            let dim = rng.gen_range(1..4usize);
            let npts = rng.gen_range(2..5usize);
            let pos: Vec<Vec<Rat>> = (0..npts.div_ceil(2))
                .map(|_| (0..dim).map(|_| r(rng.gen_range(-3i64..4))).collect())
                .collect();
            let neg: Vec<Vec<Rat>> = (0..npts / 2 + 1)
                .map(|_| (0..dim).map(|_| r(rng.gen_range(-3i64..4))).collect())
                .collect();
            let ds = ContinuousDataset::from_sets(pos, neg);
            let ab = L2Abductive::new(&ds, OddK::ONE);
            let x: Vec<Rat> = (0..dim).map(|_| r(rng.gen_range(-3i64..4))).collect();
            let minimal = ab.minimal(&x);
            let minimum = ab.minimum(&x);
            assert!(minimum.len() <= minimal.len());
            assert!(ab.is_sufficient(&x, &minimum));
            assert!(ab.is_sufficient(&x, &minimal));
        }
    }
}
