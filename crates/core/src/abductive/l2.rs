//! Abductive explanations under ℓ2 (Proposition 3, Corollary 1, Corollary 6).
//!
//! `X` is **not** a sufficient reason for `x̄` iff the affine subspace
//! `U(X, x̄) = {ȳ : ȳᵢ = x̄ᵢ ∀i ∈ X}` intersects the opposite decision
//! region, which by Proposition 1 is a union of polynomially many (for fixed
//! k) polyhedra — closed ones for the positive region (plain LP feasibility),
//! open ones for the negative region (strict feasibility via the ε-LP).

use crate::abductive::minimum::{minimum_sufficient_reason, HittingSetMode};
use crate::classifier::ContinuousKnn;
use crate::regions::{region_polyhedra, RegionCache};
use crate::SrCheck;
use knn_num::Field;
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};

/// Sufficient-reason engine for the ℓ2 setting.
#[derive(Clone, Debug)]
pub struct L2Abductive<'a, F> {
    ds: &'a ContinuousDataset<F>,
    k: OddK,
}

impl<'a, F: Field> L2Abductive<'a, F> {
    /// Builds the engine for `f^k_{S⁺,S⁻}` under ℓ2.
    pub fn new(ds: &'a ContinuousDataset<F>, k: OddK) -> Self {
        assert!(ds.len() >= k.get() as usize);
        L2Abductive { ds, k }
    }

    fn classifier(&self) -> ContinuousKnn<'a, F> {
        ContinuousKnn::new(self.ds, LpMetric::L2, self.k)
    }

    /// `k`-Check Sufficient Reason(ℝ, D₂) — polynomial for fixed k (Prop 3).
    pub fn check(&self, x: &[F], fixed: &[usize]) -> SrCheck<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        let label = self.classifier().classify(x);
        let target = label.flip();
        for mut poly in region_polyhedra(self.ds, self.k, target) {
            for &i in fixed {
                poly.fix_coord(i, x[i].clone());
            }
            let witness = match target {
                // The positive region is closed, so any feasible point works —
                // but a bisector-boundary point classifies by exact tie-break,
                // which the float instantiation cannot reproduce reliably.
                // Prefer an interior witness and keep the boundary fallback
                // for measure-zero cells.
                Label::Positive => poly.strict_feasible_point().or_else(|| poly.feasible_point()),
                Label::Negative => poly.strict_feasible_point(),
            };
            if let Some(w) = witness {
                if self.classifier().classify(&w) != target {
                    // Exact fields satisfy Prop 1 on the nose; a float LP can
                    // return a point a rounding error onto the wrong side of a
                    // bisector. Such a point certifies nothing — keep looking.
                    debug_assert!(!F::exact(), "exact witness must classify as target");
                    continue;
                }
                return SrCheck::NotSufficient { witness: w };
            }
        }
        SrCheck::Sufficient
    }

    /// [`L2Abductive::check`] against a shared, pre-enumerated
    /// [`RegionCache`] (built for the same dataset and `k`): the batch
    /// engine's hot path. The polyhedra are used read-only; the affine
    /// restriction `U(X, x̄)` is applied per-LP.
    pub fn check_in(&self, x: &[F], fixed: &[usize], regions: &RegionCache<F>) -> SrCheck<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        assert_eq!(regions.k(), self.k, "region cache built for a different k");
        let label = self.classifier().classify(x);
        let target = label.flip();
        let fixed_vals: Vec<(usize, F)> = fixed.iter().map(|&i| (i, x[i].clone())).collect();
        for poly in regions.polyhedra(target) {
            let witness = match target {
                Label::Positive => poly
                    .strict_feasible_point_fixed(&fixed_vals)
                    .or_else(|| poly.feasible_point_fixed(&fixed_vals)),
                Label::Negative => poly.strict_feasible_point_fixed(&fixed_vals),
            };
            if let Some(w) = witness {
                if self.classifier().classify(&w) != target {
                    debug_assert!(!F::exact(), "exact witness must classify as target");
                    continue;
                }
                return SrCheck::NotSufficient { witness: w };
            }
        }
        SrCheck::Sufficient
    }

    /// Convenience boolean form of [`L2Abductive::check`].
    pub fn is_sufficient(&self, x: &[F], fixed: &[usize]) -> bool {
        self.check(x, fixed).is_sufficient()
    }

    /// A *minimal* sufficient reason in polynomial time (Cor 1 via Prop 2).
    pub fn minimal(&self, x: &[F]) -> Vec<usize> {
        super::greedy_minimal(self.ds.dim(), None, |s| self.is_sufficient(x, s))
    }

    /// [`L2Abductive::minimal`] over a shared [`RegionCache`].
    pub fn minimal_in(&self, x: &[F], regions: &RegionCache<F>) -> Vec<usize> {
        super::greedy_minimal(self.ds.dim(), None, |s| self.check_in(x, s, regions).is_sufficient())
    }

    /// A *minimum* sufficient reason — NP-complete (Cor 6); exact via the
    /// implicit-hitting-set loop with the polynomial check as oracle.
    pub fn minimum(&self, x: &[F]) -> Vec<usize> {
        self.minimum_with(x, HittingSetMode::Exact)
    }

    /// Minimum-SR loop with a choice of hitting-set mode (`Greedy` gives the
    /// polynomial upper-bound heuristic of §10's approximation question).
    pub fn minimum_with(&self, x: &[F], mode: HittingSetMode) -> Vec<usize> {
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            |s| self.check(x, s),
            |w| Self::deviation(x, w),
        )
    }

    /// [`L2Abductive::minimum_with`] over a shared [`RegionCache`].
    pub fn minimum_in(
        &self,
        x: &[F],
        mode: HittingSetMode,
        regions: &RegionCache<F>,
    ) -> Vec<usize> {
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            |s| self.check_in(x, s, regions),
            |w| Self::deviation(x, w),
        )
    }

    /// The deviation set `D(ȳ) = {i : ȳᵢ ≠ x̄ᵢ}` of a counterexample.
    fn deviation(x: &[F], w: &[F]) -> Vec<usize> {
        (0..x.len())
            .filter(|&i| {
                let d = w[i].clone() - x[i].clone();
                !d.is_zero()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64) -> Rat {
        Rat::from_int(p)
    }

    /// 1-D: positives at -1 and 1, negative at 3; x = 0 (positive).
    /// The empty set is NOT sufficient (points near 3 are negative) but any
    /// coordinate fix is: fixing x₁ = 0 pins the whole point in 1-D.
    #[test]
    fn one_dimensional_check() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(-1)], vec![r(1)]], vec![vec![r(3)]]);
        let ab = L2Abductive::new(&ds, OddK::ONE);
        let x = [r(0)];
        assert!(!ab.is_sufficient(&x, &[]));
        assert!(ab.is_sufficient(&x, &[0]));
        assert_eq!(ab.minimal(&x), vec![0]);
        assert_eq!(ab.minimum(&x), vec![0]);
    }

    /// 2-D: classification depends only on coordinate 0; coordinate 1 is
    /// irrelevant, so {0} must be the minimal and minimum sufficient reason.
    #[test]
    fn irrelevant_coordinate_dropped() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![r(-1), r(0)], vec![r(-1), r(5)]],
            vec![vec![r(1), r(0)], vec![r(1), r(5)]],
        );
        let ab = L2Abductive::new(&ds, OddK::ONE);
        let x = [r(-1), r(2)];
        // x is positive; fixing coordinate 0 = -1 keeps any (−1, y₂) closer to
        // some positive than to every negative? d((−1,y), (−1,p))² = (y−p)²;
        // d to negatives = 4 + (y−q)². min over p of (y−p)² ≤ min over q 4+(y−q)²
        // iff min_p (y−p)² ≤ 4 + min_q (y−q)². With p,q ∈ {0,5} equal sets:
        // min_p = min_q → always ≤. So {0} is sufficient.
        assert!(ab.is_sufficient(&x, &[0]));
        assert!(!ab.is_sufficient(&x, &[1]));
        assert!(!ab.is_sufficient(&x, &[]));
        assert_eq!(ab.minimum(&x), vec![0]);
        assert_eq!(ab.minimal(&x), vec![0]);
    }

    /// The witness returned by a failed check must agree with x on the fixed
    /// coordinates and flip the label.
    #[test]
    fn witness_properties() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(0), r(0)]], vec![vec![r(4), r(4)]]);
        let ab = L2Abductive::new(&ds, OddK::ONE);
        let x = [r(0), r(0)];
        match ab.check(&x, &[0]) {
            SrCheck::NotSufficient { witness } => {
                assert_eq!(witness[0], r(0));
                let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
                assert_eq!(knn.classify(&witness), Label::Negative);
            }
            SrCheck::Sufficient => panic!("x₂ can push the point into the negative cell"),
        }
    }

    /// k = 3 with a positive cluster outvoting a single negative.
    #[test]
    fn k3_check() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![r(-1)], vec![r(0)], vec![r(1)]],
            vec![vec![r(10)]],
        );
        let ab = L2Abductive::new(&ds, OddK::THREE);
        let x = [r(0)];
        // With k=3, any point sees at least 2 positives among its 3 nearest
        // (only one negative exists) → label is always positive → ∅ sufficient.
        assert!(ab.is_sufficient(&x, &[]));
        assert_eq!(ab.minimum(&x), Vec::<usize>::new());
    }

    /// Minimum can be smaller than what a poorly-ordered greedy finds
    /// (Example 2's phenomenon, continuous analogue).
    #[test]
    fn minimum_never_larger_than_minimal() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..15 {
            let dim = rng.gen_range(1..4usize);
            let npts = rng.gen_range(2..5usize);
            let pos: Vec<Vec<Rat>> = (0..npts.div_ceil(2))
                .map(|_| (0..dim).map(|_| r(rng.gen_range(-3i64..4))).collect())
                .collect();
            let neg: Vec<Vec<Rat>> = (0..npts / 2 + 1)
                .map(|_| (0..dim).map(|_| r(rng.gen_range(-3i64..4))).collect())
                .collect();
            let ds = ContinuousDataset::from_sets(pos, neg);
            let ab = L2Abductive::new(&ds, OddK::ONE);
            let x: Vec<Rat> = (0..dim).map(|_| r(rng.gen_range(-3i64..4))).collect();
            let minimal = ab.minimal(&x);
            let minimum = ab.minimum(&x);
            assert!(minimum.len() <= minimal.len());
            assert!(ab.is_sufficient(&x, &minimum));
            assert!(ab.is_sufficient(&x, &minimal));
        }
    }
}
