//! Abductive explanations under ℓ1 for k = 1 (Proposition 4, Corollary 3).
//!
//! The key fact from the proof of Prop 4: writing points as `(v₁, v₂)` with
//! `v₁` the projection to the fixed set `X`, the ℓ1 norm splits as
//! `‖(x₁,y₂) − (a₁,a₂)‖₁ = ‖x₁−a₁‖₁ + ‖y₂−a₂‖₁`, and for a candidate
//! witness class point `ā` the right-hand side `‖y₂−c̄₂‖₁ − ‖y₂−ā₂‖₁` is
//! maximized at `y₂ = ā₂` by the triangle inequality. So it suffices to test,
//! for each opposite-class point, the completion that **copies that point's
//! free coordinates** — a polynomial set of candidates.

use crate::abductive::minimum::{minimum_sufficient_reason, HittingSetMode};
use crate::classifier::ContinuousKnn;
use crate::SrCheck;
use knn_num::Field;
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};

/// Sufficient-reason engine for the ℓ1 setting with k = 1.
#[derive(Clone, Debug)]
pub struct L1Abductive<'a, F> {
    ds: &'a ContinuousDataset<F>,
}

impl<'a, F: Field> L1Abductive<'a, F> {
    /// Builds the engine (k = 1; the problem is coNP-complete for k ≥ 3,
    /// Theorem 5, and this crate deliberately offers no fast path there).
    pub fn new(ds: &'a ContinuousDataset<F>) -> Self {
        assert!(!ds.is_empty());
        L1Abductive { ds }
    }

    fn classifier(&self) -> ContinuousKnn<'a, F> {
        ContinuousKnn::new(self.ds, LpMetric::L1, OddK::ONE)
    }

    /// Builds the candidate completion: `x̄` on `fixed`, `v̄` elsewhere.
    fn completion(&self, x: &[F], v: &[F], fixed: &[usize]) -> Vec<F> {
        (0..x.len()).map(|i| if fixed.contains(&i) { x[i].clone() } else { v[i].clone() }).collect()
    }

    /// `1`-Check Sufficient Reason(ℝ, D₁) — polynomial (Prop 4).
    pub fn check(&self, x: &[F], fixed: &[usize]) -> SrCheck<Vec<F>> {
        assert_eq!(x.len(), self.ds.dim());
        let metric = LpMetric::L1;
        let label = self.classifier().classify(x);
        // Candidate witnesses come from the class opposite to f(x); the
        // witness condition is non-strict when certifying a positive label
        // (optimistic ties) and strict when certifying a negative one.
        let (cand_label, other_label) = (label.flip(), label);
        let candidates = self.ds.indices_of(cand_label);
        let others = self.ds.indices_of(other_label);
        for &ci in &candidates {
            let y = self.completion(x, self.ds.point(ci), fixed);
            let d_self = metric.dist_pow(&y, self.ds.point(ci));
            let beaten = others.iter().any(|&oi| {
                let d_other = metric.dist_pow(&y, self.ds.point(oi));
                match cand_label {
                    // Need d(y, candidate) ≤ d(y, every other) to certify f(y)=1.
                    Label::Positive => d_other < d_self,
                    // Need strict d(y, candidate) < d(y, every other) for f(y)=0.
                    Label::Negative => {
                        d_self.partial_cmp(&d_other) != Some(std::cmp::Ordering::Less)
                    }
                }
            });
            if !beaten {
                debug_assert_eq!(self.classifier().classify(&y), cand_label);
                return SrCheck::NotSufficient { witness: y };
            }
        }
        SrCheck::Sufficient
    }

    /// Convenience boolean form of [`L1Abductive::check`].
    pub fn is_sufficient(&self, x: &[F], fixed: &[usize]) -> bool {
        self.check(x, fixed).is_sufficient()
    }

    /// A minimal sufficient reason in polynomial time (Cor 3 via Prop 2).
    pub fn minimal(&self, x: &[F]) -> Vec<usize> {
        super::greedy_minimal(self.ds.dim(), None, |s| self.is_sufficient(x, s))
    }

    /// A minimum sufficient reason — NP-complete (Cor 6); exact IHS loop.
    pub fn minimum(&self, x: &[F]) -> Vec<usize> {
        self.minimum_with(x, HittingSetMode::Exact)
    }

    /// Minimum-SR with a selectable hitting-set mode.
    pub fn minimum_with(&self, x: &[F], mode: HittingSetMode) -> Vec<usize> {
        minimum_sufficient_reason(
            self.ds.dim(),
            mode,
            |s| self.check(x, s),
            |w| (0..x.len()).filter(|&i| !(w[i].clone() - x[i].clone()).is_zero()).collect(),
        )
    }
}

/// Fast `f64` minimal-SR used by the Figure 6a harness: same algorithm as
/// [`L1Abductive::minimal`], with the inner "is the candidate beaten?" scan
/// implemented with early-abort accumulation (the FAISS role in §9.2).
pub fn minimal_sufficient_reason_f64(ds: &ContinuousDataset<f64>, x: &[f64]) -> Vec<usize> {
    let n = ds.dim();
    let knn = ContinuousKnn::new(ds, LpMetric::L1, OddK::ONE);
    let label = knn.classify(x);
    let cand_label = label.flip();
    let cands: Vec<&[f64]> = ds.iter().filter(|&(_, l)| l == cand_label).map(|(p, _)| p).collect();
    let others: Vec<&[f64]> = ds.iter().filter(|&(_, l)| l == label).map(|(p, _)| p).collect();
    let strict = cand_label == Label::Negative;

    // `fixed` is represented as a membership mask for O(1) lookups.
    let mut in_x = vec![true; n];
    let is_sufficient = |in_x: &[bool]| -> bool {
        let mut y = vec![0.0f64; n];
        'cand: for cand in &cands {
            for i in 0..n {
                y[i] = if in_x[i] { x[i] } else { cand[i] };
            }
            let d_self: f64 = y.iter().zip(cand.iter()).map(|(a, b)| (a - b).abs()).sum();
            for other in &others {
                // Early-abort accumulation: once the partial sum passes
                // d_self the point cannot beat the candidate.
                let mut acc = 0.0;
                let mut beaten = true;
                for i in 0..n {
                    acc += (y[i] - other[i]).abs();
                    if strict {
                        if acc > d_self {
                            beaten = false;
                            break;
                        }
                    } else if acc >= d_self {
                        beaten = false;
                        break;
                    }
                }
                // `beaten` ⇒ this other point is closer (or ties, in the
                // strict regime), killing the candidate.
                if beaten {
                    continue 'cand;
                }
            }
            return false; // candidate survives → counterexample exists
        }
        true
    };

    if !is_sufficient(&in_x) {
        // Defensive: the full set is always sufficient; floating-point should
        // never reach here, but return the full set rather than panic.
        return (0..n).collect();
    }
    for i in 0..n {
        in_x[i] = false;
        if !is_sufficient(&in_x) {
            in_x[i] = true;
        }
    }
    (0..n).filter(|&i| in_x[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    fn r(p: i64) -> Rat {
        Rat::from_int(p)
    }

    #[test]
    fn one_dimensional() {
        let ds = ContinuousDataset::from_sets(vec![vec![r(0)]], vec![vec![r(4)]]);
        let ab = L1Abductive::new(&ds);
        let x = [r(1)];
        assert!(!ab.is_sufficient(&x, &[]));
        assert!(ab.is_sufficient(&x, &[0]));
        assert_eq!(ab.minimal(&x), vec![0]);
    }

    #[test]
    fn irrelevant_coordinate() {
        // Classification depends only on coordinate 0 (same layout as the ℓ2
        // test; under ℓ1 the same reasoning applies).
        let ds = ContinuousDataset::from_sets(
            vec![vec![r(-1), r(0)], vec![r(-1), r(5)]],
            vec![vec![r(1), r(0)], vec![r(1), r(5)]],
        );
        let ab = L1Abductive::new(&ds);
        let x = [r(-1), r(2)];
        assert!(ab.is_sufficient(&x, &[0]));
        assert!(!ab.is_sufficient(&x, &[1]));
        assert_eq!(ab.minimal(&x), vec![0]);
        assert_eq!(ab.minimum(&x), vec![0]);
    }

    #[test]
    fn strictness_asymmetry_on_ties() {
        // Positive at 0, negative at 2; x = 1 is EXACTLY tied → optimistic
        // f(x) = 1. The empty set is sufficient iff every y has f(y) = 1,
        // which fails (y near 2). Fixing nothing → insufficient.
        let ds = ContinuousDataset::from_sets(vec![vec![r(0)]], vec![vec![r(2)]]);
        let ab = L1Abductive::new(&ds);
        let x = [r(1)];
        let knn = ContinuousKnn::new(&ds, LpMetric::L1, OddK::ONE);
        assert_eq!(knn.classify(&x), Label::Positive);
        assert!(!ab.is_sufficient(&x, &[]));
        // The witness must be STRICTLY closer to the negative point.
        match ab.check(&x, &[]) {
            SrCheck::NotSufficient { witness } => {
                assert_eq!(knn.classify(&witness), Label::Negative);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn agrees_with_l2_on_axis_separated_data() {
        // When data differ on a single coordinate, ℓ1 and ℓ2 induce the same
        // classifier, so sufficiency must agree.
        let ds = ContinuousDataset::from_sets(vec![vec![r(-2), r(1)]], vec![vec![r(2), r(1)]]);
        let l1 = L1Abductive::new(&ds);
        let l2 = crate::abductive::l2::L2Abductive::new(&ds, OddK::ONE);
        let x = [r(-1), r(7)];
        for fixed in [vec![], vec![0], vec![1], vec![0, 1]] {
            assert_eq!(
                l1.is_sufficient(&x, &fixed),
                l2.is_sufficient(&x, &fixed),
                "fixed = {fixed:?}"
            );
        }
    }

    #[test]
    fn fast_f64_variant_matches_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let dim = rng.gen_range(1..5usize);
            let npos = rng.gen_range(1..4usize);
            let nneg = rng.gen_range(1..4usize);
            let pos: Vec<Vec<f64>> = (0..npos)
                .map(|_| (0..dim).map(|_| rng.gen_range(-4i64..5) as f64).collect())
                .collect();
            let neg: Vec<Vec<f64>> = (0..nneg)
                .map(|_| (0..dim).map(|_| rng.gen_range(-4i64..5) as f64).collect())
                .collect();
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-4i64..5) as f64).collect();
            let dsf = ContinuousDataset::from_sets(pos.clone(), neg.clone());
            let fast = minimal_sufficient_reason_f64(&dsf, &x);
            // Exact rational reference.
            let dsr = dsf.map_field(|&v| Rat::from_f64(v));
            let xr: Vec<Rat> = x.iter().map(|&v| Rat::from_f64(v)).collect();
            let exact = L1Abductive::new(&dsr).minimal(&xr);
            assert_eq!(fast, exact, "pos={pos:?} neg={neg:?} x={x:?}");
        }
    }
}
