//! The Proposition 1 decomposition of the classifier's decision regions into
//! polyhedra, for the ℓ2 metric.
//!
//! Under ℓ2, `d(ȳ, ā) ≤ d(ȳ, c̄)` is the linear inequality
//! `2(c̄ − ā)·ȳ ≤ c̄·c̄ − ā·ā` (§5, Figure 3), so by Proposition 1:
//!
//! * `{ȳ : f(ȳ) = 1}` is the union over pairs `(A ⊆ S⁺, |A| = maj;
//!   B ⊆ S⁻, |B| = min)` of the **closed** polyhedra
//!   `{ȳ : d(ȳ,ā) ≤ d(ȳ,c̄) ∀ā∈A, c̄∈S⁻\B}`;
//! * `{ȳ : f(ȳ) = 0}` is the union of the corresponding **open** polyhedra
//!   with the roles of `S⁺`/`S⁻` swapped and strict inequalities.
//!
//! Taking `|B| = min` exactly (instead of ≤ min) is WLOG: growing `B` only
//! removes constraints. The number of polyhedra is `O(|S⁺∪S⁻|^{k})` —
//! polynomial for fixed k, which is where the `n^{O(k)}` running time of
//! Propositions 3 and Theorem 2 comes from.

use knn_num::Field;
use knn_qp::Polyhedron;
use knn_space::{ContinuousDataset, Label, OddK};

/// Iterator over all size-`r` index subsets of `0..n` (lexicographic).
pub(crate) struct Combinations {
    n: usize,
    idx: Vec<usize>,
    done: bool,
}

impl Combinations {
    pub(crate) fn new(n: usize, r: usize) -> Self {
        Combinations { n, idx: (0..r).collect(), done: r > n }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.idx.clone();
        let r = self.idx.len();
        if r == 0 {
            self.done = true;
            return Some(current);
        }
        // Advance to the next combination.
        let mut i = r;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] != i + self.n - r {
                self.idx[i] += 1;
                for j in i + 1..r {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

/// The halfspace row for `d₂(ȳ, ā) (≤ or <) d₂(ȳ, c̄)`:
/// coefficients `2(c̄ − ā)` and right-hand side `c̄·c̄ − ā·ā`.
pub fn bisector_row<F: Field>(a: &[F], c: &[F]) -> (Vec<F>, F) {
    let coeffs: Vec<F> = a
        .iter()
        .zip(c)
        .map(|(ai, ci)| {
            let d = ci.clone() - ai.clone();
            d.clone() + d
        })
        .collect();
    let rhs = knn_num::field::norm_sq(c) - knn_num::field::norm_sq(a);
    (coeffs, rhs)
}

/// Enumerates the Prop 1 polyhedra of the region `{ȳ : f(ȳ) = target}`.
///
/// Each yielded [`Polyhedron`] is the *closure*; for `target = Negative` the
/// true region piece is its strict interior (w.r.t. the inequality rows), and
/// callers must use strict feasibility / the closure argument of Theorem 2.
pub fn region_polyhedra<'a, F: Field>(
    ds: &'a ContinuousDataset<F>,
    k: OddK,
    target: Label,
) -> impl Iterator<Item = Polyhedron<F>> + 'a {
    region_polyhedra_with_anchors(ds, k, target).map(|(p, _)| p)
}

/// Like [`region_polyhedra`], additionally yielding the dataset indices of
/// the witness set `A` — useful as warm starts for projection QPs (any point
/// of `A` lies in the **closed** polyhedron when `A` is a singleton, and is a
/// candidate feasible point in general).
pub fn region_polyhedra_with_anchors<'a, F: Field>(
    ds: &'a ContinuousDataset<F>,
    k: OddK,
    target: Label,
) -> impl Iterator<Item = (Polyhedron<F>, Vec<usize>)> + 'a {
    let (same, other) = match target {
        Label::Positive => (ds.indices_of(Label::Positive), ds.indices_of(Label::Negative)),
        Label::Negative => (ds.indices_of(Label::Negative), ds.indices_of(Label::Positive)),
    };
    let maj = k.majority();
    let min_sz = k.minority().min(other.len());
    let n = ds.dim();
    let a_choices: Vec<Vec<usize>> = Combinations::new(same.len(), maj).collect();
    let b_choices: Vec<Vec<usize>> = Combinations::new(other.len(), min_sz).collect();
    a_choices.into_iter().flat_map(move |a_sel| {
        let same = same.clone();
        let other = other.clone();
        let b_choices = b_choices.clone();
        b_choices.into_iter().map(move |b_sel| {
            let mut poly = Polyhedron::whole_space(n);
            for &ai in &a_sel {
                let a_pt = ds.point(same[ai]);
                for (oj, &o) in other.iter().enumerate() {
                    if b_sel.contains(&oj) {
                        continue;
                    }
                    let c_pt = ds.point(o);
                    let (row, rhs) = bisector_row(a_pt, c_pt);
                    poly.add_le(row, rhs);
                }
            }
            let anchors: Vec<usize> = a_sel.iter().map(|&ai| same[ai]).collect();
            (poly, anchors)
        })
    })
}

/// The Prop 1 decomposition of **both** decision regions, materialized once
/// and shared across queries.
///
/// Enumerating the polyhedra costs `O(n^k)` bisector-row constructions per
/// query; a batch of q queries over one immutable dataset repeats that work
/// q times. `RegionCache::build` pays it once, and the `*_in` variants of the
/// ℓ2 abductive / counterfactual engines then answer every query against the
/// shared slices (the polyhedra are never mutated — fixed coordinates are
/// applied at the LP level via [`Polyhedron::feasible_point_fixed`]).
#[derive(Clone, Debug)]
pub struct RegionCache<F> {
    k: OddK,
    positive: Vec<Polyhedron<F>>,
    negative: Vec<Polyhedron<F>>,
}

impl<F: Field> RegionCache<F> {
    /// Materializes the decomposition for `f^k` over `ds`.
    pub fn build(ds: &ContinuousDataset<F>, k: OddK) -> Self {
        RegionCache {
            k,
            positive: region_polyhedra(ds, k, Label::Positive).collect(),
            negative: region_polyhedra(ds, k, Label::Negative).collect(),
        }
    }

    /// The `k` this cache was built for.
    pub fn k(&self) -> OddK {
        self.k
    }

    /// The polyhedra whose union (closed for `Positive`, strict interiors for
    /// `Negative`) is the `target` decision region.
    pub fn polyhedra(&self, target: Label) -> &[Polyhedron<F>] {
        match target {
            Label::Positive => &self.positive,
            Label::Negative => &self.negative,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;
    use knn_space::LpMetric;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn combinations_enumeration() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3],]
        );
        assert_eq!(Combinations::new(3, 0).collect::<Vec<_>>(), vec![Vec::<usize>::new()]);
        assert_eq!(Combinations::new(2, 3).count(), 0);
        assert_eq!(Combinations::new(5, 5).count(), 1);
    }

    #[test]
    fn bisector_is_equidistance_boundary() {
        let a = [Rat::from_int(0i64), Rat::from_int(0i64)];
        let c = [Rat::from_int(2i64), Rat::from_int(0i64)];
        let (row, rhs) = bisector_row(&a, &c);
        // Midpoint (1, 0) lies exactly on the hyperplane.
        let mid = [Rat::one(), Rat::zero()];
        assert_eq!(knn_num::field::dot(&row, &mid), rhs);
        // Points closer to a satisfy the ≤.
        let near_a = [Rat::frac(1, 2), Rat::one()];
        assert!(knn_num::field::dot(&row, &near_a) < rhs);
    }

    /// Membership in ∪(polyhedra) must coincide with the classifier's regions.
    #[test]
    fn region_union_matches_classifier() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let dim = rng.gen_range(1..3usize);
            let n_pos = rng.gen_range(1..4usize);
            let n_neg = rng.gen_range(1..4usize);
            let k = OddK::of(if (n_pos + n_neg) >= 3 && rng.gen_bool(0.4) { 3 } else { 1 });
            if n_pos + n_neg < k.get() as usize {
                continue;
            }
            let rnd_pt = |rng: &mut StdRng| -> Vec<Rat> {
                (0..dim).map(|_| Rat::from_int(rng.gen_range(-3i64..4))).collect()
            };
            let pos: Vec<Vec<Rat>> = (0..n_pos).map(|_| rnd_pt(&mut rng)).collect();
            let neg: Vec<Vec<Rat>> = (0..n_neg).map(|_| rnd_pt(&mut rng)).collect();
            let ds = ContinuousDataset::from_sets(pos, neg);
            let knn = crate::ContinuousKnn::new(&ds, LpMetric::L2, k);
            for _ in 0..10 {
                let q = rnd_pt(&mut rng);
                let label = knn.classify(&q);
                let in_pos_union =
                    region_polyhedra(&ds, k, Label::Positive).any(|p| p.contains(&q));
                let in_neg_union =
                    region_polyhedra(&ds, k, Label::Negative).any(|p| p.contains_strictly(&q));
                assert_eq!(
                    label == Label::Positive,
                    in_pos_union,
                    "positive region mismatch at {q:?}"
                );
                assert_eq!(
                    label == Label::Negative,
                    in_neg_union,
                    "negative region mismatch at {q:?}"
                );
            }
        }
    }
}
