//! The Proposition 1 decomposition of the classifier's decision regions into
//! polyhedra, for the ℓ2 metric — eager and lazy.
//!
//! Under ℓ2, `d(ȳ, ā) ≤ d(ȳ, c̄)` is the linear inequality
//! `2(c̄ − ā)·ȳ ≤ c̄·c̄ − ā·ā` (§5, Figure 3), so by Proposition 1:
//!
//! * `{ȳ : f(ȳ) = 1}` is the union over pairs `(A ⊆ S⁺, |A| = maj;
//!   B ⊆ S⁻, |B| = min)` of the **closed** polyhedra
//!   `{ȳ : d(ȳ,ā) ≤ d(ȳ,c̄) ∀ā∈A, c̄∈S⁻\B}`;
//! * `{ȳ : f(ȳ) = 0}` is the union of the corresponding **open** polyhedra
//!   with the roles of `S⁺`/`S⁻` swapped and strict inequalities.
//!
//! Taking `|B| = min` exactly (instead of ≤ min) is WLOG: growing `B` only
//! removes constraints. The number of polyhedra is `O(|S⁺∪S⁻|^{k})` —
//! polynomial for fixed k, which is where the `n^{O(k)}` running time of
//! Propositions 3 and Theorem 2 comes from.
//!
//! Materializing the whole decomposition up front ([`RegionCache::build`]) is
//! `O(n^k)` time *and memory* before the first query can be answered, which
//! is the k ≥ 5 blocker at serving sizes. [`RegionStream`] therefore
//! enumerates the decomposition lazily:
//!
//! * **nearest-anchor-first**: for a query point `x̄`, anchor sets `A` are
//!   emitted in ascending `Σ_{ā∈A} d²(x̄, ā)`, so the region actually
//!   containing (or nearest to) the answer is reached early and feasibility /
//!   projection loops short-circuit after a handful of LPs;
//! * **pruning**: provably-empty polyhedra (anti-parallel contradictory
//!   bisector pairs, strict-empty degenerate rows) and dominated `(A, B)`
//!   pairs (a region contained in another region of the same union) are
//!   skipped before any LP sees them — see [`prune_region`];
//! * **memoization**: visited regions can be recorded in a [`RegionMemo`]
//!   (bounded, insert-only), so warm queries skip the row construction —
//!   [`LazyRegions`] is the `Arc`-shareable bundle the batch engine keeps in
//!   its artifact store.
//!
//! The eager [`RegionCache`] remains as the differential-testing oracle; its
//! [`RegionCache::ordered_pruned`] view applies the *same* ordering and
//! pruning decisions as the stream, so the two paths are byte-compatible by
//! construction (property-tested in `tests/prop_regions_lazy.rs`).

use knn_num::field::norm_sq;
use knn_num::Field;
use knn_qp::Polyhedron;
use knn_space::{ContinuousDataset, Label, OddK};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Live counters of lazy-region enumeration activity: how many polyhedra
/// the streams actually yielded, and how many each prune rule skipped.
///
/// Counters are plain relaxed atomics — shareable across every stream of an
/// engine (and across its artifact-store generations) without this crate
/// depending on any telemetry machinery. They observe the enumeration and
/// never influence it: the yielded sequence is identical with or without a
/// counter attached.
#[derive(Debug, Default)]
pub struct RegionCounters {
    yields: AtomicU64,
    pruned_empty: AtomicU64,
    pruned_dominated: AtomicU64,
    memo_pruned: AtomicU64,
}

impl RegionCounters {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> RegionCountersSnapshot {
        RegionCountersSnapshot {
            yields: self.yields.load(Ordering::Relaxed),
            pruned_empty: self.pruned_empty.load(Ordering::Relaxed),
            pruned_dominated: self.pruned_dominated.load(Ordering::Relaxed),
            memo_pruned: self.memo_pruned.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of [`RegionCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegionCountersSnapshot {
    /// Polyhedra yielded to callers (memoized re-yields included).
    pub yields: u64,
    /// Regions skipped as provably empty ([`PruneReason::Empty`]).
    pub pruned_empty: u64,
    /// Regions skipped as dominated ([`PruneReason::Dominated`]).
    pub pruned_dominated: u64,
    /// Regions skipped via a memoized prune verdict (rule unknown — the
    /// memo stores the verdict, not the reason).
    pub memo_pruned: u64,
}

/// Iterator over all size-`r` index subsets of `0..n` (lexicographic).
pub struct Combinations {
    n: usize,
    idx: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// All `r`-subsets of `0..n`, in lexicographic order.
    pub fn new(n: usize, r: usize) -> Self {
        Combinations { n, idx: (0..r).collect(), done: r > n }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.idx.clone();
        let r = self.idx.len();
        if r == 0 {
            self.done = true;
            return Some(current);
        }
        // Advance to the next combination.
        let mut i = r;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.idx[i] != i + self.n - r {
                self.idx[i] += 1;
                for j in i + 1..r {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

/// The halfspace row for `d₂(ȳ, ā) (≤ or <) d₂(ȳ, c̄)`:
/// coefficients `2(c̄ − ā)` and right-hand side `c̄·c̄ − ā·ā`.
pub fn bisector_row<F: Field>(a: &[F], c: &[F]) -> (Vec<F>, F) {
    let coeffs: Vec<F> = a
        .iter()
        .zip(c)
        .map(|(ai, ci)| {
            let d = ci.clone() - ai.clone();
            d.clone() + d
        })
        .collect();
    let rhs = norm_sq(c) - norm_sq(a);
    (coeffs, rhs)
}

/// The identity of one Proposition 1 region: the witness set `A` and the
/// excluded minority `B`, both as ascending dataset indices.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionSpec {
    /// Dataset indices of `A` (the `maj` target-class witnesses), ascending.
    pub anchors: Vec<usize>,
    /// Dataset indices of `B` (the `min` excluded opposite-class points),
    /// ascending.
    pub excluded: Vec<usize>,
}

/// `Σ_{ā∈A} d²(x̄, ā)`, accumulated in ascending-index order so the float
/// value is identical however the anchor set was produced — the ordering key
/// shared by [`RegionStream`] and [`RegionCache::ordered_pruned`].
pub fn anchor_key<F: Field>(ds: &ContinuousDataset<F>, x: &[F], anchors: &[usize]) -> F {
    let mut sum = F::zero();
    for &a in anchors {
        let p = ds.point(a);
        for (xi, pi) in x.iter().zip(p) {
            let d = xi.clone() - pi.clone();
            sum = sum + d.clone() * d;
        }
    }
    sum
}

/// The bisector rows of the region `(anchors, B)` where `B` is given as a
/// boolean mask over `others` — one flag lookup per opposite-class point
/// instead of the former `O(|B|)` membership scan per row.
fn region_rows<F: Field>(
    ds: &ContinuousDataset<F>,
    anchors: &[usize],
    others: &[usize],
    excluded_mask: &[bool],
) -> Vec<(Vec<F>, F)> {
    let mut rows = Vec::with_capacity(anchors.len() * others.len());
    for &a in anchors {
        let a_pt = ds.point(a);
        for (oj, &o) in others.iter().enumerate() {
            if excluded_mask[oj] {
                continue;
            }
            rows.push(bisector_row(a_pt, ds.point(o)));
        }
    }
    rows
}

fn polyhedron_from_rows<F: Field>(dim: usize, rows: Vec<(Vec<F>, F)>) -> Polyhedron<F> {
    let mut poly = Polyhedron::whole_space(dim);
    for (row, rhs) in rows {
        poly.add_le(row, rhs);
    }
    poly
}

/// If `v = λ·u` for a scalar `λ` (with `u ≠ 0`), returns `λ`.
fn scalar_multiple<F: Field>(u: &[F], v: &[F]) -> Option<F> {
    let pivot = u.iter().position(|c| !c.is_zero())?;
    let lambda = v[pivot].clone() / u[pivot].clone();
    for (ui, vi) in u.iter().zip(v) {
        if !(vi.clone() - lambda.clone() * ui.clone()).is_zero() {
            return None;
        }
    }
    Some(lambda)
}

/// `{ȳ : g_in·ȳ ≤ h_in} ⊆ {ȳ : g_out·ȳ ≤ h_out}` for bisector rows
/// (`H(ā, c̄_in) ⊆ H(ā, c̄_out)`): holds iff the outer row is a positive
/// scaling of the inner row with a no-smaller right-hand side (`c̄_out`
/// behind `c̄_in` on the same ray from `ā`); positive scaling preserves
/// strictness, so the same condition certifies the open-halfspace
/// implication — *except* the degenerate `c̄_out = ā` row (`g_out = 0`,
/// `h_out = 0`), which is vacuous closed (`0 ≤ 0`) but empty open (`0 < 0`):
/// claiming the implication there would let a dominated region be "covered"
/// by one whose interior the zero row kills.
fn halfspace_row_implies<F: Field>(
    g_in: &[F],
    h_in: &F,
    g_out: &[F],
    h_out: &F,
    strict: bool,
) -> bool {
    if g_out.iter().all(|c| c.is_zero()) {
        return !strict && !h_out.is_negative();
    }
    if g_in.iter().all(|c| c.is_zero()) {
        // c̄_in = ā: the inner halfspace is the whole space, the outer is not.
        return false;
    }
    match scalar_multiple(g_in, g_out) {
        Some(lambda) if lambda.is_positive() => {
            !(lambda * h_in.clone() - h_out.clone()).is_positive() // h_out ≥ λ·h_in
        }
        _ => false,
    }
}

/// Why the pruner skipped a region. Soundness is property-tested: every
/// skipped polyhedron is LP-verified empty (or contained in its dominator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PruneReason {
    /// The polyhedron (closed, or its interior when `strict`) is empty: two
    /// anti-parallel bisector rows contradict each other, or a degenerate
    /// zero row (`ā = c̄`) kills the interior.
    Empty,
    /// The region is contained in the carried region of the same union
    /// (same `A`, with one excluded index swapped), so dropping it cannot
    /// change the union.
    Dominated(RegionSpec),
}

/// The cheap pre-LP emptiness / dominance test for the region
/// `(anchors, excluded)` of the `target` decision region. `None` means the
/// region must be kept. Decisions depend only on the dataset and the region
/// identity — never on the query — so lazy and eager paths agree.
pub fn prune_region<F: Field>(
    ds: &ContinuousDataset<F>,
    target: Label,
    anchors: &[usize],
    excluded: &[usize],
) -> Option<PruneReason> {
    let others = ds.indices_of(target.flip());
    let mut mask = vec![false; others.len()];
    for (oj, &o) in others.iter().enumerate() {
        if excluded.binary_search(&o).is_ok() {
            mask[oj] = true;
        }
    }
    let rows = region_rows(ds, anchors, &others, &mask);
    prune_region_masked(ds, anchors, &others, &mask, excluded, target == Label::Negative, &rows)
}

/// [`prune_region`] against precomputed opposite-class indices and mask — the
/// enumeration-loop fast path.
fn prune_region_masked<F: Field>(
    ds: &ContinuousDataset<F>,
    anchors: &[usize],
    others: &[usize],
    excluded_mask: &[bool],
    excluded: &[usize],
    strict: bool,
    rows: &[(Vec<F>, F)],
) -> Option<PruneReason> {
    if region_rows_infeasible(rows, strict) {
        return Some(PruneReason::Empty);
    }
    dominated_by(ds, anchors, others, excluded_mask, excluded, strict, rows)
        .map(PruneReason::Dominated)
}

/// Pairwise-bisector infeasibility: rows `g·y ≤ h` and `g′·y ≤ h′` with
/// `g′ = −λg` (λ > 0) are jointly infeasible iff `h′ < −λh` (for the open
/// interior, iff `h′ ≤ −λh`); a zero row `0·y ≤ 0` (duplicate point across
/// classes) is vacuous closed but kills the interior.
fn region_rows_infeasible<F: Field>(rows: &[(Vec<F>, F)], strict: bool) -> bool {
    for (g, h) in rows {
        if g.iter().all(|c| c.is_zero()) {
            // `0·y (≤ or <) h`.
            if h.is_negative() || (strict && !h.is_positive()) {
                return true;
            }
        }
    }
    for i in 0..rows.len() {
        let (gi, hi) = &rows[i];
        if gi.iter().all(|c| c.is_zero()) {
            continue;
        }
        for (gj, hj) in rows.iter().skip(i + 1) {
            if let Some(lambda) = scalar_multiple(gi, gj) {
                if lambda.is_negative() {
                    // gj = λ·gi with λ < 0: the two halfspaces face away from
                    // each other; compatible iff hj ≥ λ·hi.
                    let slack = hj.clone() - lambda * hi.clone();
                    if slack.is_negative() || (strict && !slack.is_positive()) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Dominated `(A, B)` pairs: if some excluded `c̄_out ∈ B` and kept
/// `c̄_in ∉ B` satisfy `H(ā, c̄_in) ⊆ H(ā, c̄_out)` for **every** anchor
/// (in the region's own closed/strict semantics), then swapping them can
/// only grow the polyhedron, so the region is contained in the swapped one
/// and is redundant in the union. When the two polyhedra are identical
/// (duplicate opposite-class points), the smaller swapped index is the
/// canonical survivor.
fn dominated_by<F: Field>(
    ds: &ContinuousDataset<F>,
    anchors: &[usize],
    others: &[usize],
    excluded_mask: &[bool],
    excluded: &[usize],
    strict: bool,
    rows: &[(Vec<F>, F)],
) -> Option<RegionSpec> {
    // `rows` is the region's own row matrix (anchor-major, kept-`c̄` minor —
    // the [`region_rows`] layout), so the kept side of every implication is
    // already built; only the `|B|·maj` excluded-side rows are constructed
    // here.
    let mut kept_seq = vec![usize::MAX; others.len()];
    let mut kept_count = 0;
    for (oj, seq) in kept_seq.iter_mut().enumerate() {
        if !excluded_mask[oj] {
            *seq = kept_count;
            kept_count += 1;
        }
    }
    for &c_out in excluded {
        let c_out_pt = ds.point(c_out);
        let out_rows: Vec<(Vec<F>, F)> =
            anchors.iter().map(|&a| bisector_row(ds.point(a), c_out_pt)).collect();
        for (oj, &c_in) in others.iter().enumerate() {
            if excluded_mask[oj] {
                continue;
            }
            let in_row = |ai: usize| &rows[ai * kept_count + kept_seq[oj]];
            let forward = (0..anchors.len()).all(|ai| {
                let (g_in, h_in) = in_row(ai);
                let (g_out, h_out) = &out_rows[ai];
                halfspace_row_implies(g_in, h_in, g_out, h_out, strict)
            });
            if !forward {
                continue;
            }
            let backward = (0..anchors.len()).all(|ai| {
                let (g_out, h_out) = in_row(ai);
                let (g_in, h_in) = &out_rows[ai];
                halfspace_row_implies(g_in, h_in, g_out, h_out, strict)
            });
            // Strict domination always prunes; an identical swap prunes only
            // toward the lexicographically smaller survivor (no cycles).
            if !backward || c_in < c_out {
                let mut swapped: Vec<usize> =
                    excluded.iter().copied().filter(|&c| c != c_out).collect();
                swapped.push(c_in);
                swapped.sort_unstable();
                return Some(RegionSpec { anchors: anchors.to_vec(), excluded: swapped });
            }
        }
    }
    None
}

/// A bounded, insert-only memo of visited regions, shared across queries and
/// worker threads. Entries record either the constructed polyhedron or the
/// prune verdict, so warm enumerations skip both the row construction and
/// the prune test. Once `cap` entries are stored, further inserts are
/// dropped (lookups still hit), bounding memory at roughly the cost of an
/// eager cache over the visited prefix.
#[derive(Debug)]
pub struct RegionMemo<F> {
    // RwLock, not Mutex: warm enumerations are lookup-only and every engine
    // worker shares the per-k memo, so reads must not serialize each other.
    entries: RwLock<HashMap<RegionSpec, MemoEntry<F>>>,
    cap: usize,
    // Estimated heap bytes of the retained entries, maintained under the
    // insert write lock (entries are insert-only, so no decrements). Kept as
    // a running total so the resource gauges never iterate the map.
    bytes: AtomicU64,
}

#[derive(Clone, Debug)]
enum MemoEntry<F> {
    Pruned,
    Poly(Arc<Polyhedron<F>>),
}

impl<F: Field> RegionMemo<F> {
    /// An empty memo holding at most `cap` regions.
    pub fn new(cap: usize) -> Self {
        RegionMemo { entries: RwLock::new(HashMap::new()), cap, bytes: AtomicU64::new(0) }
    }

    fn get(&self, spec: &RegionSpec) -> Option<MemoEntry<F>> {
        self.entries.read().unwrap().get(spec).cloned()
    }

    fn insert(&self, spec: RegionSpec, entry: MemoEntry<F>) {
        let mut map = self.entries.write().unwrap();
        if map.len() < self.cap {
            let b = Self::entry_bytes(&spec, &entry);
            if map.insert(spec, entry).is_none() {
                self.bytes.fetch_add(b as u64, Ordering::Relaxed);
            }
        }
    }

    /// Coarse per-entry heap estimate: the spec's index vectors, the map
    /// entry itself, and — for retained polyhedra — rows of `dim + 1`
    /// field elements each (inline size of `F`; heap-backed fields like
    /// `Rat` undercount, which the gauges document as acceptable).
    fn entry_bytes(spec: &RegionSpec, entry: &MemoEntry<F>) -> usize {
        let spec_b = (spec.anchors.len() + spec.excluded.len()) * std::mem::size_of::<usize>();
        let entry_b = match entry {
            MemoEntry::Pruned => 0,
            MemoEntry::Poly(p) => {
                let row = (p.dim() + 1) * std::mem::size_of::<F>() + 24;
                std::mem::size_of::<Polyhedron<F>>() + (p.ineqs().len() + p.eqs().len()) * row
            }
        };
        spec_b + entry_b + std::mem::size_of::<(RegionSpec, MemoEntry<F>)>() + 16
    }

    /// Number of memoized regions (pruned verdicts included).
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// True iff nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The insert bound this memo was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Estimated heap bytes of the retained entries (see
    /// [`RegionMemo::entry_bytes`] for the estimation rules).
    pub fn approx_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed) as usize
    }
}

/// Lazy, pruned enumerator of the Prop 1 polyhedra of one decision region.
///
/// Yields `(polyhedron, spec)` pairs. With a query point
/// ([`RegionStream::for_query`]) the anchor sets are ordered
/// nearest-anchor-first (ties broken lexicographically, i.e. in canonical
/// order) and the pruner drops provably-empty and dominated regions before
/// any LP runs. Without one ([`RegionStream::canonical`]) the order is the
/// eager cache's lexicographic order and nothing is pruned, which is the
/// configuration the differential tests compare set-for-set against
/// [`RegionCache::build`].
///
/// Memory is `O(|A-sets|)` (the ordered anchor list) plus whatever the
/// optional memo retains — never the `O(n^k)` of the materialized cache.
pub struct RegionStream<'a, F: Field> {
    ds: &'a ContinuousDataset<F>,
    others: Vec<usize>,
    min_sz: usize,
    strict: bool,
    prune: bool,
    memo: Option<&'a RegionMemo<F>>,
    a_sets: AnchorOrder,
    a_pos: usize,
    cur: Option<(Vec<usize>, Combinations)>,
    scratch_mask: Vec<bool>,
    counters: Option<&'a RegionCounters>,
}

/// The emission order of anchor sets for one `(dataset, k, target, query)`
/// tuple, shareable across streams. Greedy-deletion and hitting-set loops
/// re-check the same point many times; computing this once per query point
/// (instead of once per check) removes the `Θ(C(n, maj) log C(n, maj))`
/// floor those loops would otherwise pay on every iteration.
pub type AnchorOrder = Arc<Vec<Vec<usize>>>;

/// The anchor sets of the `target` region in emission order: canonical
/// (lexicographic) without a query point, nearest-anchor-first (ascending
/// [`anchor_key`], canonical ties) with one.
pub fn anchor_order<F: Field>(
    ds: &ContinuousDataset<F>,
    k: OddK,
    target: Label,
    query: Option<&[F]>,
) -> AnchorOrder {
    let same = ds.indices_of(target);
    let maj = k.majority();
    let mut a_sets: Vec<Vec<usize>> = Combinations::new(same.len(), maj)
        .map(|positions| positions.iter().map(|&i| same[i]).collect())
        .collect();
    if let Some(x) = query {
        let keys: Vec<F> = a_sets.iter().map(|a| anchor_key(ds, x, a)).collect();
        let mut order: Vec<usize> = (0..a_sets.len()).collect();
        order.sort_by(|&i, &j| {
            keys[i].partial_cmp(&keys[j]).unwrap_or(std::cmp::Ordering::Equal).then(i.cmp(&j))
        });
        a_sets = order.into_iter().map(|i| std::mem::take(&mut a_sets[i])).collect();
    }
    Arc::new(a_sets)
}

impl<'a, F: Field> RegionStream<'a, F> {
    /// The fully-general constructor: `query` turns on nearest-anchor-first
    /// ordering, `prune` the pre-LP pruner, `memo` the visited-region memo.
    pub fn new(
        ds: &'a ContinuousDataset<F>,
        k: OddK,
        target: Label,
        query: Option<&[F]>,
        prune: bool,
        memo: Option<&'a RegionMemo<F>>,
    ) -> Self {
        let order = anchor_order(ds, k, target, query);
        RegionStream::with_order(ds, k, target, order, prune, memo)
    }

    /// [`RegionStream::new`] over a precomputed [`AnchorOrder`] — the repeat
    /// callers' path (greedy / hitting-set loops over one query point).
    pub fn with_order(
        ds: &'a ContinuousDataset<F>,
        k: OddK,
        target: Label,
        order: AnchorOrder,
        prune: bool,
        memo: Option<&'a RegionMemo<F>>,
    ) -> Self {
        // Memo entries encode prune verdicts, so a memo shared between
        // pruned and unpruned streams would corrupt both: an unpruned
        // stream would skip memoized `Pruned` regions, and a pruned one
        // would emit regions an unpruned warm-up materialized.
        assert!(memo.is_none() || prune, "a region memo requires pruning enabled");
        let others = ds.indices_of(target.flip());
        let min_sz = k.minority().min(others.len());
        let scratch_mask = vec![false; others.len()];
        RegionStream {
            ds,
            others,
            min_sz,
            strict: target == Label::Negative,
            prune,
            memo,
            a_sets: order,
            a_pos: 0,
            cur: None,
            scratch_mask,
            counters: None,
        }
    }

    /// Attaches activity counters (see [`RegionCounters`]); purely
    /// observational — the yielded sequence is unchanged.
    pub fn counting(mut self, counters: &'a RegionCounters) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Canonical (lexicographic) order, unpruned: the eager oracle's
    /// enumeration, streamed.
    pub fn canonical(ds: &'a ContinuousDataset<F>, k: OddK, target: Label) -> Self {
        RegionStream::new(ds, k, target, None, false, None)
    }

    /// Nearest-anchor-first, pruned enumeration for the query point `x` —
    /// the serving path.
    pub fn for_query(
        ds: &'a ContinuousDataset<F>,
        k: OddK,
        target: Label,
        x: &[F],
        memo: Option<&'a RegionMemo<F>>,
    ) -> Self {
        RegionStream::new(ds, k, target, Some(x), true, memo)
    }
}

impl<F: Field> Iterator for RegionStream<'_, F> {
    type Item = (Arc<Polyhedron<F>>, RegionSpec);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.cur.is_none() {
                let anchors = self.a_sets.get(self.a_pos)?.clone();
                self.a_pos += 1;
                self.cur = Some((anchors, Combinations::new(self.others.len(), self.min_sz)));
            }
            let (anchors, b_iter) = self.cur.as_mut().unwrap();
            let Some(b_positions) = b_iter.next() else {
                self.cur = None;
                continue;
            };
            self.scratch_mask.iter_mut().for_each(|m| *m = false);
            for &bj in &b_positions {
                self.scratch_mask[bj] = true;
            }
            let excluded: Vec<usize> = b_positions.iter().map(|&bj| self.others[bj]).collect();
            let spec = RegionSpec { anchors: anchors.clone(), excluded };
            if let Some(memo) = self.memo {
                match memo.get(&spec) {
                    Some(MemoEntry::Pruned) => {
                        if let Some(c) = self.counters {
                            c.memo_pruned.fetch_add(1, Ordering::Relaxed);
                        }
                        continue;
                    }
                    Some(MemoEntry::Poly(p)) => {
                        if let Some(c) = self.counters {
                            c.yields.fetch_add(1, Ordering::Relaxed);
                        }
                        crate::tally::bump_region_yields();
                        return Some((p, spec));
                    }
                    None => {}
                }
            }
            // Rows are built once and shared by the pruner and the kept
            // polyhedron — row construction dominates the cold pass.
            let rows = region_rows(self.ds, &spec.anchors, &self.others, &self.scratch_mask);
            if self.prune {
                if let Some(reason) = prune_region_masked(
                    self.ds,
                    &spec.anchors,
                    &self.others,
                    &self.scratch_mask,
                    &spec.excluded,
                    self.strict,
                    &rows,
                ) {
                    if let Some(c) = self.counters {
                        match reason {
                            PruneReason::Empty => c.pruned_empty.fetch_add(1, Ordering::Relaxed),
                            PruneReason::Dominated(_) => {
                                c.pruned_dominated.fetch_add(1, Ordering::Relaxed)
                            }
                        };
                    }
                    if let Some(memo) = self.memo {
                        memo.insert(spec, MemoEntry::Pruned);
                    }
                    continue;
                }
            }
            let poly = Arc::new(polyhedron_from_rows(self.ds.dim(), rows));
            if let Some(memo) = self.memo {
                memo.insert(spec.clone(), MemoEntry::Poly(poly.clone()));
            }
            if let Some(c) = self.counters {
                c.yields.fetch_add(1, Ordering::Relaxed);
            }
            crate::tally::bump_region_yields();
            return Some((poly, spec));
        }
    }
}

/// The `Arc`-shareable lazy-region bundle the batch engine memoizes behind
/// its artifact store: an owned copy of the dataset plus one [`RegionMemo`]
/// per decision region. Unlike [`RegionCache`], construction is `O(n)`; the
/// decomposition is enumerated (and selectively retained) only as queries
/// visit it.
#[derive(Debug)]
pub struct LazyRegions<F> {
    ds: ContinuousDataset<F>,
    k: OddK,
    positive: RegionMemo<F>,
    negative: RegionMemo<F>,
    counters: Arc<RegionCounters>,
}

impl<F: Field> LazyRegions<F> {
    /// Default bound on memoized regions per decision region.
    pub const DEFAULT_MEMO_CAP: usize = 1 << 16;

    /// A lazy view of the `f^k` decomposition over `ds`.
    pub fn new(ds: &ContinuousDataset<F>, k: OddK) -> Self {
        Self::with_memo_cap(ds, k, Self::DEFAULT_MEMO_CAP)
    }

    /// [`LazyRegions::new`] with an explicit memo bound (`0` disables
    /// memoization entirely).
    pub fn with_memo_cap(ds: &ContinuousDataset<F>, k: OddK, cap: usize) -> Self {
        LazyRegions {
            ds: ds.clone(),
            k,
            positive: RegionMemo::new(cap),
            negative: RegionMemo::new(cap),
            counters: Arc::new(RegionCounters::default()),
        }
    }

    /// [`LazyRegions::new`], sharing an external [`RegionCounters`] — the
    /// engine hands every per-`k` view (across artifact-store generations)
    /// the same counters so prune/yield totals are engine-wide.
    pub fn with_counters(
        ds: &ContinuousDataset<F>,
        k: OddK,
        counters: Arc<RegionCounters>,
    ) -> Self {
        let mut lazy = Self::new(ds, k);
        lazy.counters = counters;
        lazy
    }

    /// The `k` this view was built for.
    pub fn k(&self) -> OddK {
        self.k
    }

    /// The activity counters every stream of this view records into.
    pub fn counters(&self) -> &Arc<RegionCounters> {
        &self.counters
    }

    /// A pruned, nearest-anchor-first, memoized stream of the `target`
    /// region's polyhedra for the query point `x`.
    pub fn stream(&self, target: Label, x: &[F]) -> RegionStream<'_, F> {
        let memo = match target {
            Label::Positive => &self.positive,
            Label::Negative => &self.negative,
        };
        RegionStream::for_query(&self.ds, self.k, target, x, Some(memo)).counting(&self.counters)
    }

    /// The nearest-anchor-first [`AnchorOrder`] for `x` — compute once, then
    /// feed to [`LazyRegions::stream_with_order`] for every re-check of the
    /// same point (greedy / hitting-set loops).
    pub fn order_for(&self, target: Label, x: &[F]) -> AnchorOrder {
        anchor_order(&self.ds, self.k, target, Some(x))
    }

    /// [`LazyRegions::stream`] over a precomputed [`AnchorOrder`].
    pub fn stream_with_order(&self, target: Label, order: AnchorOrder) -> RegionStream<'_, F> {
        let memo = match target {
            Label::Positive => &self.positive,
            Label::Negative => &self.negative,
        };
        RegionStream::with_order(&self.ds, self.k, target, order, true, Some(memo))
            .counting(&self.counters)
    }

    /// Total regions memoized so far (both decision regions, prune verdicts
    /// included) — observability for warm/cold diagnostics.
    pub fn memoized(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Combined insert bound of the two per-region memos (the denominator of
    /// the memo-fill gauge).
    pub fn memo_cap(&self) -> usize {
        self.positive.cap() + self.negative.cap()
    }

    /// Estimated heap bytes of the two memos alone (the `memo` component
    /// of the engine's byte gauges, reported separately from the artifact
    /// total so operators can see memo growth against its cap).
    pub fn memo_bytes(&self) -> usize {
        self.positive.approx_bytes() + self.negative.approx_bytes()
    }

    /// Estimated heap bytes: the owned dataset copy plus both memos.
    pub fn approx_bytes(&self) -> usize {
        self.ds.approx_bytes() + self.memo_bytes()
    }
}

/// Enumerates the Prop 1 polyhedra of the region `{ȳ : f(ȳ) = target}`, in
/// canonical order, unpruned.
///
/// Each yielded [`Polyhedron`] is the *closure*; for `target = Negative` the
/// true region piece is its strict interior (w.r.t. the inequality rows), and
/// callers must use strict feasibility / the closure argument of Theorem 2.
pub fn region_polyhedra<'a, F: Field>(
    ds: &'a ContinuousDataset<F>,
    k: OddK,
    target: Label,
) -> impl Iterator<Item = Polyhedron<F>> + 'a {
    RegionStream::canonical(ds, k, target)
        .map(|(p, _)| Arc::try_unwrap(p).unwrap_or_else(|a| (*a).clone()))
}

/// Like [`region_polyhedra`], additionally yielding the dataset indices of
/// the witness set `A` — useful as warm starts for projection QPs (any point
/// of `A` lies in the **closed** polyhedron when `A` is a singleton, and is a
/// candidate feasible point in general).
pub fn region_polyhedra_with_anchors<'a, F: Field>(
    ds: &'a ContinuousDataset<F>,
    k: OddK,
    target: Label,
) -> impl Iterator<Item = (Polyhedron<F>, Vec<usize>)> + 'a {
    RegionStream::canonical(ds, k, target)
        .map(|(p, spec)| (Arc::try_unwrap(p).unwrap_or_else(|a| (*a).clone()), spec.anchors))
}

/// The Prop 1 decomposition of **both** decision regions, materialized once.
///
/// This is the `O(n^k)`-memory eager construction: every polyhedron is built
/// before the first query can be answered. The serving path now runs on
/// [`LazyRegions`]; the cache remains as the differential-testing oracle,
/// and [`RegionCache::ordered_pruned`] replays the lazy path's ordering and
/// pruning over the materialized entries so the two stay byte-compatible.
#[derive(Clone, Debug)]
pub struct RegionCache<F> {
    k: OddK,
    positive: Vec<(Polyhedron<F>, RegionSpec)>,
    negative: Vec<(Polyhedron<F>, RegionSpec)>,
    /// Per-entry prune verdicts, parallel to `positive` / `negative`.
    /// Decisions are query-independent, so they are computed once here
    /// (reusing each entry's already-materialized rows) instead of on every
    /// [`RegionCache::ordered_pruned`] iteration.
    positive_pruned: Vec<bool>,
    negative_pruned: Vec<bool>,
}

impl<F: Field> RegionCache<F> {
    /// Materializes the decomposition for `f^k` over `ds`.
    pub fn build(ds: &ContinuousDataset<F>, k: OddK) -> Self {
        let collect = |target| -> (Vec<(Polyhedron<F>, RegionSpec)>, Vec<bool>) {
            let others = ds.indices_of(match target {
                Label::Positive => Label::Negative,
                Label::Negative => Label::Positive,
            });
            let strict = target == Label::Negative;
            let entries: Vec<(Polyhedron<F>, RegionSpec)> = RegionStream::canonical(ds, k, target)
                .map(|(p, spec)| (Arc::try_unwrap(p).unwrap_or_else(|a| (*a).clone()), spec))
                .collect();
            let pruned = entries
                .iter()
                .map(|(poly, spec)| {
                    if region_rows_infeasible(poly.ineqs(), strict) {
                        return true;
                    }
                    let mut mask = vec![false; others.len()];
                    for (oj, &o) in others.iter().enumerate() {
                        if spec.excluded.binary_search(&o).is_ok() {
                            mask[oj] = true;
                        }
                    }
                    dominated_by(
                        ds,
                        &spec.anchors,
                        &others,
                        &mask,
                        &spec.excluded,
                        strict,
                        poly.ineqs(),
                    )
                    .is_some()
                })
                .collect();
            (entries, pruned)
        };
        let (positive, positive_pruned) = collect(Label::Positive);
        let (negative, negative_pruned) = collect(Label::Negative);
        RegionCache { k, positive, negative, positive_pruned, negative_pruned }
    }

    /// The `k` this cache was built for.
    pub fn k(&self) -> OddK {
        self.k
    }

    /// The materialized `(polyhedron, spec)` entries of the `target` region,
    /// in canonical order.
    pub fn entries(&self, target: Label) -> &[(Polyhedron<F>, RegionSpec)] {
        match target {
            Label::Positive => &self.positive,
            Label::Negative => &self.negative,
        }
    }

    /// The polyhedra whose union (closed for `Positive`, strict interiors for
    /// `Negative`) is the `target` decision region, in canonical order.
    pub fn polyhedra(&self, target: Label) -> impl Iterator<Item = &Polyhedron<F>> {
        self.entries(target).iter().map(|(p, _)| p)
    }

    /// The `target` entries reordered nearest-anchor-first for `x` and
    /// filtered by [`prune_region`] — the eager twin of
    /// [`RegionStream::for_query`]. The ordering key, tie-breaking (stable
    /// sort ≡ canonical order within equal keys) and prune decisions are the
    /// same functions the stream uses, so iterating this view performs the
    /// LP sequence the lazy path performs.
    pub fn ordered_pruned<'s>(
        &'s self,
        ds: &ContinuousDataset<F>,
        target: Label,
        x: &[F],
    ) -> impl Iterator<Item = &'s Polyhedron<F>> + 's {
        self.ordered_pruned_with(target, self.query_order(ds, target, x))
    }

    /// The entry permutation [`RegionCache::ordered_pruned`] iterates for
    /// `x` — compute once per query point when a greedy / hitting-set loop
    /// re-checks the same point many times (the eager twin of
    /// [`anchor_order`]).
    pub fn query_order(&self, ds: &ContinuousDataset<F>, target: Label, x: &[F]) -> Vec<usize> {
        let entries = self.entries(target);
        let keys: Vec<F> = entries.iter().map(|(_, s)| anchor_key(ds, x, &s.anchors)).collect();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&i, &j| {
            keys[i].partial_cmp(&keys[j]).unwrap_or(std::cmp::Ordering::Equal).then(i.cmp(&j))
        });
        order
    }

    /// [`RegionCache::ordered_pruned`] over a precomputed
    /// [`RegionCache::query_order`] permutation.
    pub fn ordered_pruned_with(
        &self,
        target: Label,
        order: Vec<usize>,
    ) -> impl Iterator<Item = &Polyhedron<F>> + '_ {
        let entries = self.entries(target);
        let pruned = match target {
            Label::Positive => &self.positive_pruned,
            Label::Negative => &self.negative_pruned,
        };
        order.into_iter().filter(move |&i| !pruned[i]).map(move |i| &entries[i].0)
    }

    /// Estimated heap bytes of the materialized decomposition (same row
    /// estimation rules as [`RegionMemo`]).
    pub fn approx_bytes(&self) -> usize {
        let entry = |(p, s): &(Polyhedron<F>, RegionSpec)| {
            let row = (p.dim() + 1) * std::mem::size_of::<F>() + 24;
            std::mem::size_of::<(Polyhedron<F>, RegionSpec)>()
                + (p.ineqs().len() + p.eqs().len()) * row
                + (s.anchors.len() + s.excluded.len()) * std::mem::size_of::<usize>()
        };
        self.positive.iter().map(entry).sum::<usize>()
            + self.negative.iter().map(entry).sum::<usize>()
            + self.positive_pruned.len()
            + self.negative_pruned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::field::dot;
    use knn_num::Rat;
    use knn_space::LpMetric;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn combinations_enumeration() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3], vec![2, 3],]
        );
        assert_eq!(Combinations::new(3, 0).collect::<Vec<_>>(), vec![Vec::<usize>::new()]);
        assert_eq!(Combinations::new(2, 3).count(), 0);
        assert_eq!(Combinations::new(5, 5).count(), 1);
    }

    #[test]
    fn bisector_is_equidistance_boundary() {
        let a = [Rat::from_int(0i64), Rat::from_int(0i64)];
        let c = [Rat::from_int(2i64), Rat::from_int(0i64)];
        let (row, rhs) = bisector_row(&a, &c);
        // Midpoint (1, 0) lies exactly on the hyperplane.
        let mid = [Rat::one(), Rat::zero()];
        assert_eq!(dot(&row, &mid), rhs);
        // Points closer to a satisfy the ≤.
        let near_a = [Rat::frac(1, 2), Rat::one()];
        assert!(dot(&row, &near_a) < rhs);
    }

    /// Membership in ∪(polyhedra) must coincide with the classifier's regions.
    #[test]
    fn region_union_matches_classifier() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let dim = rng.gen_range(1..3usize);
            let n_pos = rng.gen_range(1..4usize);
            let n_neg = rng.gen_range(1..4usize);
            let k = OddK::of(if (n_pos + n_neg) >= 3 && rng.gen_bool(0.4) { 3 } else { 1 });
            if n_pos + n_neg < k.get() as usize {
                continue;
            }
            let rnd_pt = |rng: &mut StdRng| -> Vec<Rat> {
                (0..dim).map(|_| Rat::from_int(rng.gen_range(-3i64..4))).collect()
            };
            let pos: Vec<Vec<Rat>> = (0..n_pos).map(|_| rnd_pt(&mut rng)).collect();
            let neg: Vec<Vec<Rat>> = (0..n_neg).map(|_| rnd_pt(&mut rng)).collect();
            let ds = ContinuousDataset::from_sets(pos, neg);
            let knn = crate::ContinuousKnn::new(&ds, LpMetric::L2, k);
            for _ in 0..10 {
                let q = rnd_pt(&mut rng);
                let label = knn.classify(&q);
                let in_pos_union =
                    region_polyhedra(&ds, k, Label::Positive).any(|p| p.contains(&q));
                let in_neg_union =
                    region_polyhedra(&ds, k, Label::Negative).any(|p| p.contains_strictly(&q));
                assert_eq!(
                    label == Label::Positive,
                    in_pos_union,
                    "positive region mismatch at {q:?}"
                );
                assert_eq!(
                    label == Label::Negative,
                    in_neg_union,
                    "negative region mismatch at {q:?}"
                );
            }
        }
    }

    /// The stream in query mode must emit exactly the canonical region set
    /// (reordered), and its memo must hand back the identical polyhedra on a
    /// warm pass.
    #[test]
    fn stream_reorders_without_losing_regions() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![Rat::from_int(0i64)], vec![Rat::from_int(2i64)]],
            vec![vec![Rat::from_int(5i64)], vec![Rat::from_int(7i64)]],
        );
        let k = OddK::THREE;
        let canonical: Vec<RegionSpec> =
            RegionStream::canonical(&ds, k, Label::Positive).map(|(_, s)| s).collect();
        let x = [Rat::from_int(6i64)];
        let ordered: Vec<RegionSpec> =
            RegionStream::new(&ds, k, Label::Positive, Some(&x), false, None)
                .map(|(_, s)| s)
                .collect();
        let mut a = canonical.clone();
        let mut b = ordered.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "query ordering must permute, not change, the set");

        let memo = RegionMemo::new(1024);
        let cold: Vec<_> =
            RegionStream::new(&ds, k, Label::Positive, Some(&x), true, Some(&memo)).collect();
        let warm: Vec<_> =
            RegionStream::new(&ds, k, Label::Positive, Some(&x), true, Some(&memo)).collect();
        assert_eq!(cold.len(), warm.len());
        for ((p1, s1), (p2, s2)) in cold.iter().zip(&warm) {
            assert_eq!(s1, s2);
            assert!(Arc::ptr_eq(p1, p2), "warm pass must reuse the memoized polyhedron");
        }
    }

    /// Nearest-anchor-first: with k = 1 the first emitted region must be
    /// anchored at the class point nearest the query.
    #[test]
    fn query_ordering_is_nearest_first() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![Rat::from_int(-5i64)], vec![Rat::from_int(1i64)]],
            vec![vec![Rat::from_int(10i64)]],
        );
        let x = [Rat::from_int(0i64)];
        let first =
            RegionStream::for_query(&ds, OddK::ONE, Label::Positive, &x, None).next().unwrap().1;
        assert_eq!(first.anchors, vec![1], "anchor 1 (at +1) is nearest to x = 0");
    }

    /// A duplicate point shared by both classes makes the negative region's
    /// strict polyhedron empty — the pruner must catch the zero row.
    #[test]
    fn pruner_catches_duplicate_point_zero_row() {
        let p = vec![Rat::from_int(1i64), Rat::from_int(1i64)];
        let ds = ContinuousDataset::from_sets(vec![p.clone()], vec![p, vec![Rat::zero(); 2]]);
        // Negative target, k = 1: the region anchored at the duplicate
        // negative (index 1) with B = {} has the zero row from anchor vs the
        // positive duplicate → strict-empty.
        let reason = prune_region(&ds, Label::Negative, &[1], &[]);
        assert_eq!(reason, Some(PruneReason::Empty));
    }
}
