//! Property tests for the paper-facing semantics: the order-statistic
//! classifier vs the literal subset definition (§2), permutation
//! equivariance, sufficient-reason monotonicity, and SAT/brute counterfactual
//! agreement — all on arbitrary small discrete instances.

use knn_core::classifier::subset_definition_label;
use knn_core::counterfactual::hamming::closest_sat;
use knn_core::{brute, BooleanKnn, OddK};
use knn_space::{BitVec, BooleanDataset, Label};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Instance {
    dim: usize,
    points: Vec<(Vec<bool>, bool)>, // (bits, is_positive)
    x: Vec<bool>,
    k3: bool,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (2..=5usize).prop_flat_map(|dim| {
        (
            prop::collection::vec(
                (prop::collection::vec(any::<bool>(), dim), any::<bool>()),
                3..=7,
            ),
            prop::collection::vec(any::<bool>(), dim),
            any::<bool>(),
        )
            .prop_map(move |(points, x, k3)| Instance { dim, points, x, k3 })
    })
}

fn dataset(inst: &Instance) -> BooleanDataset {
    let mut ds = BooleanDataset::new(inst.dim);
    for (bits, pos) in &inst.points {
        ds.push(BitVec::from_bools(bits), if *pos { Label::Positive } else { Label::Negative });
    }
    ds
}

fn k_of(inst: &Instance) -> OddK {
    if inst.k3 && inst.points.len() >= 3 {
        OddK::THREE
    } else {
        OddK::ONE
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The order-statistic rule equals the paper's literal subset definition.
    #[test]
    fn classifier_matches_subset_definition(inst in instance_strategy()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        let x = BitVec::from_bools(&inst.x);
        let knn = BooleanKnn::new(&ds, k);
        let dists: Vec<(usize, Label)> =
            ds.iter().map(|(p, l)| (p.hamming(&x), l)).collect();
        prop_assert_eq!(knn.classify(&x), subset_definition_label(&dists, k));
    }

    /// Permuting the coordinates of every vector leaves the label unchanged.
    #[test]
    fn classification_is_permutation_equivariant(inst in instance_strategy(), seed in any::<u64>()) {
        let k = k_of(&inst);
        let perm = {
            // Fisher–Yates with a deterministic xorshift.
            let mut p: Vec<usize> = (0..inst.dim).collect();
            let mut s = seed | 1;
            for i in (1..p.len()).rev() {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                p.swap(i, (s as usize) % (i + 1));
            }
            p
        };
        let apply = |bits: &[bool]| -> Vec<bool> {
            (0..bits.len()).map(|i| bits[perm[i]]).collect()
        };
        let ds = dataset(&inst);
        let mut permuted = Instance { points: vec![], ..inst.clone() };
        for (bits, pos) in &inst.points {
            permuted.points.push((apply(bits), *pos));
        }
        permuted.x = apply(&inst.x);
        let dsp = dataset(&permuted);
        let a = BooleanKnn::new(&ds, k).classify(&BitVec::from_bools(&inst.x));
        let b = BooleanKnn::new(&dsp, k).classify(&BitVec::from_bools(&permuted.x));
        prop_assert_eq!(a, b);
    }

    /// Supersets of sufficient reasons are sufficient; subsets of
    /// insufficient sets are insufficient (monotonicity of Check-SR).
    #[test]
    fn sufficient_reasons_are_monotone(inst in instance_strategy(), mask in any::<u8>()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        let x = BitVec::from_bools(&inst.x);
        let knn = BooleanKnn::new(&ds, k);
        let set: Vec<usize> = (0..inst.dim).filter(|i| (mask >> i) & 1 == 1).collect();
        let sufficient = brute::is_sufficient_reason(&knn, &x, &set);
        if sufficient {
            let sup: Vec<usize> = (0..inst.dim).collect();
            prop_assert!(brute::is_sufficient_reason(&knn, &x, &sup));
        } else if !set.is_empty() {
            let sub = &set[..set.len() - 1];
            // Removing an element cannot make an insufficient set sufficient.
            prop_assert!(!brute::is_sufficient_reason(&knn, &x, sub)
                || brute::is_sufficient_reason(&knn, &x, &set));
        }
    }

    /// SAT counterfactuals match the exhaustive oracle on distance and both
    /// return genuinely flipped witnesses.
    #[test]
    fn sat_counterfactual_matches_brute(inst in instance_strategy()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        let x = BitVec::from_bools(&inst.x);
        let knn = BooleanKnn::new(&ds, k);
        let label = knn.classify(&x);
        match (closest_sat(&ds, k, &x), brute::closest_counterfactual(&knn, &x)) {
            (None, None) => {}
            (Some((z, d)), Some((_, bd))) => {
                prop_assert_eq!(d, bd);
                prop_assert_eq!(knn.classify(&z), label.flip());
                prop_assert_eq!(x.hamming(&z), d);
            }
            (a, b) => prop_assert!(false, "SAT {a:?} vs brute {b:?}"),
        }
    }
}
