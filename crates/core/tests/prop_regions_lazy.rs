//! Differential properties of the lazy Prop 1 region enumerator against the
//! eager [`RegionCache`] oracle, on random exact-rational instances:
//!
//! * the lazy stream (canonical and query-ordered, unpruned) enumerates
//!   exactly the oracle's region set — same `(A, B)` specs, same rows;
//! * union membership of random points through the *pruned* stream matches
//!   `ContinuousKnn::classify` (closed semantics for Positive, strict for
//!   Negative), so pruning never loses a piece of a decision region;
//! * pruning soundness: every region the pruner skips is LP-verified — an
//!   `Empty` verdict means the (closed or strict) LP is infeasible, a
//!   `Dominated` verdict means the polyhedron is contained in its named
//!   dominator. A pruner that drops a feasible, uncovered region fails here;
//! * [`Combinations`] is exactly the lexicographic `r`-subset enumeration:
//!   `C(n, r)` items, strictly increasing, no duplicates.

use knn_core::regions::{
    prune_region, Combinations, LazyRegions, PruneReason, RegionCache, RegionSpec, RegionStream,
};
use knn_core::ContinuousKnn;
use knn_lp::Rel;
use knn_num::Rat;
use knn_qp::Polyhedron;
use knn_space::{ContinuousDataset, Label, LpMetric, OddK};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
struct Instance {
    pos: Vec<Vec<i64>>,
    neg: Vec<Vec<i64>>,
    k_choice: usize, // index into {1, 3, 5}, clamped to the dataset size
    queries: Vec<Vec<i64>>,
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1..=3usize).prop_flat_map(|dim| {
        let pt = || prop::collection::vec(-3i64..=3, dim);
        (
            prop::collection::vec(pt(), 1..=4),
            prop::collection::vec(pt(), 1..=4),
            0..3usize,
            prop::collection::vec(pt(), 1..=3),
        )
            .prop_map(move |(pos, neg, k_choice, queries)| Instance {
                pos,
                neg,
                k_choice,
                queries,
            })
    })
}

fn to_rat(v: &[i64]) -> Vec<Rat> {
    v.iter().map(|&a| Rat::from_int(a)).collect()
}

fn dataset(inst: &Instance) -> ContinuousDataset<Rat> {
    ContinuousDataset::from_sets(
        inst.pos.iter().map(|p| to_rat(p)).collect(),
        inst.neg.iter().map(|p| to_rat(p)).collect(),
    )
}

/// The largest k among {1, 3, 5} at the chosen index that the dataset size
/// admits.
fn k_of(inst: &Instance) -> OddK {
    let n = inst.pos.len() + inst.neg.len();
    let want = [1u32, 3, 5][inst.k_choice];
    OddK::of((1..=want).rev().find(|k| k % 2 == 1 && *k as usize <= n).unwrap_or(1))
}

/// A comparable fingerprint of one region: its spec plus its rows.
type Fingerprint = BTreeMap<RegionSpec, (Vec<(Vec<Rat>, Rat)>, Vec<(Vec<Rat>, Rat)>)>;

fn fingerprint<'a>(
    regions: impl Iterator<Item = (&'a Polyhedron<Rat>, RegionSpec)>,
) -> Fingerprint {
    regions.map(|(p, spec)| (spec, (p.ineqs().to_vec(), p.eqs().to_vec()))).collect()
}

/// `P ⊆ Q` in the region's own semantics, verified by LP. Closed: no point
/// of `P` strictly violates a row of `Q`. Strict (the Negative region's open
/// semantics): no interior point of `P` lies on or beyond a row of `Q` —
/// this is the stronger claim a dominance prune must certify there, since
/// closed containment does not imply interior containment.
fn contained_in(p: &Polyhedron<Rat>, q: &Polyhedron<Rat>, strict: bool) -> bool {
    q.ineqs().iter().all(|(g, h)| {
        let mut lp = if strict { p.to_strict_lp() } else { p.to_lp() };
        lp.add_dense(g, if strict { Rel::Ge } else { Rel::Gt }, h.clone());
        lp.strict_feasible().is_none()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lazy enumeration (canonical and query-ordered, unpruned) produces
    /// exactly the eager oracle's region set, polyhedron for polyhedron.
    #[test]
    fn lazy_region_set_equals_eager_oracle(inst in instance_strategy()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        let cache = RegionCache::build(&ds, k);
        for target in [Label::Positive, Label::Negative] {
            let eager = fingerprint(
                cache.entries(target).iter().map(|(p, s)| (p, s.clone())),
            );
            let canonical: Vec<_> = RegionStream::canonical(&ds, k, target).collect();
            let lazy = fingerprint(canonical.iter().map(|(p, s)| (&**p, s.clone())));
            prop_assert_eq!(&eager, &lazy, "canonical stream vs oracle ({:?})", target);

            let x = to_rat(&inst.queries[0]);
            let ordered: Vec<_> =
                RegionStream::new(&ds, k, target, Some(&x), false, None).collect();
            let lazy_ordered = fingerprint(ordered.iter().map(|(p, s)| (&**p, s.clone())));
            prop_assert_eq!(&eager, &lazy_ordered, "query ordering must permute, not change");
        }
    }

    /// Union membership through the pruned, query-ordered, memoized stream
    /// matches the classifier: closed membership for the Positive region,
    /// strict for the Negative one. Run twice per point so the second pass
    /// exercises the memo.
    #[test]
    fn pruned_union_membership_matches_classifier(inst in instance_strategy()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        let knn = ContinuousKnn::new(&ds, LpMetric::L2, k);
        let lazy = LazyRegions::new(&ds, k);
        for q in &inst.queries {
            let x = to_rat(q);
            let label = knn.classify(&x);
            for _pass in 0..2 {
                let in_pos =
                    lazy.stream(Label::Positive, &x).any(|(p, _)| p.contains(&x));
                let in_neg =
                    lazy.stream(Label::Negative, &x).any(|(p, _)| p.contains_strictly(&x));
                prop_assert_eq!(label == Label::Positive, in_pos,
                    "positive union mismatch at {:?}", x);
                prop_assert_eq!(label == Label::Negative, in_neg,
                    "negative union mismatch at {:?}", x);
            }
        }
    }

    /// Every pruner verdict is LP-verified: `Empty` regions are infeasible
    /// (closed for Positive targets, strictly for Negative ones), and
    /// `Dominated` regions are contained in their named dominator, which the
    /// enumeration must actually carry. A pruner that drops a feasible,
    /// uncovered polyhedron fails this test.
    #[test]
    fn pruner_is_sound(inst in instance_strategy()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        for target in [Label::Positive, Label::Negative] {
            let all: BTreeMap<RegionSpec, Polyhedron<Rat>> =
                RegionStream::canonical(&ds, k, target)
                    .map(|(p, s)| (s, (*p).clone()))
                    .collect();
            for (spec, poly) in &all {
                match prune_region(&ds, target, &spec.anchors, &spec.excluded) {
                    None => {}
                    Some(PruneReason::Empty) => {
                        let feasible = match target {
                            Label::Positive => poly.feasible_point().is_some(),
                            Label::Negative => poly.strict_feasible_point().is_some(),
                        };
                        prop_assert!(!feasible,
                            "pruner claimed empty but LP found a point: {:?}", spec);
                    }
                    Some(PruneReason::Dominated(dom)) => {
                        let dom_poly = all.get(&dom);
                        prop_assert!(dom_poly.is_some(),
                            "dominator {:?} is not a region of the union", dom);
                        let strict = target == Label::Negative;
                        prop_assert!(contained_in(poly, dom_poly.unwrap(), strict),
                            "pruner claimed {:?} ⊆ {:?} but LP disagrees", spec, dom);
                    }
                }
            }
        }
    }

    /// `Combinations::new(n, r)` is the lexicographic enumeration of all
    /// `r`-subsets of `0..n`: `C(n, r)` of them, strictly increasing both
    /// within and across items, no duplicates.
    #[test]
    fn combinations_are_lexicographic_and_complete(n in 0..=8usize, r in 0..=9usize) {
        let all: Vec<Vec<usize>> = Combinations::new(n, r).collect();
        let binom = |n: usize, r: usize| -> usize {
            if r > n {
                return 0;
            }
            (0..r).fold(1usize, |acc, i| acc * (n - i) / (i + 1))
        };
        prop_assert_eq!(all.len(), binom(n, r));
        for c in &all {
            prop_assert_eq!(c.len(), r);
            prop_assert!(c.windows(2).all(|w| w[0] < w[1]), "not strictly increasing: {:?}", c);
            prop_assert!(c.iter().all(|&i| i < n), "out of range: {:?}", c);
        }
        for w in all.windows(2) {
            prop_assert!(w[0] < w[1], "not lexicographically sorted: {:?} !< {:?}", w[0], w[1]);
        }
    }

    /// The nearest-anchor-first order is really sorted by the anchor key:
    /// the emitted sequence's `Σ d²(x, A)` values are non-decreasing.
    #[test]
    fn query_order_is_sorted_by_anchor_distance(inst in instance_strategy()) {
        let ds = dataset(&inst);
        let k = k_of(&inst);
        let x = to_rat(&inst.queries[0]);
        for target in [Label::Positive, Label::Negative] {
            let keys: Vec<Rat> = RegionStream::new(&ds, k, target, Some(&x), false, None)
                .map(|(_, spec)| knn_core::regions::anchor_key(&ds, &x, &spec.anchors))
                .collect();
            prop_assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "anchor keys not sorted: {:?}",
                keys.iter().map(|r| r.to_f64()).collect::<Vec<_>>()
            );
        }
    }
}
