//! The two dataset mutations and their append-only log.

use knn_space::{ContinuousDataset, Label};

/// A requested dataset mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Append a labeled point at the end of the dataset.
    Insert {
        /// The new point.
        point: Vec<f64>,
        /// Its label.
        label: Label,
    },
    /// Remove the point at index `id` (0-based, in dataset order). Later
    /// points shift down — the relative order of the survivors is preserved,
    /// which is what keeps a mutated dataset byte-identical to a fresh parse
    /// of its serialized text.
    Remove {
        /// The index to remove.
        id: usize,
    },
}

impl Mutation {
    /// Is this mutation applicable to `dataset`? Total and deterministic,
    /// so every holder of the same dataset accepts or rejects a mutation
    /// identically — the single source of truth for [`crate::VersionedDataset`]
    /// and the engine alike:
    /// * inserts must match the dataset dimension and be finite;
    /// * removals must name an existing index and may not empty the dataset
    ///   (an empty dataset has no serialized form, which would break the
    ///   fresh-load oracle — and no dimension, which would break everything
    ///   else).
    pub fn validate(&self, dataset: &ContinuousDataset<f64>) -> Result<(), String> {
        match self {
            Mutation::Insert { point, .. } => {
                if point.len() != dataset.dim() {
                    return Err(format!(
                        "insert dimension {} does not match dataset dimension {}",
                        point.len(),
                        dataset.dim()
                    ));
                }
                if !point.iter().all(|v| v.is_finite()) {
                    return Err("insert point must be finite".into());
                }
            }
            Mutation::Remove { id } => {
                if *id >= dataset.len() {
                    return Err(format!(
                        "remove index {id} out of range ({} points)",
                        dataset.len()
                    ));
                }
                if dataset.len() == 1 {
                    return Err("cannot remove the last point of a dataset".into());
                }
            }
        }
        Ok(())
    }
}

impl Mutation {
    /// Renders this mutation as the canonical replay-op JSON object the
    /// serving layers' `load` verb accepts in its `"replay"` array and the
    /// repro bundles embed:
    /// `{"op":"insert","label":"+","point":[...]}` /
    /// `{"op":"remove","index":N}`. Coordinates print exactly as the
    /// engine's JSON writer prints numbers (integers without a fractional
    /// part, other floats via Rust's shortest-roundtrip `Display`), so a
    /// bundle that embeds these items re-serializes byte-identically after
    /// a parse.
    pub fn op_json(&self) -> String {
        // Mirrors the engine JSON writer's number rendering (including
        // `-0.0` → `0`); the two must stay in lockstep or bundle
        // round-trips stop being byte-identical.
        fn push_num(out: &mut String, v: f64) {
            if v.fract() == 0.0 && v.abs() < 9.0e15 {
                out.push_str(&format!("{}", v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        match self {
            Mutation::Insert { point, label } => {
                let mut out = format!("{{\"op\":\"insert\",\"label\":\"{label}\",\"point\":[");
                for (i, v) in point.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_num(&mut out, *v);
                }
                out.push_str("]}");
                out
            }
            Mutation::Remove { id } => format!("{{\"op\":\"remove\",\"index\":{id}}}"),
        }
    }
}

/// A mutation as recorded in the log, after it was applied. Removals carry
/// the removed point and label (needed by cache revalidation and replica
/// replay once the point is gone from the dataset).
#[derive(Clone, Debug, PartialEq)]
pub enum AppliedMutation {
    /// An applied insert.
    Insert {
        /// The inserted point.
        point: Vec<f64>,
        /// Its label.
        label: Label,
    },
    /// An applied removal.
    Remove {
        /// The index that was removed.
        id: usize,
        /// The point that lived there.
        point: Vec<f64>,
        /// Its label.
        label: Label,
    },
}

impl AppliedMutation {
    /// The class this mutation touched — the only class whose per-class
    /// artifacts (neighbor indexes) it can invalidate.
    pub fn label(&self) -> Label {
        match self {
            AppliedMutation::Insert { label, .. } | AppliedMutation::Remove { label, .. } => *label,
        }
    }

    /// The point inserted or removed.
    pub fn point(&self) -> &[f64] {
        match self {
            AppliedMutation::Insert { point, .. } | AppliedMutation::Remove { point, .. } => point,
        }
    }

    /// True for inserts.
    pub fn is_insert(&self) -> bool {
        matches!(self, AppliedMutation::Insert { .. })
    }

    /// The [`Mutation`] that re-applies this log entry to a dataset at the
    /// epoch it was originally applied at — what a repro bundle replays on
    /// top of the seed text to reconstruct any epoch.
    pub fn to_op(&self) -> Mutation {
        match self {
            AppliedMutation::Insert { point, label } => {
                Mutation::Insert { point: point.clone(), label: *label }
            }
            AppliedMutation::Remove { id, .. } => Mutation::Remove { id: *id },
        }
    }

    /// [`Mutation::op_json`] of [`to_op`](AppliedMutation::to_op).
    pub fn op_json(&self) -> String {
        self.to_op().op_json()
    }
}

/// The append-only mutation history of one dataset. Entry `i` (counting
/// from the log's [`MutationLog::base`]) is the mutation that took the
/// dataset from epoch `base + i` to `base + i + 1`, so
/// [`MutationLog::epoch`] (the current epoch) equals `base` plus the
/// retained length. Old entries may be [compacted](MutationLog::compact_before)
/// away once no consumer can ask about windows that far back; compaction
/// advances `base` without changing the epoch.
#[derive(Clone, Debug, Default)]
pub struct MutationLog {
    base: u64,
    entries: Vec<AppliedMutation>,
}

impl MutationLog {
    /// An empty log (epoch 0).
    pub fn new() -> MutationLog {
        MutationLog::default()
    }

    /// The epoch this log's dataset is at: the number of applied mutations
    /// (compacted ones included).
    pub fn epoch(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// The oldest epoch this log can still answer windows from.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Appends one applied mutation.
    pub fn push(&mut self, m: AppliedMutation) {
        self.entries.push(m);
    }

    /// The retained entries, oldest first (the first is the `base → base+1`
    /// transition).
    pub fn entries(&self) -> &[AppliedMutation] {
        &self.entries
    }

    /// Number of retained (uncompacted) entries.
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap bytes of the retained entries (each carries its
    /// point's coordinates so windows can be replayed).
    pub fn approx_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|m| std::mem::size_of::<AppliedMutation>() + std::mem::size_of_val(m.point()))
            .sum()
    }

    /// The mutations that take epoch `from` to epoch `to` (half-open:
    /// entries `from..to`), or `None` when `from` predates the compaction
    /// [`MutationLog::base`] — a partial window would be unsound to replay,
    /// so callers must treat `None` as "cannot revalidate". Entries
    /// appended after `to` (by mutations racing the caller's snapshot) are
    /// not included.
    pub fn range(&self, from: u64, to: u64) -> Option<&[AppliedMutation]> {
        if from < self.base {
            return None;
        }
        let lo = ((from - self.base) as usize).min(self.entries.len());
        let hi = (to.saturating_sub(self.base) as usize).min(self.entries.len());
        Some(&self.entries[lo..hi.max(lo)])
    }

    /// Drops every entry older than `epoch`, advancing the base — the
    /// memory bound for long-lived mutation streams. A `compact_before`
    /// beyond the current epoch clamps to it (empty log, epoch unchanged).
    pub fn compact_before(&mut self, epoch: u64) {
        let cut = epoch.clamp(self.base, self.epoch());
        self.entries.drain(..(cut - self.base) as usize);
        self.base = cut;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_epoch_counts_entries_and_range_is_half_open() {
        let mut log = MutationLog::new();
        assert_eq!(log.epoch(), 0);
        log.push(AppliedMutation::Insert { point: vec![1.0], label: Label::Positive });
        log.push(AppliedMutation::Remove { id: 0, point: vec![0.0], label: Label::Negative });
        assert_eq!(log.epoch(), 2);
        assert_eq!(log.range(0, 2).unwrap().len(), 2);
        assert_eq!(log.range(1, 2).unwrap().len(), 1);
        assert!(log.range(2, 2).unwrap().is_empty());
        assert!(log.range(5, 9).unwrap().is_empty(), "past-the-end windows are empty, not a panic");
        assert!(log.range(2, 1).unwrap().is_empty(), "inverted windows are empty");
        assert!(log.entries()[1].point() == [0.0] && !log.entries()[1].is_insert());
    }

    #[test]
    fn op_json_is_the_wire_replay_format() {
        let ins =
            Mutation::Insert { point: vec![1.0, 0.5, 0.30000000000000004], label: Label::Positive };
        assert_eq!(
            ins.op_json(),
            r#"{"op":"insert","label":"+","point":[1,0.5,0.30000000000000004]}"#
        );
        assert_eq!(Mutation::Remove { id: 3 }.op_json(), r#"{"op":"remove","index":3}"#);
        let applied = AppliedMutation::Remove { id: 2, point: vec![9.0], label: Label::Negative };
        assert_eq!(applied.to_op(), Mutation::Remove { id: 2 });
        assert_eq!(applied.op_json(), r#"{"op":"remove","index":2}"#);
        let applied = AppliedMutation::Insert { point: vec![-0.0], label: Label::Negative };
        assert_eq!(
            applied.op_json(),
            r#"{"op":"insert","label":"-","point":[0]}"#,
            "-0 prints as 0, like the engine JSON writer"
        );
    }

    #[test]
    fn compaction_advances_the_base_without_changing_the_epoch() {
        let mut log = MutationLog::new();
        for i in 0..10 {
            log.push(AppliedMutation::Insert { point: vec![i as f64], label: Label::Positive });
        }
        log.compact_before(6);
        assert_eq!((log.epoch(), log.base(), log.entries().len()), (10, 6, 4));
        assert!(log.range(5, 10).is_none(), "pre-base windows are unanswerable, not partial");
        assert_eq!(log.range(6, 10).unwrap().len(), 4);
        assert_eq!(log.range(6, 10).unwrap()[0].point(), [6.0]);
        log.compact_before(99);
        assert_eq!((log.epoch(), log.base(), log.entries().len()), (10, 10, 0));
        log.push(AppliedMutation::Insert { point: vec![10.0], label: Label::Negative });
        assert_eq!(log.epoch(), 11);
        assert_eq!(log.range(10, 11).unwrap().len(), 1);
    }
}
