//! # knn-delta — live dataset mutation with versioned artifacts
//!
//! k-NN is instance-based: the dataset *is* the model, so inserting or
//! removing one point can flip classifications and silently invalidate
//! every cached abductive/counterfactual answer. Before this crate, the
//! only way to change a point in a served tenant was a full reload that
//! threw away every artifact and cache entry. This crate supplies the
//! machinery that lets the serving layers mutate datasets *live*:
//!
//! * [`Mutation`] / [`AppliedMutation`] — the two mutations (`insert` a
//!   labeled point at the end, `remove` the point at an index) as requested
//!   and as recorded. The applied form of a removal carries the removed
//!   point and label, because everything downstream (cache revalidation,
//!   replica replay) needs to know *what* left the dataset after it is gone.
//! * [`MutationLog`] — the append-only history. The **epoch** of a dataset
//!   is exactly the number of mutations applied since it was loaded, so a
//!   log index *is* an epoch transition: entry `i` takes the dataset from
//!   epoch `i` to `i + 1`.
//! * [`VersionedDataset`] — a [`ContinuousDataset`] plus its log. Mutations
//!   preserve the order of the surviving points (`insert` appends, `remove`
//!   shifts down), so [`VersionedDataset::to_text`] always serializes to a
//!   text file whose fresh parse is point-for-point identical to the live
//!   dataset — the property that makes a freshly loaded engine usable as a
//!   byte-level differential oracle for any mutated engine.
//! * [`ClassifyGuard`] — the cache-revalidation calculus. A cached
//!   `classify` answer survives a mutation window iff every mutation
//!   provably leaves both per-class majority order statistics unchanged
//!   (see the module docs of [`guard`]); everything else conservatively
//!   invalidates.
//!
//! The engine (`knn-engine`) keys its artifact store and explanation cache
//! by epoch and uses this crate to invalidate *selectively*: a mutation of
//! one class drops only that class's neighbor indexes, and cache entries
//! for old epochs are revalidated or lazily evicted instead of wholesale
//! cleared. The network layers (`knn-server`, `knn-cluster`) forward
//! `insert` / `remove` verbs and replay logs onto amnesiac replicas.

#![warn(missing_docs)]

pub mod guard;
pub mod mutation;
pub mod versioned;

pub use guard::{ClassifyGuard, GuardMetric};
pub use mutation::{AppliedMutation, Mutation, MutationLog};
pub use versioned::{dataset_text, VersionedDataset};
