//! A dataset with a monotone epoch and its append-only mutation log.

use crate::mutation::{AppliedMutation, Mutation, MutationLog};
use knn_space::{ContinuousDataset, Label};

/// A [`ContinuousDataset`] wrapped with a monotone epoch and the
/// [`MutationLog`] that produced it from its seed state.
///
/// The governing invariant (pinned by the differential tests up the stack):
/// at every epoch, [`VersionedDataset::to_text`] serializes to a dataset
/// file whose fresh parse is point-for-point, order-for-order identical to
/// the live dataset. Inserts append; removals shift later points down.
/// Every order-sensitive computation downstream (KD-tree construction,
/// region enumeration, witness selection) therefore sees the same input a
/// freshly loaded engine would, which is what makes a fresh load the
/// byte-level oracle for a mutated engine.
#[derive(Clone, Debug)]
pub struct VersionedDataset {
    data: ContinuousDataset<f64>,
    log: MutationLog,
}

impl VersionedDataset {
    /// Wraps `data` at epoch 0 with an empty log.
    pub fn new(data: ContinuousDataset<f64>) -> VersionedDataset {
        VersionedDataset { data, log: MutationLog::new() }
    }

    /// The current epoch (number of mutations applied since the seed).
    pub fn epoch(&self) -> u64 {
        self.log.epoch()
    }

    /// The dataset at the current epoch.
    pub fn dataset(&self) -> &ContinuousDataset<f64> {
        &self.data
    }

    /// The mutation history.
    pub fn log(&self) -> &MutationLog {
        &self.log
    }

    /// Applies one mutation, bumping the epoch. Returns the applied record
    /// (for removals: with the removed point captured). Validation is
    /// [`Mutation::validate`] — total and deterministic, so every replica
    /// of a dataset accepts or rejects the same mutation identically.
    pub fn apply(&mut self, m: Mutation) -> Result<&AppliedMutation, String> {
        m.validate(&self.data)?;
        match m {
            Mutation::Insert { point, label } => {
                self.data.push(point.clone(), label);
                self.log.push(AppliedMutation::Insert { point, label });
            }
            Mutation::Remove { id } => {
                let (point, label) = self.data.remove(id);
                self.log.push(AppliedMutation::Remove { id, point, label });
            }
        }
        Ok(self.log.entries().last().expect("just pushed"))
    }

    /// Serializes the current dataset in the `+/-` text format, one point
    /// per line. See [`dataset_text`].
    pub fn to_text(&self) -> String {
        dataset_text(&self.data)
    }

    /// Approximate heap bytes of the live dataset (excluding the log — the
    /// resource gauges report the two separately, since log growth is
    /// bounded by compaction policy rather than dataset size).
    pub fn approx_bytes(&self) -> usize {
        self.data.approx_bytes()
    }
}

/// Renders a dataset in the `+/-`-labeled text format the serving layers'
/// `load` verb takes. Floats print with Rust's shortest-roundtrip `Display`,
/// so parsing the text back yields bit-identical coordinates.
pub fn dataset_text(ds: &ContinuousDataset<f64>) -> String {
    let mut out = String::new();
    for (point, label) in ds.iter() {
        out.push(if label == Label::Positive { '+' } else { '-' });
        for v in point {
            out.push(' ');
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> ContinuousDataset<f64> {
        ContinuousDataset::from_sets(
            vec![vec![1.0, 1.0], vec![1.0, 0.5]],
            vec![vec![0.0, 0.0], vec![0.0, 0.25]],
        )
    }

    #[test]
    fn apply_bumps_epoch_and_preserves_order() {
        let mut v = VersionedDataset::new(seed());
        assert_eq!(v.epoch(), 0);
        v.apply(Mutation::Insert { point: vec![2.0, 2.0], label: Label::Positive }).unwrap();
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.dataset().point(4), &[2.0, 2.0], "insert appends");
        let applied = v.apply(Mutation::Remove { id: 1 }).unwrap().clone();
        assert_eq!(applied.point(), &[1.0, 0.5], "removal captures the removed point");
        assert_eq!(applied.label(), Label::Positive);
        assert_eq!(v.epoch(), 2);
        assert_eq!(v.dataset().len(), 4);
        assert_eq!(v.dataset().point(1), &[0.0, 0.0], "later points shift down");
    }

    #[test]
    fn invalid_mutations_are_rejected_without_state_change() {
        let mut v = VersionedDataset::new(seed());
        assert!(v.apply(Mutation::Insert { point: vec![1.0], label: Label::Positive }).is_err());
        assert!(v
            .apply(Mutation::Insert { point: vec![f64::NAN, 0.0], label: Label::Positive })
            .is_err());
        assert!(v.apply(Mutation::Remove { id: 4 }).is_err());
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.dataset().len(), 4);
    }

    #[test]
    fn cannot_remove_the_last_point() {
        let mut v =
            VersionedDataset::new(ContinuousDataset::from_sets(vec![vec![1.0]], vec![vec![0.0]]));
        v.apply(Mutation::Remove { id: 0 }).unwrap();
        let err = v.apply(Mutation::Remove { id: 0 }).unwrap_err();
        assert!(err.contains("last point"), "{err}");
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let mut v = VersionedDataset::new(ContinuousDataset::from_sets(
            vec![vec![0.1, -2.5], vec![1.0, 3.0000000001]],
            vec![vec![-0.0, 1e-9]],
        ));
        v.apply(Mutation::Insert { point: vec![0.30000000000000004, 7.0], label: Label::Negative })
            .unwrap();
        let text = v.to_text();
        // Parse it back by hand (the full parser lives in knn-engine, above
        // this crate) and compare bit-for-bit.
        for (line, (point, label)) in text.lines().zip(v.dataset().iter()) {
            let mut toks = line.split_whitespace();
            let lab = toks.next().unwrap();
            assert_eq!(lab == "+", label == Label::Positive);
            let parsed: Vec<f64> = toks.map(|t| t.parse().unwrap()).collect();
            assert_eq!(parsed.len(), point.len());
            for (a, b) in parsed.iter().zip(point) {
                assert_eq!(a.to_bits(), b.to_bits(), "line {line:?}");
            }
        }
    }
}
