//! Cache revalidation: which cached answers provably survive a mutation.
//!
//! The optimistic k-NN rule classifies a query `x` by comparing, per class,
//! the `maj`-th order statistic of the distance multiset from `x` to that
//! class (`maj = (k+1)/2`; §2 of the paper). A cached `classify` answer
//! therefore survives a mutation window iff every mutation in the window
//! leaves both per-class statistics unchanged — which a cheap per-mutation
//! distance test certifies:
//!
//! * **insert** of `p` into class `c` with `d(x, p) ≥ statᶜ`: the first
//!   `maj` order statistics of class `c` are unchanged (a value at or past
//!   the `maj`-th smallest cannot displace it), and the other class is
//!   untouched;
//! * **remove** of `p` from class `c` with `d(x, p) > statᶜ` (strict: a
//!   removal *at* the statistic could have been the statistic): at least
//!   `maj` points at distance ≤ statᶜ remain, so the statistic — and the
//!   class's ≥ `maj` point count — is preserved;
//! * a class whose statistic was undefined at cache time (< `maj` points)
//!   stays undefined under removals and conservatively invalidates under
//!   inserts (the class could cross the majority threshold).
//!
//! The argument is inductive over the window: each passing mutation
//! preserves both statistics and their definedness, so the cached label is
//! exactly what a fresh engine at the new epoch would compute. Distances
//! are evaluated with the *same* `f64` kernels the neighbor indexes use
//! ([`LpMetric::dist_pow`]; popcount for Hamming), so the comparisons are
//! bit-faithful to what the index probes would see.
//!
//! Everything that is not a `classify` — sufficient reasons,
//! counterfactuals, checks — depends on global dataset structure with no
//! comparably cheap certificate, and conservatively invalidates on any
//! epoch change. The guard is an *optimization*, never a semantics: a
//! failed or absent guard only costs a recompute.

use crate::mutation::AppliedMutation;
use knn_space::{Label, LpMetric};

/// The distance key space a guard's statistics live in — matching the
/// neighbor index that produced them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardMetric {
    /// ℓp with the given exponent; statistics are p-th *powers* of
    /// distances (the KD-tree's comparison key).
    LpPow(u32),
    /// Hamming over {0,1}ⁿ; statistics are bit-flip counts.
    Hamming,
}

/// The survival certificate attached to a cached `classify` answer: the
/// query point and the per-class majority order statistics observed when
/// the answer was computed.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyGuard {
    /// The query point.
    pub point: Vec<f64>,
    /// The distance key space of the statistics.
    pub metric: GuardMetric,
    /// The request's `k` (odd).
    pub k: u32,
    /// The positive class's `maj`-th order statistic (`None`: fewer than
    /// `maj` positive points at cache time).
    pub pos: Option<f64>,
    /// The negative class's `maj`-th order statistic.
    pub neg: Option<f64>,
}

impl ClassifyGuard {
    /// Does the cached answer survive the mutation window `muts` (oldest
    /// first), with `final_len` points in the dataset at the target epoch?
    /// `final_len` covers the "dataset smaller than k" error boundary: a
    /// fresh engine would refuse the query there, so a cached label must
    /// not answer it.
    pub fn survives(&self, muts: &[AppliedMutation], final_len: usize) -> bool {
        if final_len < self.k as usize {
            return false;
        }
        for m in muts {
            let point = m.point();
            if point.len() != self.point.len() {
                return false; // defensive: mutations preserve dimension
            }
            let stat = match m.label() {
                Label::Positive => self.pos,
                Label::Negative => self.neg,
            };
            let Some(stat) = stat else {
                // Below the majority threshold at cache time: removals keep
                // it below (answer unchanged); inserts could cross it.
                if m.is_insert() {
                    return false;
                }
                continue;
            };
            let d = match self.metric {
                GuardMetric::LpPow(p) => LpMetric::new(p).dist_pow(&self.point, point),
                GuardMetric::Hamming => {
                    // A non-binary insert destroys the dataset's boolean
                    // view: a fresh engine would *error* on the Hamming
                    // route, so the cached label must not survive.
                    if point.iter().any(|&v| v != 0.0 && v != 1.0) {
                        return false;
                    }
                    self.point.iter().zip(point).filter(|(a, b)| a != b).count() as f64
                }
            };
            let preserved = if m.is_insert() { d >= stat } else { d > stat };
            if !preserved {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard(metric: GuardMetric, pos: Option<f64>, neg: Option<f64>) -> ClassifyGuard {
        ClassifyGuard { point: vec![0.0, 0.0, 0.0], metric, k: 1, pos, neg }
    }

    fn ins(point: &[f64], label: Label) -> AppliedMutation {
        AppliedMutation::Insert { point: point.to_vec(), label }
    }

    fn rem(point: &[f64], label: Label) -> AppliedMutation {
        AppliedMutation::Remove { id: 0, point: point.to_vec(), label }
    }

    #[test]
    fn far_mutations_survive_near_ones_invalidate() {
        // ℓ2 stats (squared): pos at 1.0, neg at 4.0 from the origin query.
        let g = guard(GuardMetric::LpPow(2), Some(1.0), Some(4.0));
        assert!(g.survives(&[ins(&[3.0, 0.0, 0.0], Label::Positive)], 10), "d²=9 ≥ 1");
        assert!(!g.survives(&[ins(&[0.5, 0.0, 0.0], Label::Positive)], 10), "d²=0.25 < 1");
        assert!(g.survives(&[rem(&[3.0, 0.0, 0.0], Label::Negative)], 10), "d²=9 > 4");
        assert!(!g.survives(&[rem(&[2.0, 0.0, 0.0], Label::Negative)], 10), "d²=4 not > 4 (tie)");
        assert!(g.survives(&[ins(&[1.0, 0.0, 0.0], Label::Positive)], 10), "insert tie d²=1 ≥ 1");
        // The whole window must pass.
        assert!(!g.survives(
            &[ins(&[3.0, 0.0, 0.0], Label::Positive), ins(&[0.1, 0.0, 0.0], Label::Negative)],
            10
        ));
    }

    #[test]
    fn undefined_class_statistic_blocks_inserts_allows_removes() {
        let g = guard(GuardMetric::LpPow(2), None, Some(4.0));
        assert!(!g.survives(&[ins(&[9.0, 9.0, 9.0], Label::Positive)], 10));
        assert!(g.survives(&[rem(&[9.0, 9.0, 9.0], Label::Positive)], 10));
    }

    #[test]
    fn hamming_guard_checks_bits_and_binaryness() {
        let g = guard(GuardMetric::Hamming, Some(1.0), Some(2.0));
        assert!(g.survives(&[ins(&[1.0, 1.0, 1.0], Label::Positive)], 10), "3 flips ≥ 1");
        assert!(g.survives(&[ins(&[1.0, 0.0, 0.0], Label::Positive)], 10), "1 flip ≥ 1 (tie)");
        assert!(!g.survives(&[ins(&[0.0, 0.0, 0.0], Label::Positive)], 10), "0 flips < 1");
        assert!(!g.survives(&[rem(&[0.0, 1.0, 0.0], Label::Negative)], 10), "removal needs > 2");
        assert!(g.survives(&[rem(&[1.0, 1.0, 1.0], Label::Negative)], 10), "3 flips > 2");
        assert!(!g.survives(&[ins(&[0.5, 0.0, 0.0], Label::Positive)], 10), "non-binary insert");
    }

    #[test]
    fn dataset_shrinking_below_k_invalidates() {
        let g = ClassifyGuard {
            point: vec![0.0],
            metric: GuardMetric::LpPow(2),
            k: 3,
            pos: Some(1.0),
            neg: Some(1.0),
        };
        assert!(!g.survives(&[], 2), "2 points < k = 3");
        assert!(g.survives(&[], 3));
    }
}
