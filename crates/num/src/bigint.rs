//! Sign-magnitude arbitrary-precision integers.
//!
//! Little-endian `u32` limbs, schoolbook multiplication and Knuth Algorithm D
//! division. The magnitudes that arise in the paper's constructions and in
//! exact simplex pivoting stay small (tens of limbs), so asymptotically fancy
//! algorithms are not needed; correctness and predictability are.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

const BASE_BITS: u32 = 32;

/// An arbitrary-precision signed integer.
///
/// Invariant: `mag` has no trailing zero limbs, and `sign == 0` iff `mag` is empty.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigInt {
    sign: i8,
    mag: Vec<u32>,
}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt { sign: 0, mag: Vec::new() }
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// True iff `self == 0`.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// True iff `self > 0`.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// True iff `self < 0`.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Sign of the integer as -1, 0 or 1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt { sign: self.sign.abs(), mag: self.mag.clone() }
    }

    /// Number of significant bits of the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// True iff the integer is even.
    pub fn is_even(&self) -> bool {
        self.mag.first().is_none_or(|l| l % 2 == 0)
    }

    fn normalized(sign: i8, mut mag: Vec<u32>) -> Self {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let s = long[i] as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(s as u32);
            carry = s >> BASE_BITS;
        }
        if carry > 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Computes `a - b` assuming `a >= b` (as magnitudes).
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for i in 0..a.len() {
            let d = a[i] as i64 - *b.get(i).unwrap_or(&0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << BASE_BITS)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> BASE_BITS;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> BASE_BITS;
                k += 1;
            }
        }
        out
    }

    /// Shift magnitude left by `bits` (< 32).
    fn shl_bits(mag: &[u32], bits: u32) -> Vec<u32> {
        debug_assert!(bits < 32);
        if bits == 0 {
            return mag.to_vec();
        }
        let mut out = Vec::with_capacity(mag.len() + 1);
        let mut carry = 0u32;
        for &l in mag {
            out.push((l << bits) | carry);
            carry = (((l as u64) >> (32 - bits)) & u32::MAX as u64) as u32;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Shift magnitude right by `bits` (< 32).
    fn shr_bits(mag: &[u32], bits: u32) -> Vec<u32> {
        debug_assert!(bits < 32);
        if bits == 0 {
            return mag.to_vec();
        }
        let mut out = vec![0u32; mag.len()];
        let mut carry = 0u32;
        for i in (0..mag.len()).rev() {
            out[i] = (mag[i] >> bits) | carry;
            carry = mag[i] << (32 - bits);
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Knuth Algorithm D: divides magnitudes, returning `(quotient, remainder)`.
    fn div_rem_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << BASE_BITS) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 { Vec::new() } else { vec![rem as u32] };
            return (q, r);
        }
        // Normalize so the top divisor limb has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let mut u = Self::shl_bits(a, shift);
        let v = Self::shl_bits(b, shift);
        let n = v.len();
        let m = u.len() - n;
        u.push(0);
        let mut q = vec![0u32; m + 1];
        let v_top = v[n - 1] as u64;
        let v_next = v[n - 2] as u64;
        for j in (0..=m).rev() {
            // Estimate the quotient digit from the top two limbs.
            let num = ((u[j + n] as u64) << BASE_BITS) | u[j + n - 1] as u64;
            let mut qhat = num / v_top;
            let mut rhat = num % v_top;
            while qhat >= 1u64 << BASE_BITS
                || qhat * v_next > ((rhat << BASE_BITS) | u[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += v_top;
                if rhat >= 1u64 << BASE_BITS {
                    break;
                }
            }
            // Multiply-subtract u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * v[i] as u64 + carry;
                carry = p >> BASE_BITS;
                let t = u[j + i] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    u[j + i] = (t + (1i64 << BASE_BITS)) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = t as u32;
                    borrow = 0;
                }
            }
            let t = u[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // qhat was one too large; add back.
                u[j + n] = (t + (1i64 << BASE_BITS)) as u32;
                qhat -= 1;
                let mut carry2 = 0u64;
                for i in 0..n {
                    let s = u[j + i] as u64 + v[i] as u64 + carry2;
                    u[j + i] = s as u32;
                    carry2 = s >> BASE_BITS;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u32);
            } else {
                u[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        u.truncate(n);
        let r = Self::shr_bits(&u, shift);
        (q, r)
    }

    /// Logical right shift of the magnitude by an arbitrary bit count
    /// (sign preserved; shifts toward zero).
    pub fn shr(&self, bits: usize) -> BigInt {
        let limb_shift = bits / 32;
        if limb_shift >= self.mag.len() {
            return BigInt::zero();
        }
        let shifted = Self::shr_bits(&self.mag[limb_shift..], (bits % 32) as u32);
        BigInt::normalized(self.sign, shifted)
    }

    /// Truncated division with remainder: `self = q * other + r`, with
    /// `|r| < |other|` and `r` sharing the sign of `self` (like Rust's `%`).
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (qm, rm) = Self::div_rem_mag(&self.mag, &other.mag);
        let q = Self::normalized(self.sign * other.sign, qm);
        let r = Self::normalized(self.sign, rm);
        (q, r)
    }

    /// Greatest common divisor of the absolute values (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// Raises `self` to a non-negative integer power by repeated squaring.
    pub fn pow(&self, mut e: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        acc
    }

    /// Approximate value as `f64` (may overflow to infinity).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.mag.iter().rev() {
            v = v * 4294967296.0 + l as f64;
        }
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }

    /// Exact conversion to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.mag.len() > 2 {
            return None;
        }
        let mut v: u64 = 0;
        for (i, &l) in self.mag.iter().enumerate() {
            v |= (l as u64) << (32 * i);
        }
        if self.sign >= 0 {
            (v <= i64::MAX as u64).then_some(v as i64)
        } else if v <= i64::MAX as u64 + 1 {
            Some((v as i64).wrapping_neg())
        } else {
            None
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign = match v.cmp(&0) {
            Ordering::Less => -1,
            Ordering::Equal => 0,
            Ordering::Greater => 1,
        };
        let mut m = v.unsigned_abs();
        let mut mag = Vec::new();
        while m > 0 {
            mag.push((m & u32::MAX as u128) as u32);
            m >>= 32;
        }
        BigInt { sign, mag }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            o => return o,
        }
        let mag_ord = Self::cmp_mag(&self.mag, &other.mag);
        if self.sign >= 0 {
            mag_ord
        } else {
            mag_ord.reverse()
        }
    }
}

macro_rules! forward_ref_binop {
    ($imp:ident, $method:ident for $t:ty) => {
        impl $imp<$t> for $t {
            type Output = $t;
            fn $method(self, rhs: $t) -> $t {
                (&self).$method(&rhs)
            }
        }
        impl $imp<&$t> for $t {
            type Output = $t;
            fn $method(self, rhs: &$t) -> $t {
                (&self).$method(rhs)
            }
        }
        impl $imp<$t> for &$t {
            type Output = $t;
            fn $method(self, rhs: $t) -> $t {
                self.$method(&rhs)
            }
        }
    };
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            BigInt::normalized(self.sign, BigInt::add_mag(&self.mag, &rhs.mag))
        } else {
            match BigInt::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::normalized(self.sign, BigInt::sub_mag(&self.mag, &rhs.mag))
                }
                Ordering::Less => {
                    BigInt::normalized(rhs.sign, BigInt::sub_mag(&rhs.mag, &self.mag))
                }
            }
        }
    }
}
forward_ref_binop!(Add, add for BigInt);

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}
forward_ref_binop!(Sub, sub for BigInt);

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::normalized(self.sign * rhs.sign, BigInt::mul_mag(&self.mag, &rhs.mag))
    }
}
forward_ref_binop!(Mul, mul for BigInt);

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}
forward_ref_binop!(Div, div for BigInt);

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}
forward_ref_binop!(Rem, rem for BigInt);

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = -self.sign;
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut chunks = Vec::new();
        let chunk_base = BigInt::from(1_000_000_000i64);
        let mut cur = self.abs();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk_base);
            chunks.push(r.mag.first().copied().unwrap_or(0));
            cur = q;
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        write!(f, "{}", chunks.last().unwrap())?;
        for c in chunks.iter().rev().skip(1) {
            write!(f, "{:09}", c)?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// Error type for parsing a [`BigInt`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal")
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let ten9 = BigInt::from(1_000_000_000i64);
        let mut acc = BigInt::zero();
        let bytes = digits.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(9);
            let chunk: u64 = digits[i..i + take].parse().map_err(|_| ParseBigIntError)?;
            let scale = BigInt::from(10i64).pow(take as u32);
            acc = &(&acc * &scale) + &BigInt::from(chunk);
            let _ = &ten9;
            i += take;
        }
        Ok(if neg { -acc } else { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(b(2) + b(3), b(5));
        assert_eq!(b(-2) + b(3), b(1));
        assert_eq!(b(2) - b(3), b(-1));
        assert_eq!(b(-4) * b(5), b(-20));
        assert_eq!(b(20) / b(6), b(3));
        assert_eq!(b(20) % b(6), b(2));
        assert_eq!(b(-20) / b(6), b(-3));
        assert_eq!(b(-20) % b(6), b(-2));
    }

    #[test]
    fn zero_identities() {
        assert!(BigInt::zero().is_zero());
        assert_eq!(b(7) + BigInt::zero(), b(7));
        assert_eq!(b(7) * BigInt::zero(), BigInt::zero());
        assert_eq!(b(0), -b(0));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0", "1", "-1", "123456789012345678901234567890", "-987654321000000000000001"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("12a3".parse::<BigInt>().is_err());
        assert!("--1".parse::<BigInt>().is_err());
    }

    #[test]
    fn big_multiplication_known_value() {
        let a: BigInt = "123456789123456789123456789".parse().unwrap();
        let c = &a * &a;
        assert_eq!(c.to_string(), "15241578780673678546105778281054720515622620750190521");
    }

    #[test]
    fn division_large_by_medium() {
        let a: BigInt = "100000000000000000000000000000000000007".parse().unwrap();
        let d: BigInt = "12345678910111213".parse().unwrap();
        let (q, r) = a.div_rem(&d);
        assert_eq!(&(&q * &d) + &r, a);
        assert!(r.abs() < d.abs());
    }

    #[test]
    fn gcd_examples() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(7).gcd(&b(0)), b(7));
    }

    #[test]
    fn pow_examples() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(10).pow(0), b(1));
        assert_eq!(b(-3).pow(3), b(-27));
    }

    #[test]
    fn ordering() {
        assert!(b(-5) < b(-4));
        assert!(b(-1) < b(0));
        assert!(b(0) < b(1));
        let big: BigInt = "99999999999999999999".parse().unwrap();
        assert!(b(1) < big);
        assert!(-big.clone() < b(1));
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(b(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(b(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(b(-42).to_i64(), Some(-42));
    }

    #[test]
    fn bit_len() {
        assert_eq!(BigInt::zero().bit_len(), 0);
        assert_eq!(b(1).bit_len(), 1);
        assert_eq!(b(255).bit_len(), 8);
        assert_eq!(b(256).bit_len(), 9);
        assert_eq!(BigInt::from(1i64 << 40).bit_len(), 41);
    }

    proptest! {
        #[test]
        fn prop_add_commutes(a in any::<i128>(), c in any::<i128>()) {
            prop_assert_eq!(b(a) + b(c), b(c) + b(a));
        }

        #[test]
        fn prop_roundtrip_i128(a in any::<i64>()) {
            // i64 values times a large factor still roundtrip through div_rem.
            let big = &b(a as i128) * &b(1_000_000_007i128);
            let (q, r) = big.div_rem(&b(1_000_000_007i128));
            prop_assert_eq!(q, b(a as i128));
            prop_assert!(r.is_zero());
        }

        #[test]
        fn prop_mul_matches_i128(a in -(1i64<<40)..(1i64<<40), c in -(1i64<<40)..(1i64<<40)) {
            prop_assert_eq!(b(a as i128) * b(c as i128), b(a as i128 * c as i128));
        }

        #[test]
        fn prop_div_rem_invariant(a in any::<i128>(), c in any::<i128>()) {
            prop_assume!(c != 0);
            let (q, r) = b(a).div_rem(&b(c));
            prop_assert_eq!(&(&q * &b(c)) + &r, b(a));
            prop_assert!(r.abs() < b(c).abs());
        }

        #[test]
        fn prop_gcd_divides(a in any::<i64>(), c in any::<i64>()) {
            let g = b(a as i128).gcd(&b(c as i128));
            if !g.is_zero() {
                prop_assert!((b(a as i128) % &g).is_zero());
                prop_assert!((b(c as i128) % &g).is_zero());
            } else {
                prop_assert_eq!(a, 0);
                prop_assert_eq!(c, 0);
            }
        }

        #[test]
        fn prop_string_roundtrip(a in any::<i128>()) {
            let v = b(a);
            let s = v.to_string();
            prop_assert_eq!(s.parse::<BigInt>().unwrap(), v);
        }

        #[test]
        fn prop_distributive(a in any::<i64>(), c in any::<i64>(), d in any::<i64>()) {
            let (a, c, d) = (b(a as i128), b(c as i128), b(d as i128));
            prop_assert_eq!(&a * &(&c + &d), &(&a * &c) + &(&a * &d));
        }
    }
}
