//! The [`Field`] abstraction over exact rationals and tolerance-based floats.
//!
//! Every continuous-setting algorithm in the workspace (simplex, active-set QP,
//! the ℓ2/ℓ1 explanation procedures) is generic over this trait. Instantiating
//! with [`Rat`] yields exact, tie-correct computation — the mode all theory
//! tests run in. Instantiating with `f64` yields the fast benchmarking mode,
//! where sign tests are made against a small tolerance, mirroring what
//! floating-point LP/QP solvers do in practice.

use crate::rat::Rat;
use std::fmt::Debug;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An ordered field with sign queries, as needed by the solvers.
pub trait Field:
    Clone
    + PartialEq
    + PartialOrd
    + Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a machine integer.
    fn from_i64(v: i64) -> Self;
    /// Embeds a float; exact for [`Rat`] (dyadic decomposition).
    fn from_f64(v: f64) -> Self;
    /// Approximate float value (for reporting).
    fn to_f64(&self) -> f64;
    /// True iff the value is (numerically) zero.
    fn is_zero(&self) -> bool;
    /// True iff the value is (numerically) strictly positive.
    fn is_positive(&self) -> bool;
    /// True iff the value is (numerically) strictly negative.
    fn is_negative(&self) -> bool;
    /// Absolute value.
    fn abs(&self) -> Self;
    /// Whether this instantiation is exact (no tolerance).
    fn exact() -> bool;
}

/// Comparison tolerance used by the `f64` instantiation.
pub const F64_TOL: f64 = 1e-9;

impl Field for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn is_zero(&self) -> bool {
        self.abs() <= F64_TOL
    }
    fn is_positive(&self) -> bool {
        *self > F64_TOL
    }
    fn is_negative(&self) -> bool {
        *self < -F64_TOL
    }
    fn abs(&self) -> Self {
        f64::abs(*self)
    }
    fn exact() -> bool {
        false
    }
}

impl Field for Rat {
    fn zero() -> Self {
        Rat::zero()
    }
    fn one() -> Self {
        Rat::one()
    }
    fn from_i64(v: i64) -> Self {
        Rat::from_int(v)
    }
    fn from_f64(v: f64) -> Self {
        Rat::from_f64(v)
    }
    fn to_f64(&self) -> f64 {
        Rat::to_f64(self)
    }
    fn is_zero(&self) -> bool {
        Rat::is_zero(self)
    }
    fn is_positive(&self) -> bool {
        Rat::is_positive(self)
    }
    fn is_negative(&self) -> bool {
        Rat::is_negative(self)
    }
    fn abs(&self) -> Self {
        Rat::abs(self)
    }
    fn exact() -> bool {
        true
    }
}

/// Dot product of two equal-length slices.
pub fn dot<F: Field>(a: &[F], b: &[F]) -> F {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = F::zero();
    for (x, y) in a.iter().zip(b) {
        acc = acc + x.clone() * y.clone();
    }
    acc
}

/// Squared Euclidean norm of a slice.
pub fn norm_sq<F: Field>(a: &[F]) -> F {
    dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerance_semantics() {
        assert!(Field::is_zero(&0.0f64));
        assert!(Field::is_zero(&1e-12f64));
        assert!(Field::is_positive(&1e-3f64));
        assert!(!Field::is_positive(&1e-12f64));
        assert!(Field::is_negative(&-1e-3f64));
    }

    #[test]
    fn rat_exact_semantics() {
        let tiny = Rat::new(1i64.into(), 1_000_000_000_000i64.into());
        assert!(Field::is_positive(&tiny));
        assert!(!Field::is_zero(&tiny));
        assert!(Rat::exact());
        assert!(!<f64 as Field>::exact());
    }

    #[test]
    fn generic_dot_product() {
        fn compute<F: Field>() -> F {
            dot(
                &[F::from_i64(1), F::from_i64(2), F::from_i64(3)],
                &[F::from_i64(4), F::from_i64(5), F::from_i64(6)],
            )
        }
        assert_eq!(compute::<f64>(), 32.0);
        assert_eq!(compute::<Rat>(), Rat::from_int(32i64));
    }

    #[test]
    fn norm_sq_matches_dot() {
        let v = [Rat::frac(1, 2), Rat::frac(-3, 4)];
        assert_eq!(norm_sq(&v), Rat::frac(13, 16));
    }
}
