//! Exact rational numbers as normalized [`BigInt`] fractions.

use crate::bigint::BigInt;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariant: `den > 0` and `gcd(num, den) == 1` (with `num == 0 ⇒ den == 1`).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rat {
    num: BigInt,
    den: BigInt,
}

impl Rat {
    /// The rational 0.
    pub fn zero() -> Self {
        Rat { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Rat { num: BigInt::one(), den: BigInt::one() }
    }

    /// Builds `num / den`, normalizing sign and common factors.
    ///
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.gcd(&den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Builds the integer rational `v/1`.
    pub fn from_int<T: Into<BigInt>>(v: T) -> Self {
        Rat { num: v.into(), den: BigInt::one() }
    }

    /// Builds `p/q` from machine integers.
    pub fn frac(p: i64, q: i64) -> Self {
        Rat::new(BigInt::from(p), BigInt::from(q))
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff the value is > 0.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the value is < 0.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Sign as -1, 0 or 1.
    pub fn signum(&self) -> i8 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Integer power (negative exponents allowed for nonzero values).
    pub fn pow(&self, e: i32) -> Rat {
        if e >= 0 {
            Rat { num: self.num.pow(e as u32), den: self.den.pow(e as u32) }
        } else {
            self.recip().pow(-e)
        }
    }

    /// Approximate `f64` value.
    ///
    /// Works for operands of any magnitude by dividing ~60-bit prefixes of the
    /// numerator and denominator and rescaling by the bit-length difference,
    /// so values near the subnormal range still convert correctly.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let nb = self.num.bit_len() as i64;
        let db = self.den.bit_len() as i64;
        if nb < 900 && db < 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let n_top = self.num.abs().shr((nb - 60).max(0) as usize).to_f64();
        let d_top = self.den.shr((db - 60).max(0) as usize).to_f64();
        let exp = (nb - 60).max(0) - (db - 60).max(0);
        let sign = if self.num.is_negative() { -1.0 } else { 1.0 };
        let mut v = n_top / d_top;
        // powi saturates sensibly for very large/small exponents.
        v *= 2.0f64.powi(exp.clamp(i32::MIN as i64, i32::MAX as i64) as i32);
        sign * v
    }

    /// Exact conversion from an `f64` (every finite float is a dyadic rational).
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(v: f64) -> Rat {
        assert!(v.is_finite(), "cannot convert non-finite float to Rat");
        if v == 0.0 {
            return Rat::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let mantissa = if exponent == 0 {
            (bits & 0xf_ffff_ffff_ffff) << 1
        } else {
            (bits & 0xf_ffff_ffff_ffff) | 0x10_0000_0000_0000
        };
        // value = sign * mantissa * 2^(exponent - 1075)
        let e = exponent - 1075;
        let m = BigInt::from(mantissa) * BigInt::from(sign);
        if e >= 0 {
            Rat::from_int(m * BigInt::from(2i64).pow(e as u32))
        } else {
            Rat::new(m, BigInt::from(2i64).pow((-e) as u32))
        }
    }

    /// Floor of the rational as a big integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling of the rational as a big integer.
    pub fn ceil(&self) -> BigInt {
        -((-self.clone()).floor())
    }

    /// The minimum of two rationals (by value).
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals (by value).
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_int(v)
    }
}

impl From<BigInt> for Rat {
    fn from(v: BigInt) -> Self {
        Rat::from_int(v)
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  (b, d > 0)  ⟺  a*d vs c*b
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

macro_rules! forward_ref_binop_rat {
    ($imp:ident, $method:ident) => {
        impl $imp<Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                (&self).$method(&rhs)
            }
        }
        impl $imp<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                (&self).$method(rhs)
            }
        }
        impl $imp<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$method(&rhs)
            }
        }
    };
}

impl Add<&Rat> for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        Rat::new(&(&self.num * &rhs.den) + &(&rhs.num * &self.den), &self.den * &rhs.den)
    }
}
forward_ref_binop_rat!(Add, add);

impl Sub<&Rat> for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        Rat::new(&(&self.num * &rhs.den) - &(&rhs.num * &self.den), &self.den * &rhs.den)
    }
}
forward_ref_binop_rat!(Sub, sub);

impl Mul<&Rat> for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        Rat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}
forward_ref_binop_rat!(Mul, mul);

impl Div<&Rat> for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}
forward_ref_binop_rat!(Div, div);

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -self.num, den: self.den }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        -self.clone()
    }
}

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, rhs: &Rat) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, rhs: &Rat) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == BigInt::one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// Error type for parsing a [`Rat`] from a string such as `"-3/4"` or `"2.5"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError;

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let n: BigInt = n.trim().parse().map_err(|_| ParseRatError)?;
            let d: BigInt = d.trim().parse().map_err(|_| ParseRatError)?;
            if d.is_zero() {
                return Err(ParseRatError);
            }
            return Ok(Rat::new(n, d));
        }
        if let Some((int, frac)) = s.split_once('.') {
            let neg = int.trim_start().starts_with('-');
            let int: BigInt = if int.is_empty() || int == "-" {
                BigInt::zero()
            } else {
                int.parse().map_err(|_| ParseRatError)?
            };
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRatError);
            }
            let scale = BigInt::from(10i64).pow(frac.len() as u32);
            let frac_val: BigInt = frac.parse().map_err(|_| ParseRatError)?;
            let mag = &(&int.abs() * &scale) + &frac_val;
            let signed = if neg { -mag } else { mag };
            return Ok(Rat::new(signed, scale));
        }
        let n: BigInt = s.parse().map_err(|_| ParseRatError)?;
        Ok(Rat::from_int(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn r(p: i64, q: i64) -> Rat {
        Rat::frac(p, q)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(0, 5).denom(), &BigInt::one());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
    }

    #[test]
    fn ordering_cross_multiplication() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 2) > r(10, 3));
        assert_eq!(r(3, 9), r(1, 3));
    }

    #[test]
    fn f64_exact_roundtrip() {
        for v in [0.0, 1.0, -2.5, 0.1, 1e-30, 123456.789, f64::MIN_POSITIVE] {
            let rv = Rat::from_f64(v);
            assert_eq!(rv.to_f64(), v, "roundtrip failed for {v}");
        }
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/4".parse::<Rat>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rat>().unwrap(), r(-3, 4));
        assert_eq!("2.5".parse::<Rat>().unwrap(), r(5, 2));
        assert_eq!("-0.125".parse::<Rat>().unwrap(), r(-1, 8));
        assert_eq!("17".parse::<Rat>().unwrap(), r(17, 1));
        assert!("1/0".parse::<Rat>().is_err());
        assert!("a.b".parse::<Rat>().is_err());
    }

    #[test]
    fn pow_negative_exponent() {
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Rat::one());
        assert_eq!(r(2, 3).pow(3), r(8, 27));
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(r(-3, 7).recip(), r(-7, 3));
    }

    proptest! {
        #[test]
        fn prop_field_axioms(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = r(a, b);
            let y = r(c, d);
            prop_assert_eq!(&x + &y, &y + &x);
            prop_assert_eq!(&x * &y, &y * &x);
            prop_assert_eq!(&(&x + &y) - &y, x.clone());
            if !y.is_zero() {
                prop_assert_eq!(&(&x / &y) * &y, x.clone());
            }
        }

        #[test]
        fn prop_ordering_consistent_with_f64(a in -10_000i64..10_000, b in 1i64..1000,
                                             c in -10_000i64..10_000, d in 1i64..1000) {
            let (x, y) = (r(a, b), r(c, d));
            let (fx, fy) = (a as f64 / b as f64, c as f64 / d as f64);
            if (fx - fy).abs() > 1e-6 {
                prop_assert_eq!(x < y, fx < fy);
            }
        }

        #[test]
        fn prop_from_f64_exact(v in -1.0e15f64..1.0e15) {
            let rv = Rat::from_f64(v);
            prop_assert_eq!(rv.to_f64(), v);
        }

        #[test]
        fn prop_display_parse_roundtrip(a in any::<i64>(), b in 1i64..1_000_000) {
            let x = r(a, b);
            prop_assert_eq!(x.to_string().parse::<Rat>().unwrap(), x);
        }
    }
}
