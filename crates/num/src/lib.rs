//! Exact arbitrary-precision arithmetic for the `explainable-knn` workspace.
//!
//! The k-NN explanation problems studied by the paper are extremely sensitive to
//! ties: the *optimistic* classification rule distinguishes `d(x,a) ≤ d(x,c)`
//! from `d(x,a) < d(x,c)`, and several hardness constructions place points at
//! exactly equal distances. Floating point cannot decide those ties reliably, so
//! the theory-facing code paths run on exact rationals ([`Rat`]) backed by a
//! sign-magnitude big integer ([`BigInt`]).
//!
//! The [`Field`] trait abstracts over the exact ([`Rat`]) and approximate
//! (`f64`, tolerance-based) instantiations so that the LP/QP solvers and the
//! explanation algorithms are written once and used in both modes:
//! `Rat` is the ground truth in tests, `f64` is the benchmarking path.
//!
//! Only `rand`/`proptest`/`criterion`/`crossbeam`/`parking_lot`/`bytes`/`serde`
//! are available offline, so this crate implements the big-number substrate from
//! scratch (see DESIGN.md §1).

#![warn(missing_docs)]

pub mod bigint;
pub mod field;
pub mod rat;

pub use bigint::BigInt;
pub use field::Field;
pub use rat::Rat;
