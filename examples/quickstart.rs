//! Quickstart: classify a point, explain it abductively ("which feature
//! values pin this decision?") and counterfactually ("what is the cheapest
//! change that flips it?") in both the continuous and the discrete setting.
//!
//! Run with: `cargo run --release --example quickstart`

use explainable_knn::prelude::*;

fn main() {
    continuous_demo();
    discrete_demo();
}

fn continuous_demo() {
    println!("=== Continuous setting (ℝ², ℓ2, k = 1) ===");
    // A toy 2-D dataset: positives in the upper-right, negatives lower-left.
    let ds = ContinuousDataset::from_sets(
        vec![vec![2.0, 2.0], vec![3.0, 1.5], vec![2.5, 3.0]],
        vec![vec![-1.0, -1.0], vec![0.0, -2.0], vec![-2.0, 0.5]],
    );
    let x = vec![1.5, 1.0];
    let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
    println!("f({x:?}) = {}", knn.classify(&x));

    // Abductive: a minimal sufficient reason (Proposition 3 / Corollary 1).
    let reason = L2Abductive::new(&ds, OddK::ONE).minimal(&x);
    println!("minimal sufficient reason (feature indices): {reason:?}");

    // Counterfactual: the infimum flip distance (Theorem 2).
    let cf = L2Counterfactual::new(&ds, OddK::ONE);
    let inf = cf.infimum(&x).expect("both classes present");
    println!(
        "closest counterfactual distance = {:.4} (attained: {}), toward {:?}",
        inf.dist_sq.sqrt(),
        inf.attained,
        inf.closure_witness
    );
    // A concrete witness within a slightly larger ball (Corollary 2).
    let witness = cf.within(&x, &(inf.dist_sq + 0.01)).expect("witness exists");
    println!("witness {witness:?} classifies as {}", knn.classify(&witness));
    println!();
}

fn discrete_demo() {
    println!("=== Discrete setting ({{0,1}}⁵, Hamming, k = 3) ===");
    let ds = BooleanDataset::from_sets(
        vec![
            BitVec::from_bits(&[1, 1, 1, 0, 0]),
            BitVec::from_bits(&[1, 1, 0, 0, 0]),
            BitVec::from_bits(&[1, 0, 1, 0, 0]),
        ],
        vec![
            BitVec::from_bits(&[0, 0, 0, 1, 1]),
            BitVec::from_bits(&[0, 0, 1, 1, 1]),
            BitVec::from_bits(&[0, 1, 0, 1, 1]),
        ],
    );
    let x = BitVec::from_bits(&[1, 1, 0, 1, 0]);
    let knn = BooleanKnn::new(&ds, OddK::THREE);
    println!("f({x}) = {}", knn.classify(&x));

    // Abductive explanations: minimal (greedy) and minimum (exact IHS).
    let ab = HammingAbductive::new(&ds, OddK::THREE);
    let minimal = ab.minimal(&x);
    let minimum = ab.minimum(&x);
    println!("minimal sufficient reason: {minimal:?}");
    println!("minimum sufficient reason: {minimum:?} (Σ₂ᵖ-complete for k ≥ 3!)");

    // Counterfactual via the paper's SAT encoding.
    let (cf, d) =
        hamming_counterfactual::closest_sat(&ds, OddK::THREE, &x).expect("both classes present");
    println!("closest counterfactual: {cf} at Hamming distance {d}");
    println!("flipped bits: {:?}", x.diff_indices(&cf));
}
