//! Explaining nearest-neighbor **retrieval** — the vector-database / RAG
//! scenario from the paper's introduction ("in Retrieval-Augmented Generation
//! systems ... the goal is to identify the most relevant sections of a
//! document for a given query ... by performing a nearest-neighbor query
//! within a textual-embedding space").
//!
//! A retrieval decision is a 1-NN classification: "does the query land closer
//! to corpus cluster A or corpus cluster B?" — so the paper's machinery
//! answers retrieval-audit questions directly:
//!
//! * **abductive**: which embedding dimensions *alone* pin the routing of
//!   this query to the `databases` shelf? (minimal sufficient reason, ℓ2,
//!   Proposition 3);
//! * **counterfactual**: what is the smallest embedding perturbation after
//!   which the query retrieves from the `networking` shelf instead?
//!   (Theorem 2 / Corollary 2).
//!
//! Embeddings here are synthetic topic mixtures (DESIGN.md §1 substitution:
//! no embedding model ships offline); the geometry exercised — clustered
//! unit-scale dense vectors — is the same.
//!
//! Run with: `cargo run --release --example rag_retrieval`

use explainable_knn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimension names make the feature-index explanations readable — in a real
/// deployment these would come from a sparse autoencoder or feature probe.
const DIMS: [&str; 8] = [
    "sql-syntax",
    "query-planning",
    "storage-engines",
    "transactions",
    "packet-routing",
    "congestion-control",
    "tls-handshake",
    "dns-resolution",
];

/// A synthetic embedding: topic-aligned dimensions high, others low noise.
fn embed(rng: &mut StdRng, topic_dims: &[usize]) -> Vec<f64> {
    (0..DIMS.len())
        .map(|i| {
            let base = if topic_dims.contains(&i) { 0.8 } else { 0.05 };
            base + rng.gen_range(-0.05..0.05)
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);

    // Corpus: a "databases" shelf (dims 0-3) and a "networking" shelf (4-7).
    let db_docs: Vec<Vec<f64>> = (0..6).map(|_| embed(&mut rng, &[0, 1, 2, 3])).collect();
    let net_docs: Vec<Vec<f64>> = (0..6).map(|_| embed(&mut rng, &[4, 5, 6, 7])).collect();
    let ds = ContinuousDataset::from_sets(db_docs, net_docs);

    // The user's query: mostly databases, with a networking tinge
    // ("how do distributed databases handle connection timeouts?").
    let mut query = embed(&mut rng, &[1, 2]);
    query[5] = 0.45; // congestion-control flavor
    query[6] = 0.30; // tls flavor

    let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
    let shelf = |l: Label| if l.is_positive() { "databases" } else { "networking" };
    let label = knn.classify(&query);
    println!("query routed to: the `{}` shelf\n", shelf(label));

    // ---- Abductive audit -------------------------------------------------
    // Under ℓ2 with unbounded features, freeing almost any single dimension
    // admits an extreme-valued counterexample, so minimal ℓ2 reasons are
    // near-total — an instructive artifact of the continuous setting. The ℓ1
    // audit (Proposition 4, the Figure-6a path) is the informative one: its
    // counterexamples substitute actual corpus values.
    let l2_reason = L2Abductive::new(&ds, OddK::ONE).minimal(&query);
    let reason = L1Abductive::new(&ds).minimal(&query);
    println!(
        "minimal sufficient reason — ℓ1 audit (ℓ2 needs {} of {} dims: unbounded\n\
         completions make single freed dimensions flippable):",
        l2_reason.len(),
        DIMS.len()
    );
    for &i in &reason {
        println!("  [{i}] {:<20} = {:.3}", DIMS[i], query[i]);
    }
    println!(
        "  (any query agreeing on these {} of {} dimensions routes identically under ℓ1)\n",
        reason.len(),
        DIMS.len()
    );

    // ---- Counterfactual audit --------------------------------------------
    let cf = L2Counterfactual::new(&ds, OddK::ONE);
    let inf = cf.infimum(&query).expect("both shelves nonempty");
    println!("smallest embedding change that flips the routing: ‖Δ‖₂ = {:.4}", inf.dist_sq.sqrt());
    let witness =
        cf.within(&query, &(inf.dist_sq * 1.02 + 1e-9)).expect("witness just past the infimum");
    println!("a concrete re-routed query (changes ≥ 0.02 shown):");
    for i in 0..DIMS.len() {
        let delta = witness[i] - query[i];
        if delta.abs() >= 0.02 {
            println!(
                "  [{i}] {:<20} {:.3} → {:.3}  (Δ {delta:+.3})",
                DIMS[i], query[i], witness[i]
            );
        }
    }
    assert_eq!(knn.classify(&witness), label.flip());
    println!("\nre-routed query retrieves from: the `{}` shelf", shelf(knn.classify(&witness)));

    // ---- Per-document view ------------------------------------------------
    // The classic "data perspective" the paper contrasts with: which corpus
    // document actually won the retrieval, before and after.
    let nearest = |q: &[f64]| {
        (0..ds.len())
            .min_by(|&a, &b| {
                let da = LpMetric::L2.dist_f64(q, ds.point(a));
                let db = LpMetric::L2.dist_f64(q, ds.point(b));
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
    };
    println!(
        "\nnearest document before: #{} ({})  —  after: #{} ({})",
        nearest(&query),
        shelf(ds.label(nearest(&query))),
        nearest(&witness),
        shelf(ds.label(nearest(&witness))),
    );
    println!(
        "\nThe feature-perspective explanation ({} dims + one Δ vector) stays this\n\
         small at any corpus size; the data-perspective one grows with the corpus\n\
         and says nothing about *which aspects* of the query mattered (cf. §1).",
        reason.len()
    );
}
