//! Figure 1 reproduction: a 1-NN counterfactual on binarized digit images,
//! 4 vs 9 — the paper's motivating example ("13 pixels flip a 4 into a 9").
//!
//! MNIST is substituted by the stroke-rendered digits of `knn-datasets`
//! (DESIGN.md §1); the qualitative phenomenon is identical: a small set of
//! structurally meaningful pixels separates the two digit classes.
//!
//! Run with: `cargo run --release --example mnist_counterfactual`

use explainable_knn::datasets::digits::{
    ascii_art_binary, binarize, binary_digits_dataset, render_digit, DigitsConfig,
};
use explainable_knn::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);
    let side = 12;
    let cfg = DigitsConfig::new(side);

    // Training set: digit 4 positive, digit 9 negative (one-vs-rest protocol).
    let ds = binary_digits_dataset(&mut rng, &cfg, &[4, 9], 4, 40);
    let knn = BooleanKnn::new(&ds, OddK::ONE);

    // A fresh test image of a 4.
    let test = binarize(&render_digit(&mut rng, 4, &cfg), 0.5);
    let label = knn.classify(&test);
    println!("(a) test image — classified {label} ({} = digit 4)\n", Label::Positive);
    println!("{}", ascii_art_binary(&test, side, &[]));

    // Its nearest neighbor (panel b).
    let hamming_index =
        explainable_knn::index::HammingIndex::new(ds.iter().map(|(p, _)| p.clone()).collect());
    let (nn_idx, nn_d) = hamming_index.nearest(&test).unwrap();
    println!("(b) nearest neighbor of (a): point #{nn_idx} at distance {nn_d}\n");
    println!("{}", ascii_art_binary(ds.point(nn_idx), side, &[]));

    // The closest counterfactual via the paper's SAT encoding (panel c). The
    // anytime budget keeps the demo snappy; `proven` reports whether the
    // final optimality proof completed within it.
    let (cf, cf_d, proven) =
        hamming_counterfactual::closest_sat_budgeted(&ds, OddK::ONE, &test, 150_000)
            .expect("counterfactual exists");
    assert_ne!(knn.classify(&cf), label);
    println!(
        "(c) closest counterfactual — {cf_d} pixels flipped{}, now classified as a 9\n",
        if proven { " (proven minimal)" } else { " (best found within solver budget)" }
    );
    println!("{}", ascii_art_binary(&cf, side, &[]));

    // Its nearest neighbor (panel d).
    let (nn2_idx, nn2_d) = hamming_index.nearest(&cf).unwrap();
    println!("(d) nearest neighbor of (c): point #{nn2_idx} at distance {nn2_d}\n");
    println!("{}", ascii_art_binary(ds.point(nn2_idx), side, &[]));

    // Diff maps (panels e–g): changed pixels marked with '*'.
    let diff_ac = test.diff_indices(&cf);
    println!(
        "(e) diff map between (a) and (c): the {} pixels of the counterfactual explanation\n",
        diff_ac.len()
    );
    println!("{}", ascii_art_binary(&test, side, &diff_ac));

    let diff_ab = test.diff_indices(ds.point(nn_idx));
    println!("(f) diff map between (a) and (b): {} pixels\n", diff_ab.len());
    println!("{}", ascii_art_binary(&test, side, &diff_ab));

    let diff_cd = cf.diff_indices(ds.point(nn2_idx));
    println!("(g) diff map between (c) and (d): {} pixels\n", diff_cd.len());
    println!("{}", ascii_art_binary(&cf, side, &diff_cd));

    println!(
        "Summary: {cf_d} pixel flips (out of {} features) change the classification, \
         echoing the paper's 13-pixel example.",
        side * side
    );
}
