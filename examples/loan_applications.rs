//! A tabular, "high-stakes decision" scenario from the XAI motivation of the
//! paper's introduction: loan approval with a k-NN model over continuous
//! features, explained abductively and counterfactually.
//!
//! Features (all scaled to comparable ranges):
//!   0: income (×10k$)   1: debt ratio (×10)   2: years employed
//!   3: credit score (×100)   4: late payments
//!
//! Run with: `cargo run --release --example loan_applications`

use explainable_knn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const FEATURES: [&str; 5] =
    ["income(×10k$)", "debt_ratio(×10)", "years_employed", "credit_score(×100)", "late_payments"];

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Synthetic historical decisions: approved applicants have high income /
    // score and low debt; rejected the opposite, with noise.
    let mut approved = Vec::new();
    let mut rejected = Vec::new();
    for _ in 0..40 {
        approved.push(vec![
            rng.gen_range(6.0..12.0),
            rng.gen_range(0.5..3.0),
            rng.gen_range(3.0..20.0),
            rng.gen_range(6.5..8.5),
            rng.gen_range(0.0..1.5),
        ]);
        rejected.push(vec![
            rng.gen_range(1.0..6.0),
            rng.gen_range(3.0..8.0),
            rng.gen_range(0.0..6.0),
            rng.gen_range(3.0..6.5),
            rng.gen_range(1.0..6.0),
        ]);
    }
    let ds = ContinuousDataset::from_sets(approved, rejected);
    let k = OddK::THREE;
    let knn = ContinuousKnn::new(&ds, LpMetric::L2, k);

    // A borderline applicant.
    let applicant = vec![5.5, 3.2, 2.0, 6.4, 1.0];
    let decision = knn.classify(&applicant);
    println!("Applicant {applicant:?}");
    println!(
        "3-NN decision: {}\n",
        if decision == Label::Positive { "APPROVED" } else { "REJECTED" }
    );

    // Abductive: which of the applicant's feature values suffice to lock in
    // this decision, no matter what the other features were?
    let reason = L2Abductive::new(&ds, k).minimal(&applicant);
    println!("Minimal sufficient reason (Prop 3 + greedy deletion):");
    for &i in &reason {
        println!("  - {} = {:.2}", FEATURES[i], applicant[i]);
    }
    if reason.is_empty() {
        println!("  (empty: every completion of any feature subset keeps the decision)");
    }

    // Counterfactual: the smallest ℓ2 change that flips the decision.
    let cf = L2Counterfactual::new(&ds, k);
    match cf.infimum(&applicant) {
        Some(inf) => {
            println!(
                "\nSmallest decision-flipping change (Thm 2): ℓ2 distance {:.3}{}",
                inf.dist_sq.sqrt(),
                if inf.attained { "" } else { " (open boundary — approach arbitrarily closely)" }
            );
            let boundary = cf
                .within(&applicant, &(inf.dist_sq * 1.02 + 1e-9))
                .expect("witness within slightly enlarged ball");
            // `within` may return a point exactly on the decision boundary
            // (a correct witness under the optimistic tie rule, but an exact
            // tie is rounding-sensitive to re-check in f64) — step a little
            // further along the same direction to land strictly inside.
            let mut witness = boundary.clone();
            let mut overshoot = 1.001;
            while knn.classify(&witness) == decision && overshoot < 1.2 {
                for i in 0..witness.len() {
                    witness[i] = applicant[i] + (boundary[i] - applicant[i]) * overshoot;
                }
                overshoot += 0.01;
            }
            println!("A concrete flipped profile:");
            for i in 0..FEATURES.len() {
                let delta = witness[i] - applicant[i];
                if delta.abs() > 1e-6 {
                    println!(
                        "  - {}: {:.2} → {:.2} ({:+.2})",
                        FEATURES[i], applicant[i], witness[i], delta
                    );
                }
            }
            assert_ne!(knn.classify(&witness), decision);
        }
        None => println!("\nNo counterfactual exists (the model is constant)."),
    }

    // The ℓ1 view: sparse counterfactuals (fewest total feature change).
    // ℓ1 counterfactuals are NP-complete even for singleton classes
    // (Theorem 4), and the exact MILP's branch & bound grows with the number
    // of min-selector binaries — one per training point — so the demo runs
    // it on a history subsample, the way a per-case audit would.
    let mut small = ContinuousDataset::new(ds.dim());
    for i in 0..ds.len() {
        if i % 8 == 0 {
            small.push(ds.point(i).to_vec(), ds.label(i));
        }
    }
    let ds = small;
    let l1 = L1Counterfactual::new(&ds);
    // 1-NN for the ℓ1 engine (Theorem 4 setting).
    if let Some((w, d)) = l1.closest(&applicant) {
        println!("\nℓ1 (sparsity-seeking) counterfactual for the 1-NN view: total change {d:.3}");
        for i in 0..FEATURES.len() {
            let delta = w[i] - applicant[i];
            if delta.abs() > 1e-6 {
                println!("  - {}: {:+.3}", FEATURES[i], delta);
            }
        }
    }
}
