//! Walks the paper's complexity landscape (Table 1) on live instances:
//! for each cell, runs the corresponding algorithm or executable reduction
//! and reports what tractability means operationally.
//!
//! Run with: `cargo run --release --example complexity_landscape`

use explainable_knn::prelude::*;
use explainable_knn::reductions::{
    bmcf, interdiction, knapsack_l1, partition_l1, vc_check_sr, vertex_cover_msr,
};
use knn_datasets::combinatorial::{HalfValueKnapsack, PartitionInstance};
use knn_datasets::Graph;

fn main() {
    println!("Table 1 — the complexity landscape, executed\n");

    // ---- (ℝ, D₂): everything but Minimum-SR is polynomial ----
    println!("ℓ2 / Counterfactual: P (Thm 2)");
    let ds = ContinuousDataset::from_sets(
        vec![vec![Rat::from_int(0), Rat::from_int(0)]],
        vec![vec![Rat::from_int(4), Rat::from_int(0)]],
    );
    let cf = L2Counterfactual::new(&ds, OddK::ONE);
    let inf = cf.infimum(&[Rat::from_int(0), Rat::from_int(0)]).unwrap();
    println!("   exact infimum distance² = {} (per-polyhedron QP)\n", inf.dist_sq);

    println!("ℓ2 / Check-SR & minimal SR: P for fixed k (Prop 3, Cor 1)");
    let ab = L2Abductive::new(&ds, OddK::ONE);
    let minimal = ab.minimal(&[Rat::from_int(0), Rat::from_int(0)]);
    println!("   minimal sufficient reason: {minimal:?}\n");

    println!("ℓ2 / Minimum-SR: NP-complete (Thm 1, Cor 6) — Vertex Cover embeds:");
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let inst = vertex_cover_msr::continuous_instance(&g, OddK::ONE);
    let msr = L2Abductive::new(&inst.ds, OddK::ONE).minimum(&inst.x);
    println!(
        "   path P4: min vertex cover = {}, minimum SR = {} (IHS loop, exact)\n",
        g.min_vertex_cover_size(),
        msr.len()
    );

    // ---- (ℝ, D₁) ----
    println!("ℓ1 / Counterfactual: NP-complete even with |S⁺|=|S⁻|=1 (Thm 4) — Knapsack embeds:");
    let ks = HalfValueKnapsack { weights: vec![2, 2, 10], values: vec![3, 3, 6], capacity: 4 };
    let kinst = knapsack_l1::instance_k1(&ks);
    println!(
        "   knapsack answer {} ⟺ CF-within-{} answer {}\n",
        ks.brute_force(),
        kinst.radius,
        knapsack_l1::decide_by_restriction(&ks, &kinst)
    );

    println!("ℓ1 / Check-SR: P for k = 1 (Prop 4), coNP-complete for k ≥ 3 (Thm 5):");
    let p = PartitionInstance { values: vec![1, 2, 3] };
    let pinst = partition_l1::instance(&p, OddK::THREE);
    println!(
        "   partition {{1,2,3}} solvable = {} ⟺ aux-block NOT sufficient = {}\n",
        p.brute_force(),
        !partition_l1::is_sufficient_by_restriction(&p, &pinst)
    );

    // ---- ({0,1}, D_H) ----
    println!("Hamming / Counterfactual: NP-complete (Thm 6) — Vertex Cover → BMCF → CF:");
    let gb = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    for l in [1usize, 2] {
        let b = bmcf::vertex_cover_to_bmcf(&gb, l, 0);
        let c = bmcf::bmcf_to_counterfactual(&b);
        let ans =
            explainable_knn::core::counterfactual::hamming::within_sat(&c.ds, c.k, &c.x, c.radius);
        println!(
            "   cover of size ≤ {l}? VC says {}, the SAT CF pipeline says {ans}",
            gb.has_vertex_cover_of_size(l)
        );
    }
    println!();

    println!("Hamming / Check-SR: P for k = 1 (Prop 6), coNP-complete for k ≥ 3 (Thm 7):");
    let ans = vc_check_sr::vertex_cover_via_check_sr(&gb, 2, OddK::THREE);
    println!("   τ(P4) ≤ 2 decided through the k=3 Check-SR reduction: {ans}\n");

    println!("Hamming / Minimum-SR: NP-c for k = 1 (Cor 6), Σ₂ᵖ-complete for k ≥ 3 (Thm 8):");
    let triangle = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
    let dinst = vertex_cover_msr::discrete_instance(&triangle);
    let ab = HammingAbductive::new(&dinst.ds, OddK::ONE);
    println!(
        "   triangle: min vertex cover = {}, minimum SR = {}",
        triangle.min_vertex_cover_size(),
        ab.minimum(&dinst.x).len()
    );
    let eavc = interdiction::exists_forall_vertex_cover(&gb, 1, 2);
    let via = interdiction::eavc_via_minimum_sr(&gb, 1, 2, OddK::THREE);
    println!("   ∃∀-VC(P4, p=1, q=2) brute force = {eavc}, via Σ₂ᵖ Minimum-SR = {via}");
}
