//! Cross-crate integration tests exercising the public facade end-to-end:
//! explanation pipelines that combine the classifier, the LP/QP/SAT/MILP
//! substrates and the dataset generators, with solver paths cross-validated
//! against each other and against brute force.

use explainable_knn::core::abductive::l1::minimal_sufficient_reason_f64;
use explainable_knn::core::{brute, counterfactual};
use explainable_knn::datasets::digits::{binary_digits_dataset, digits_dataset, DigitsConfig};
use explainable_knn::datasets::random::{random_boolean_dataset, random_boolean_point};
use explainable_knn::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sufficient reason produced by any engine must survive the brute-force
/// definition check, and the counterfactual produced by SAT must match the
/// MILP route and brute force — all on the same random discrete instances.
#[test]
fn discrete_pipelines_agree_end_to_end() {
    let mut rng = StdRng::seed_from_u64(1000);
    for round in 0..15 {
        let dim = rng.gen_range(3..7usize);
        let npts = rng.gen_range(4..9usize);
        let ds = random_boolean_dataset(&mut rng, npts, dim, 0.5);
        let x = random_boolean_point(&mut rng, dim);
        let knn = BooleanKnn::new(&ds, OddK::ONE);

        // Abductive route.
        let ab = HammingAbductive::new(&ds, OddK::ONE);
        let minimal = ab.minimal(&x);
        assert!(
            brute::is_sufficient_reason(&knn, &x, &minimal),
            "round {round}: minimal SR fails the definition"
        );
        let minimum = ab.minimum(&x);
        assert_eq!(
            minimum.len(),
            brute::minimum_sufficient_reason(&knn, &x).len(),
            "round {round}: minimum size mismatch"
        );
        assert!(minimum.len() <= minimal.len());

        // Counterfactual routes.
        let sat = counterfactual::hamming::closest_sat(&ds, OddK::ONE, &x);
        let milp = counterfactual::hamming::closest_milp(&ds, &x);
        let brute_cf = brute::closest_counterfactual(&knn, &x);
        match (sat, milp, brute_cf) {
            (Some((_, a)), Some((_, b)), Some((_, c))) => {
                assert_eq!(a, b, "round {round}: SAT vs MILP");
                assert_eq!(a, c, "round {round}: SAT vs brute");
            }
            (None, None, None) => {}
            other => panic!("round {round}: inconsistent outcomes {other:?}"),
        }
    }
}

/// Exact (rational) and float ℓ2 pipelines agree on integer-coordinate data.
#[test]
fn continuous_exact_vs_float_pipelines() {
    let mut rng = StdRng::seed_from_u64(1001);
    for _ in 0..10 {
        let dim = rng.gen_range(1..4usize);
        let gen =
            |rng: &mut StdRng| -> Vec<i64> { (0..dim).map(|_| rng.gen_range(-4i64..5)).collect() };
        let pos: Vec<Vec<i64>> = (0..rng.gen_range(1..4usize)).map(|_| gen(&mut rng)).collect();
        let neg: Vec<Vec<i64>> = (0..rng.gen_range(1..4usize)).map(|_| gen(&mut rng)).collect();
        let x = gen(&mut rng);
        let dsr = ContinuousDataset::from_sets(
            pos.iter().map(|p| p.iter().map(|&v| Rat::from_int(v)).collect()).collect(),
            neg.iter().map(|p| p.iter().map(|&v| Rat::from_int(v)).collect()).collect(),
        );
        let dsf = ContinuousDataset::from_sets(
            pos.iter().map(|p| p.iter().map(|&v| v as f64).collect()).collect(),
            neg.iter().map(|p| p.iter().map(|&v| v as f64).collect()).collect(),
        );
        let xr: Vec<Rat> = x.iter().map(|&v| Rat::from_int(v)).collect();
        let xf: Vec<f64> = x.iter().map(|&v| v as f64).collect();
        let minimal_exact = L2Abductive::new(&dsr, OddK::ONE).minimal(&xr);
        let minimal_float = L2Abductive::new(&dsf, OddK::ONE).minimal(&xf);
        assert_eq!(minimal_exact, minimal_float, "pos={pos:?} neg={neg:?} x={x:?}");
    }
}

/// The digit workload: 1-NN explains digit classifications; the ℓ1 minimal
/// SR engine (Fig 6a path) and the exact checker agree, and the SAT
/// counterfactual flips the predicted digit.
#[test]
fn digits_explanations_work() {
    let mut rng = StdRng::seed_from_u64(1002);
    let cfg = DigitsConfig::new(8);
    // Grayscale for ℓ1, binarized for Hamming.
    let gray = digits_dataset(&mut rng, &cfg, &[1, 8], 8, 10);
    let query = knn_datasets::digits::render_digit(&mut rng, 8, &cfg);
    let sr = minimal_sufficient_reason_f64(&gray, &query);
    assert!(!sr.is_empty(), "nontrivial data needs a nonempty reason");
    // Verify with the generic engine.
    let ab = L1Abductive::new(&gray);
    assert!(ab.is_sufficient(&query, &sr));

    let bin = binary_digits_dataset(&mut rng, &cfg, &[1, 8], 8, 10);
    let bknn = BooleanKnn::new(&bin, OddK::ONE);
    let bq = knn_datasets::digits::binarize(&query, 0.5);
    let before = bknn.classify(&bq);
    // Structured digit data makes the final SAT *optimality proofs* explode
    // (the cardinality-UNSAT pathology EXPERIMENTS.md documents), so the
    // anytime API is the right tool here: the best-found witness is still a
    // guaranteed-valid counterfactual even when not proven closest.
    if let Some((cf, d, _proven)) =
        counterfactual::hamming::closest_sat_budgeted(&bin, OddK::ONE, &bq, 50_000)
    {
        assert_ne!(bknn.classify(&cf), before);
        assert_eq!(bq.hamming(&cf), d);
    }
}

/// The ε-LP strict feasibility and QP projection compose correctly inside
/// the ℓ2 counterfactual: witnesses are strictly inside open cells.
#[test]
fn l2_counterfactual_witness_is_strict() {
    let ds = ContinuousDataset::from_sets(
        vec![vec![Rat::from_int(0), Rat::from_int(0)]],
        vec![vec![Rat::from_int(2), Rat::from_int(2)]],
    );
    let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
    let x = vec![Rat::from_int(0), Rat::from_int(0)];
    assert_eq!(knn.classify(&x), Label::Positive);
    let cf = L2Counterfactual::new(&ds, OddK::ONE);
    let inf = cf.infimum(&x).unwrap();
    assert_eq!(inf.dist_sq, Rat::from_int(2)); // bisector at (1,1)
    assert!(!inf.attained);
    // Any witness inside radius² = 2.5 must classify negative *strictly*.
    let w = cf.within(&x, &Rat::frac(5, 2)).unwrap();
    assert_eq!(knn.classify(&w), Label::Negative);
}

/// Thinning preserves explanations usefully: on clustered data, explanations
/// computed on the condensed set remain sufficient reasons w.r.t. it.
#[test]
fn thinning_then_explaining() {
    let mut rng = StdRng::seed_from_u64(1003);
    let dim = 16;
    let mut ds = BooleanDataset::new(dim);
    for _ in 0..15 {
        let mut p = BitVec::zeros(dim);
        let mut q = BitVec::ones(dim);
        for _ in 0..2 {
            p.flip(rng.gen_range(0..dim));
            q.flip(rng.gen_range(0..dim));
        }
        ds.push(p, Label::Positive);
        ds.push(q, Label::Negative);
    }
    let kept = explainable_knn::core::thinning::condense_1nn(&ds);
    assert!(kept.len() < ds.len());
    let thin = explainable_knn::core::thinning::subset(&ds, &kept);
    let x = BitVec::zeros(dim);
    let sr = HammingAbductive::new(&thin, OddK::ONE).minimal(&x);
    let knn_thin = BooleanKnn::new(&thin, OddK::ONE);
    assert!(brute::is_sufficient_reason(&knn_thin, &x, &sr));
}

/// Multi-label reduction composes with the facade.
#[test]
fn multilabel_facade() {
    use explainable_knn::core::multilabel::MultiLabelDataset;
    let mut ds = MultiLabelDataset::new(4);
    ds.push(BitVec::from_bits(&[0, 0, 0, 0]), 0);
    ds.push(BitVec::from_bits(&[1, 1, 0, 0]), 1);
    ds.push(BitVec::from_bits(&[0, 0, 1, 1]), 2);
    let x = BitVec::from_bits(&[1, 0, 0, 0]);
    let label = ds.classify_1nn(&x);
    assert_eq!(label, 0);
    let (cf, d) = ds.closest_counterfactual(&x).unwrap();
    assert_ne!(ds.classify_1nn(&cf), label);
    assert_eq!(x.hamming(&cf), d);
}

/// Greedy (polynomial) minimum-SR mode upper-bounds the exact mode.
#[test]
fn greedy_vs_exact_minimum_modes() {
    let mut rng = StdRng::seed_from_u64(1004);
    for _ in 0..10 {
        let ds = random_boolean_dataset(&mut rng, 6, 5, 0.5);
        let x = random_boolean_point(&mut rng, 5);
        let ab = HammingAbductive::new(&ds, OddK::ONE);
        let exact = ab.minimum_with(&x, HittingSetMode::Exact);
        let greedy = ab.minimum_with(&x, HittingSetMode::Greedy);
        assert!(exact.len() <= greedy.len());
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        assert!(brute::is_sufficient_reason(&knn, &x, &greedy));
    }
}
