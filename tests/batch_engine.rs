//! Integration: the batch engine must agree exactly with the single-query
//! CLI path (`cli::run_query`) across all three metric settings, and the
//! `xknn batch` subcommand must serve deterministic JSON-lines end-to-end.

use explainable_knn::cli::{self, run_query, MetricChoice, QueryOutput};
use explainable_knn::prelude::*;
use knn_engine::{EngineConfig, EngineData, Metric, Outcome, QueryKind, Request};
use std::io::Write;
use std::process::{Command, Stdio};

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";
const CONT: &str = "+ 2.0 2.0\n+ 3.0 1.5\n+ 1.0 2.5\n- -1.0 -1.0\n- 0.0 -2.0\n- -2.0 0.5\n";

fn engine_for(text: &str, workers: usize) -> (cli::ParsedData, ExplanationEngine) {
    let data = cli::parse_dataset(text).unwrap();
    let engine =
        cli::batch_engine(&data, cli::BatchOptions { workers, ..cli::BatchOptions::default() });
    (data, engine)
}

fn request(kind: &str, metric: &str, k: u32, point: &[f64], features: Option<&[usize]>) -> Request {
    Request {
        id: "t".into(),
        kind: QueryKind::parse(kind).unwrap(),
        metric: Metric::parse(metric).unwrap(),
        k,
        point: point.to_vec(),
        features: features.map(|f| f.to_vec()),
    }
}

/// Engine outcome == CLI outcome, field by field.
fn assert_agrees(
    data: &cli::ParsedData,
    engine: &ExplanationEngine,
    kind: &str,
    metric_s: &str,
    k: u32,
    point: &[f64],
    features: Option<&[usize]>,
) {
    let metric = MetricChoice::parse(metric_s).unwrap();
    let cli_out = run_query(data, metric, k, kind, point, features);
    let resp = engine.run(&request(kind, metric_s, k, point, features));
    match (cli_out, resp.result) {
        (Err(_), Err(_)) => {}
        (Ok(QueryOutput::Label(a)), Ok(Outcome::Label(b))) => {
            assert_eq!(a, b, "{kind}/{metric_s}/k={k}/{point:?}")
        }
        (Ok(QueryOutput::Reason(a)), Ok(Outcome::Reason { features: b, optimal: true })) => {
            assert_eq!(a, b, "{kind}/{metric_s}/k={k}/{point:?}")
        }
        (
            Ok(QueryOutput::Check { sufficient: a, witness: wa }),
            Ok(Outcome::Check { sufficient: b, witness: wb }),
        ) => {
            assert_eq!(a, b, "{kind}/{metric_s}/k={k}/{point:?}");
            assert_eq!(wa.is_some(), wb.is_some());
        }
        (
            Ok(QueryOutput::Counterfactual { point: pa, dist: da, proven: va }),
            Ok(Outcome::Counterfactual { point: pb, dist: db, proven: vb }),
        ) => {
            assert_eq!(pa, pb, "{kind}/{metric_s}/k={k}/{point:?}");
            assert_eq!(da, db);
            assert_eq!(va, vb);
        }
        (Ok(QueryOutput::NoCounterfactual), Ok(Outcome::NoCounterfactual)) => {}
        (a, b) => panic!("{kind}/{metric_s}/k={k}/{point:?}: CLI {a:?} vs engine {b:?}"),
    }
}

#[test]
fn engine_matches_cli_on_hamming() {
    let (data, engine) = engine_for(BOOL, 3);
    let points: [&[f64]; 3] =
        [&[1.0, 1.0, 0.0, 1.0, 0.0], &[0.0, 0.0, 0.0, 0.0, 0.0], &[1.0, 0.0, 1.0, 0.0, 1.0]];
    for point in points {
        for k in [1, 3] {
            for kind in ["classify", "minimal-sr", "minimum-sr", "counterfactual"] {
                assert_agrees(&data, &engine, kind, "hamming", k, point, None);
            }
            assert_agrees(&data, &engine, "check-sr", "hamming", k, point, Some(&[0, 3]));
        }
    }
}

#[test]
fn engine_matches_cli_on_l2() {
    let (data, engine) = engine_for(CONT, 3);
    let points: [&[f64]; 3] = [&[1.5, 1.0], &[-0.5, 0.25], &[0.0, 0.0]];
    for point in points {
        for k in [1, 3] {
            for kind in ["classify", "minimal-sr", "minimum-sr", "counterfactual"] {
                assert_agrees(&data, &engine, kind, "l2", k, point, None);
            }
            assert_agrees(&data, &engine, "check-sr", "l2", k, point, Some(&[0]));
        }
    }
}

#[test]
fn engine_matches_cli_on_l1() {
    let (data, engine) = engine_for(CONT, 3);
    let points: [&[f64]; 2] = [&[1.5, 1.0], &[-0.5, -0.5]];
    for point in points {
        // k = 1: the only exact ℓ1 regime (Table 1).
        for kind in ["classify", "minimal-sr", "minimum-sr", "counterfactual"] {
            assert_agrees(&data, &engine, kind, "l1", 1, point, None);
        }
        assert_agrees(&data, &engine, "check-sr", "l1", 1, point, Some(&[1]));
        // k = 3: both sides must refuse the abductive cells identically.
        for kind in ["minimal-sr", "minimum-sr", "check-sr"] {
            let metric = MetricChoice::parse("l1").unwrap();
            assert!(run_query(&data, metric, 3, kind, point, Some(&[0])).is_err());
            let resp = engine.run(&request(kind, "l1", 3, point, Some(&[0])));
            assert!(resp.result.is_err(), "engine must also refuse {kind} l1 k=3");
        }
    }
}

/// The lazy-region swap oracle: for every ℓ2 abductive / counterfactual
/// query kind, on both demo datasets, across k ∈ {1, 3, 5}, the engine's
/// answers must be **byte-identical** whether the Prop 1 regions come from
/// the lazy, pruned enumerator (serving path) or the eagerly materialized
/// `RegionCache` (oracle path, `eager_l2_regions`). k = 5 is the case the
/// eager path could not serve at scale; here both run, pinning the bytes.
#[test]
fn lazy_and_eager_region_engines_are_byte_identical() {
    for text in [BOOL, CONT] {
        let data = cli::parse_dataset(text).unwrap();
        let mut lines = String::new();
        let dim = data.continuous.dim();
        let points: Vec<Vec<f64>> = vec![
            vec![0.25; dim],
            vec![1.0; dim],
            (0..dim).map(|i| if i % 2 == 0 { -0.5 } else { 2.0 }).collect(),
        ];
        let mut id = 0;
        for point in &points {
            let pt = point.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(",");
            for k in [1, 3, 5] {
                for cmd in ["check-sr", "minimal-sr", "minimum-sr", "counterfactual"] {
                    let features = if cmd == "check-sr" { ",\"features\":[0]" } else { "" };
                    lines.push_str(&format!(
                        "{{\"id\":\"q{id}\",\"cmd\":\"{cmd}\",\"metric\":\"l2\",\"k\":{k},\"point\":[{pt}]{features}}}\n",
                    ));
                    id += 1;
                }
            }
        }
        let engine_of = |eager: bool| {
            ExplanationEngine::new(
                EngineData::new(data.continuous.clone(), data.boolean.clone()),
                EngineConfig { eager_l2_regions: eager, ..EngineConfig::default() },
            )
        };
        let (lazy_out, _) = engine_of(false).run_jsonl(&lines);
        let (eager_out, _) = engine_of(true).run_jsonl(&lines);
        assert_eq!(lazy_out, eager_out, "lazy and eager region paths must not differ by a byte");
        for line in lazy_out.lines() {
            assert!(line.contains("\"ok\":true"), "all ℓ2 queries must be served: {line}");
        }
    }
}

/// k = 5 at a size the eager path never served (2 × C(14,3)·C(14,2) ≈ 66k
/// polyhedra materialized before the first answer — the bench quantifies the
/// blowup): the lazy engine must answer counterfactual and check-sr queries
/// directly, with valid witnesses. Witnesses are verified with the exact
/// `Rat` classifier: positive-target witnesses may sit exactly on a bisector
/// (the closed region's boundary), where f64 tie-breaking is unreliable but
/// the paper's optimistic rule is well-defined.
#[test]
fn lazy_regions_serve_k5_beyond_eager_reach() {
    // Two interleaved 3-D lattice clusters, 14 points per class.
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for i in 0..14i64 {
        let (a, b, c) = (i % 3, (i / 3) % 3, i / 9);
        pos.push(vec![a as f64, b as f64, c as f64]);
        neg.push(vec![a as f64 + 4.0, b as f64 + 0.5, c as f64 + 0.25]);
    }
    let ds = knn_space::ContinuousDataset::from_sets(pos, neg);
    let engine =
        ExplanationEngine::new(EngineData::from_continuous(ds.clone()), EngineConfig::default());
    let k = 5u32;
    let exact_ds = ds.map_field(|&v| knn_num::Rat::from_f64(v));
    let exact_knn =
        knn_core::ContinuousKnn::new(&exact_ds, knn_space::LpMetric::L2, knn_space::OddK::of(k));
    let classify = |p: &[f64]| {
        exact_knn.classify(&p.iter().map(|&v| knn_num::Rat::from_f64(v)).collect::<Vec<_>>())
    };

    for (i, x) in [vec![1.0, 1.0, 1.0], vec![4.5, 1.5, 1.0]].iter().enumerate() {
        let label = classify(x);
        let cf = engine.run(&Request {
            id: format!("cf{i}"),
            kind: QueryKind::Counterfactual,
            metric: Metric::L2,
            k,
            point: x.clone(),
            features: None,
        });
        match cf.result.expect("k = 5 counterfactual must be served") {
            Outcome::Counterfactual { point, dist, proven } => {
                assert!(proven, "ℓ2 region route is exact");
                assert!(dist > 0.0);
                assert_eq!(classify(&point), label.flip(), "witness must flip the label");
            }
            other => panic!("expected a counterfactual, got {other:?}"),
        }
        let check = engine.run(&Request {
            id: format!("chk{i}"),
            kind: QueryKind::CheckSr,
            metric: Metric::L2,
            k,
            point: x.clone(),
            features: Some(vec![1]),
        });
        match check.result.expect("k = 5 check-sr must be served") {
            Outcome::Check { sufficient, witness } => {
                // One pinned coordinate never suffices here: the clusters are
                // separated along coordinate 0.
                assert!(!sufficient, "{{1}} cannot pin the label at x = {x:?}");
                let w = witness.expect("failing check carries a witness");
                assert_eq!(w[1], x[1], "witness must agree on the fixed coordinate");
                assert_eq!(classify(&w), label.flip());
            }
            other => panic!("expected a check outcome, got {other:?}"),
        }
    }
}

/// The full binary: mixed batch over stdin, parallel workers, proven output.
#[test]
fn xknn_batch_subcommand_end_to_end() {
    let dir = std::env::temp_dir().join("xknn-batch-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let data_path = dir.join("bool.txt");
    std::fs::write(&data_path, BOOL).unwrap();

    let requests = concat!(
        "{\"id\":\"cls\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"k\":3,\"point\":[1,1,0,1,0]}\n",
        "{\"id\":\"sr\",\"cmd\":\"minimal-sr\",\"metric\":\"hamming\",\"point\":[1,1,0,1,0]}\n",
        "{\"id\":\"cf\",\"cmd\":\"counterfactual\",\"metric\":\"hamming\",\"point\":[1,1,0,1,0]}\n",
        "{\"id\":\"cf2\",\"cmd\":\"counterfactual\",\"metric\":\"l2\",\"point\":[1,1,0,1,0]}\n",
        "{\"id\":\"cf3\",\"cmd\":\"counterfactual\",\"metric\":\"l1\",\"point\":[1,1,0,1,0]}\n",
        "{\"id\":\"bad\",\"cmd\":\"minimal-sr\",\"metric\":\"l1\",\"k\":3,\"point\":[1,1,0,1,0]}\n",
    );

    let mut runs = Vec::new();
    for workers in ["1", "4"] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
            .args(["batch", "--data", data_path.to_str().unwrap(), "--workers", workers])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("xknn batch runs");
        child.stdin.as_mut().unwrap().write_all(requests.as_bytes()).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success());
        runs.push(String::from_utf8(out.stdout).unwrap());
    }
    assert_eq!(runs[0], runs[1], "worker count must not change a byte");

    let lines: Vec<&str> = runs[0].lines().collect();
    assert_eq!(lines.len(), 6);
    assert!(lines[0].contains(r#""label":"+""#), "{}", lines[0]);
    assert!(lines[1].contains(r#""reason":"#), "{}", lines[1]);
    for cf_line in &lines[2..5] {
        assert!(cf_line.contains(r#""proven":true"#), "{cf_line}");
    }
    assert!(lines[5].contains(r#""ok":false"#), "{}", lines[5]);
}
