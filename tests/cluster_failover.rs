//! Failover property, end to end over real processes: a tenant replicated
//! on two `xknn serve` backend processes, one of which is **killed
//! mid-stream** — the router's merged output must still be byte-identical
//! to the single-server oracle (pending queries on the dead replica are
//! retried on the survivor; order is restored by the seq merge).

use explainable_knn::cluster::{LoadSource, Router, RouterConfig};
use explainable_knn::engine::{textfmt, EngineConfig, ExplanationEngine, Request};
use explainable_knn::server::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";

/// Spawns a bare `xknn serve` backend process on an ephemeral port.
fn spawn_backend() -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("xknn serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .parse()
        .unwrap();
    (child, addr)
}

/// A query stream long enough that the kill lands while queries are in
/// flight on both replicas. Every tenth line carries a client trace id —
/// tracing is strictly out-of-band, so the oracle comparison below pins
/// that the propagated (and router-stripped) id never changes a response
/// byte. Untraced lines are fair game for router-minted trace splices
/// (the sampler fires on the first query per connection), covered by the
/// same byte comparison.
fn request_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..160u32 {
        let bits: Vec<String> = (0..5).map(|b| ((i >> b) & 1).to_string()).collect();
        let cmd = match i % 4 {
            0 => "minimal-sr",
            1 => "counterfactual",
            _ => "classify",
        };
        let k = if i % 3 == 0 { 3 } else { 1 };
        let trace = if i % 10 == 0 { format!(r#""trace":"t-{i}","#) } else { String::new() };
        lines.push(format!(
            r#"{{{trace}"dataset":"hot","id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]}}"#,
            bits.join(",")
        ));
    }
    lines
}

#[test]
fn killing_one_of_two_replicas_mid_stream_keeps_bytes_identical_to_the_oracle() {
    let (mut victim, victim_addr) = spawn_backend();
    let (mut survivor, survivor_addr) = spawn_backend();

    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            replication: 0,
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.attach(victim_addr);
    router.attach(survivor_addr);
    router.load("hot", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();

    let lines = request_lines();
    let expected: Vec<String> = {
        let engine =
            ExplanationEngine::new(textfmt::parse_dataset(BOOL).unwrap(), EngineConfig::default());
        lines
            .iter()
            .map(|l| engine.run(&Request::from_json_line(l, "oracle").unwrap()).to_json_line())
            .collect()
    };

    // Pipeline the whole batch, then kill the victim *before* reading a
    // single response: the batch is still in flight, so the victim dies
    // holding queued queries the router must drain and retry on the
    // survivor. (Killing after N reads is a race — pipelined queries all
    // complete around the same time, so by the Nth read the whole batch
    // may already be done and the kill would land on an idle backend.)
    let mut client = Client::connect(handle.addr()).unwrap();
    for l in &lines {
        client.send(l).unwrap();
    }
    victim.kill().expect("kill victim backend");
    victim.wait().expect("reap victim backend");
    let mut got = Vec::with_capacity(lines.len());
    for i in 0..lines.len() {
        let resp = client
            .recv()
            .unwrap()
            .unwrap_or_else(|| panic!("router closed after {i} of {} responses", lines.len()));
        got.push(resp);
    }

    assert_eq!(expected.len(), got.len());
    for (slot, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(want, have, "slot {slot}: failover changed response bytes");
    }

    // The cluster notices: the victim gets marked down (by the failover
    // drain or a failed probe — either may land first, so poll briefly).
    let mut stats = String::new();
    for _ in 0..100 {
        stats = client.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        if stats.contains(r#""healthy":false"#) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(stats.contains(r#""healthy":false"#), "victim not marked down: {stats}");
    assert!(stats.contains(r#""healthy":true"#), "survivor wrongly marked down: {stats}");

    // Forensics after the storm: traced queries left reconstructable
    // dispatch spans even though one backend (and its half of the span
    // trees) is gone, and the recorder exports through the router. (Whether
    // the kill caught queries *pending* on the victim is a scheduling race;
    // the forced failover-span guarantee is pinned deterministically by
    // `dead_channel_with_pending_query_forces_failover_spans` below.)
    let tree = client.roundtrip(r#"{"id":"tr","verb":"trace","trace":"t-0"}"#).unwrap();
    assert!(tree.contains(r#""spans":["#), "trace verb returned no span list: {tree}");
    assert!(tree.contains(r#""name":"dispatch""#), "traced query left no dispatch span: {tree}");
    let dump = client.roundtrip(r#"{"id":"du","verb":"dump"}"#).unwrap();
    assert!(dump.contains(r#""chrome":"["#), "dump through the router is empty: {dump}");

    handle.shutdown();
    let _ = survivor.kill();
    let _ = survivor.wait();
}

/// The same kill-mid-stream property with cache-affinity routing and
/// cross-replica fill enabled (the default config): a cold pass populates
/// caches (and fans fills out to the peer), then the identical warm batch is
/// pipelined and the victim killed before any response is read — so warm
/// queries failing over land on a replica whose cache was filled by its dead
/// peer. Bytes must match the single-server oracle on both passes: affinity,
/// failover, and fill are all invisible in the response stream.
#[test]
fn affinity_and_fill_survive_a_mid_stream_kill_byte_identically() {
    let (mut victim, victim_addr) = spawn_backend();
    let (mut survivor, survivor_addr) = spawn_backend();

    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            replication: 0,
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    assert!(RouterConfig::default().affinity, "affinity routing should be the default");
    router.attach(victim_addr);
    router.attach(survivor_addr);
    router.load("hot", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();

    let lines = request_lines();
    let expected: Vec<String> = {
        let engine =
            ExplanationEngine::new(textfmt::parse_dataset(BOOL).unwrap(), EngineConfig::default());
        lines
            .iter()
            .map(|l| engine.run(&Request::from_json_line(l, "oracle").unwrap()).to_json_line())
            .collect()
    };

    // Cold pass: every query routed by affinity to its home replica; cold
    // explanations trigger best-effort fill pushes to the peer.
    let mut client = Client::connect(handle.addr()).unwrap();
    for (i, l) in lines.iter().enumerate() {
        let got = client.roundtrip(l).unwrap();
        assert_eq!(&expected[i], &got, "cold slot {i}: affinity routing changed response bytes");
    }

    // Warm pass, pipelined, victim killed before the first read: pending
    // queries drain onto the survivor, whose cache holds fill-pushed entries
    // originally computed by the victim. Fill is fire-and-forget, so some
    // pushes may not have landed — either way the bytes must not move.
    let mut warm_client = Client::connect(handle.addr()).unwrap();
    for l in &lines {
        warm_client.send(l).unwrap();
    }
    victim.kill().expect("kill victim backend");
    victim.wait().expect("reap victim backend");
    for (i, want) in expected.iter().enumerate() {
        let got = warm_client
            .recv()
            .unwrap()
            .unwrap_or_else(|| panic!("router closed after {i} of {} responses", lines.len()));
        assert_eq!(want, &got, "warm slot {i}: failover with fill changed response bytes");
    }

    // The fill plane actually ran: the survivor reports externally installed
    // cache entries in the merged stats.
    let stats = warm_client.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
    assert!(stats.contains(r#""cache_filled":"#), "merged stats lack cache_filled: {stats}");

    handle.shutdown();
    let _ = survivor.kill();
    let _ = survivor.wait();
}

/// A backend that accepts a query and then dies *while holding it* — built
/// from a scripted listener, so (unlike a process kill) the pending-at-death
/// window is deterministic. The router must redispatch the drained query to
/// the survivor with identical bytes AND force a `failover` span into its
/// flight recorder — anomaly capture is not sampling-dependent.
#[test]
fn dead_channel_with_pending_query_forces_failover_spans() {
    use std::io::Write as _;
    use std::net::TcpListener;

    // Protocol-shaped impostor: acks control verbs (so load/probes accept
    // it), then hangs up on the first query line without answering it.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let fake_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut out = stream;
                let mut line = Vec::new();
                loop {
                    line.clear();
                    match reader.read_until(b'\n', &mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    if line.windows(6).any(|w| w == b"\"verb\"") {
                        if out.write_all(b"{\"id\":\"x\",\"ok\":true}\n").is_err() {
                            return;
                        }
                    } else {
                        return; // query received: die holding it
                    }
                }
            });
        }
    });

    let (mut real, real_addr) = spawn_backend();
    // Window routing (not affinity) so the two-query batch deterministically
    // round-robins one query onto the impostor — the scenario under test.
    let router =
        Router::bind("127.0.0.1:0", RouterConfig { affinity: false, ..RouterConfig::default() })
            .unwrap();
    router.attach(fake_addr);
    router.attach(real_addr);
    router.load("hot", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();

    // Two queries, round-robined over the two replicas: exactly one lands
    // on the impostor and gets drained at its EOF.
    let lines = [
        r#"{"dataset":"hot","id":"a","cmd":"classify","metric":"hamming","k":3,"point":[1,1,1,0,0]}"#,
        r#"{"dataset":"hot","id":"b","cmd":"minimal-sr","metric":"hamming","k":1,"point":[0,0,1,1,1]}"#,
    ];
    let engine =
        ExplanationEngine::new(textfmt::parse_dataset(BOOL).unwrap(), EngineConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();
    for l in &lines {
        let want = engine.run(&Request::from_json_line(l, "oracle").unwrap()).to_json_line();
        let got = client.roundtrip(l).unwrap();
        assert_eq!(want, got, "failover changed response bytes");
    }

    let dump = client.roundtrip(r#"{"id":"du","verb":"dump"}"#).unwrap();
    assert!(
        dump.contains(r#"\"name\":\"failover\""#),
        "forced failover span missing from dump: {dump}"
    );

    handle.shutdown();
    let _ = real.kill();
    let _ = real.wait();
}
