//! Failover property, end to end over real processes: a tenant replicated
//! on two `xknn serve` backend processes, one of which is **killed
//! mid-stream** — the router's merged output must still be byte-identical
//! to the single-server oracle (pending queries on the dead replica are
//! retried on the survivor; order is restored by the seq merge).

use explainable_knn::cluster::{LoadSource, Router, RouterConfig};
use explainable_knn::engine::{textfmt, EngineConfig, ExplanationEngine, Request};
use explainable_knn::server::Client;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";

/// Spawns a bare `xknn serve` backend process on an ephemeral port.
fn spawn_backend() -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("xknn serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .parse()
        .unwrap();
    (child, addr)
}

/// A query stream long enough that the kill lands while queries are in
/// flight on both replicas.
fn request_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for i in 0..160u32 {
        let bits: Vec<String> = (0..5).map(|b| ((i >> b) & 1).to_string()).collect();
        let cmd = match i % 4 {
            0 => "minimal-sr",
            1 => "counterfactual",
            _ => "classify",
        };
        let k = if i % 3 == 0 { 3 } else { 1 };
        lines.push(format!(
            r#"{{"dataset":"hot","id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]}}"#,
            bits.join(",")
        ));
    }
    lines
}

#[test]
fn killing_one_of_two_replicas_mid_stream_keeps_bytes_identical_to_the_oracle() {
    let (mut victim, victim_addr) = spawn_backend();
    let (mut survivor, survivor_addr) = spawn_backend();

    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            replication: 0,
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.attach(victim_addr);
    router.attach(survivor_addr);
    router.load("hot", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();

    let lines = request_lines();
    let expected: Vec<String> = {
        let engine =
            ExplanationEngine::new(textfmt::parse_dataset(BOOL).unwrap(), EngineConfig::default());
        lines
            .iter()
            .map(|l| engine.run(&Request::from_json_line(l, "oracle").unwrap()).to_json_line())
            .collect()
    };

    // Pipeline the whole batch, then read responses one at a time so the
    // kill demonstrably lands mid-stream.
    let mut client = Client::connect(handle.addr()).unwrap();
    for l in &lines {
        client.send(l).unwrap();
    }
    let mut got = Vec::with_capacity(lines.len());
    for i in 0..lines.len() {
        if i == 20 {
            victim.kill().expect("kill victim backend");
            victim.wait().expect("reap victim backend");
        }
        let resp = client
            .recv()
            .unwrap()
            .unwrap_or_else(|| panic!("router closed after {i} of {} responses", lines.len()));
        got.push(resp);
    }

    assert_eq!(expected.len(), got.len());
    for (slot, (want, have)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(want, have, "slot {slot}: failover changed response bytes");
    }

    // The cluster notices: the victim gets marked down (by the failover
    // drain or a failed probe — either may land first, so poll briefly).
    let mut stats = String::new();
    for _ in 0..100 {
        stats = client.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        if stats.contains(r#""healthy":false"#) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(stats.contains(r#""healthy":false"#), "victim not marked down: {stats}");
    assert!(stats.contains(r#""healthy":true"#), "survivor wrongly marked down: {stats}");

    handle.shutdown();
    let _ = survivor.kill();
    let _ = survivor.wait();
}
