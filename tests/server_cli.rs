//! End-to-end over the real binaries: `xknn serve` on an ephemeral port,
//! `xknn client` streaming queries and control verbs against two tenants,
//! shutdown via the protocol.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";
const CONT: &str = "+ 2.0 2.0\n+ 3.0 1.5\n+ 1.0 2.5\n- -1.0 -1.0\n- 0.0 -2.0\n- -2.0 0.5\n";

fn spawn_serve(datasets: &[(&str, &str)]) -> (Child, String) {
    let dir = std::env::temp_dir().join("xknn-server-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let mut args = vec!["serve".to_string(), "--addr".into(), "127.0.0.1:0".into()];
    for (name, text) in datasets {
        let path = dir.join(format!("{name}.txt"));
        std::fs::write(&path, text).unwrap();
        args.push("--data".into());
        args.push(format!("{name}={}", path.display()));
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("xknn serve starts");
    // The first stdout line announces the resolved address.
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .to_string();
    (child, addr)
}

fn run_client(addr: &str, input: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(["client", "--addr", addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("xknn client runs");
    child.stdin.as_mut().unwrap().write_all(input.as_bytes()).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "client failed: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).unwrap().lines().map(str::to_string).collect()
}

#[test]
fn serve_and_client_binaries_round_trip_two_tenants() {
    let (mut child, addr) = spawn_serve(&[("bool", BOOL), ("cont", CONT)]);

    let input = concat!(
        "{\"id\":\"ls\",\"verb\":\"list\"}\n",
        "{\"dataset\":\"bool\",\"id\":\"b1\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"k\":3,\"point\":[1,1,0,1,0]}\n",
        "{\"dataset\":\"cont\",\"id\":\"c1\",\"cmd\":\"counterfactual\",\"metric\":\"l2\",\"point\":[1.5,1.0]}\n",
        "{\"dataset\":\"nope\",\"id\":\"m\",\"cmd\":\"classify\",\"point\":[1]}\n",
        "garbage line\n",
        "{\"id\":\"st\",\"verb\":\"stats\"}\n",
    );
    let lines = run_client(&addr, input);
    assert_eq!(lines.len(), 6, "{lines:?}");
    assert!(lines[0].contains(r#""name":"bool""#) && lines[0].contains(r#""name":"cont""#));
    assert!(lines[1].contains(r#""label":"+""#), "{}", lines[1]);
    assert!(lines[2].contains(r#""proven":true"#), "{}", lines[2]);
    assert!(lines[3].contains("no dataset named"), "{}", lines[3]);
    assert!(lines[4].contains(r#""ok":false"#), "{}", lines[4]);
    // The stats barrier guarantees the two tenant queries are counted.
    assert!(lines[5].contains(r#""requests":1"#), "{}", lines[5]);

    // A second client sees the same server (and shuts it down cleanly).
    let bye = run_client(&addr, "{\"id\":\"x\",\"verb\":\"shutdown\"}\n");
    assert!(bye[0].contains(r#""shutdown":true"#), "{}", bye[0]);

    let status = child.wait().unwrap();
    assert!(status.success(), "serve exits 0 after shutdown");
}
