//! Failure injection and degenerate-input behavior across the public API:
//! duplicated points, ties everywhere, one-dimensional spaces, queries that
//! coincide with training points, constant labels, and k equal to the
//! dataset size. The paper's optimistic tie-breaking makes several of these
//! well-defined where naive k-NN would be ambiguous — these tests pin that
//! behavior.

use explainable_knn::core::counterfactual::lp_general::LpGeneralCounterfactual;
use explainable_knn::core::{brute, counterfactual};
use explainable_knn::prelude::*;

#[test]
fn duplicated_points_act_as_multiplicity() {
    // Two copies of a positive at distance 1 outvote one negative at the
    // same distance for k = 3 (the ball characterization counts points, not
    // distinct locations).
    let ds = BooleanDataset::from_sets(
        vec![BitVec::from_bits(&[1, 0, 0]), BitVec::from_bits(&[1, 0, 0])],
        vec![BitVec::from_bits(&[0, 1, 0])],
    );
    let knn = BooleanKnn::new(&ds, OddK::THREE);
    assert_eq!(knn.classify(&BitVec::zeros(3)), Label::Positive);
}

#[test]
fn exact_tie_resolves_positively() {
    // One positive and one negative, both at Hamming distance 1: the
    // optimistic rule classifies positive.
    let ds = BooleanDataset::from_sets(
        vec![BitVec::from_bits(&[1, 0])],
        vec![BitVec::from_bits(&[0, 1])],
    );
    let knn = BooleanKnn::new(&ds, OddK::ONE);
    assert_eq!(knn.classify(&BitVec::zeros(2)), Label::Positive);
    // And symmetrically in the continuous setting under ℓ2.
    let cds = ContinuousDataset::from_sets(vec![vec![1.0, 0.0]], vec![vec![0.0, 1.0]]);
    let cknn = ContinuousKnn::new(&cds, LpMetric::L2, OddK::ONE);
    assert_eq!(cknn.classify(&[0.0, 0.0]), Label::Positive);
}

#[test]
fn query_on_a_training_point_still_has_counterfactuals() {
    let ds = BooleanDataset::from_sets(
        vec![BitVec::from_bits(&[1, 1, 1])],
        vec![BitVec::from_bits(&[0, 0, 0])],
    );
    let x = BitVec::from_bits(&[1, 1, 1]);
    let (cf, d) = counterfactual::hamming::closest_sat(&ds, OddK::ONE, &x).unwrap();
    assert_eq!(d, 2, "must cross the midpoint: 2 of 3 bits");
    assert_eq!(BooleanKnn::new(&ds, OddK::ONE).classify(&cf), Label::Negative);
}

#[test]
fn constant_label_has_no_counterfactual_and_empty_reason() {
    let mut ds = BooleanDataset::new(4);
    for bits in [[1u8, 1, 0, 0], [0, 1, 1, 0], [1, 0, 1, 0]] {
        ds.push(BitVec::from_bits(&bits), Label::Positive);
    }
    let x = BitVec::zeros(4);
    assert!(counterfactual::hamming::closest_sat(&ds, OddK::ONE, &x).is_none());
    // The empty set suffices: every completion is positive.
    let ab = HammingAbductive::new(&ds, OddK::ONE);
    assert!(ab.is_sufficient(&x, &[]));
    assert!(ab.minimal(&x).is_empty());
    assert!(ab.minimum(&x).is_empty());
}

#[test]
fn k_equal_to_dataset_size_is_majority_vote() {
    // With k = |S|, classification is the global majority regardless of x.
    let ds = BooleanDataset::from_sets(
        vec![
            BitVec::from_bits(&[1, 1, 1, 1]),
            BitVec::from_bits(&[1, 1, 1, 0]),
            BitVec::from_bits(&[1, 1, 0, 0]),
        ],
        vec![BitVec::from_bits(&[0, 0, 0, 0]), BitVec::from_bits(&[0, 0, 0, 1])],
    );
    let knn = BooleanKnn::new(&ds, OddK::of(5));
    for bits in [[0u8, 0, 0, 0], [1, 1, 1, 1], [0, 1, 0, 1]] {
        assert_eq!(knn.classify(&BitVec::from_bits(&bits)), Label::Positive);
    }
    // Hence no counterfactual exists at all.
    assert!(counterfactual::hamming::closest_sat(&ds, OddK::of(5), &BitVec::zeros(4)).is_none());
}

#[test]
fn one_dimensional_continuous_explanations() {
    let ds = ContinuousDataset::from_sets(vec![vec![1.0]], vec![vec![-1.0]]);
    let knn = ContinuousKnn::new(&ds, LpMetric::L2, OddK::ONE);
    assert_eq!(knn.classify(&[0.25]), Label::Positive);
    let cf = L2Counterfactual::new(&ds, OddK::ONE);
    let inf = cf.infimum(&[0.25]).unwrap();
    // Boundary at 0: distance 0.25, open side (strictly negative needed).
    assert!((inf.dist_sq.sqrt() - 0.25).abs() < 1e-9);
    assert!(!inf.attained);
    // The only sufficient reason is the single feature itself.
    let ab = L2Abductive::new(&ds, OddK::ONE);
    assert!(!ab.is_sufficient(&[0.25], &[]));
    assert!(ab.is_sufficient(&[0.25], &[0]));
}

#[test]
fn zero_weight_and_full_weight_queries() {
    // All-zeros and all-ones queries on random-ish data: every engine must
    // return *consistent* answers (SAT vs MILP vs brute).
    let ds = BooleanDataset::from_sets(
        vec![BitVec::from_bits(&[1, 0, 1, 1, 0]), BitVec::from_bits(&[0, 1, 1, 0, 1])],
        vec![BitVec::from_bits(&[0, 0, 0, 1, 0]), BitVec::from_bits(&[1, 1, 0, 0, 0])],
    );
    for x in [BitVec::zeros(5), BitVec::ones(5)] {
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        let sat = counterfactual::hamming::closest_sat(&ds, OddK::ONE, &x);
        let milp = counterfactual::hamming::closest_milp(&ds, &x);
        let brute = brute::closest_counterfactual(&knn, &x);
        assert_eq!(sat.as_ref().map(|(_, d)| *d), brute.as_ref().map(|(_, d)| *d));
        assert_eq!(milp.as_ref().map(|(_, d)| *d), brute.as_ref().map(|(_, d)| *d));
    }
}

#[test]
fn lp_general_handles_constant_labels_and_zero_distance() {
    // Constant label: no counterfactual.
    let ds = ContinuousDataset::from_sets(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![]);
    let eng = LpGeneralCounterfactual::new(&ds, LpMetric::new(3), OddK::ONE);
    assert!(eng.closest(&[0.5, 0.5]).is_none());

    // Query sitting exactly on the opposite-class point: the optimum is at
    // some positive distance (the classifier at the anchor itself may or may
    // not flip), but the heuristic must not panic and must return a valid
    // witness if any.
    let ds = ContinuousDataset::from_sets(vec![vec![0.0, 0.0]], vec![vec![1.0, 0.0]]);
    let eng = LpGeneralCounterfactual::new(&ds, LpMetric::new(3), OddK::ONE);
    if let Some(w) = eng.closest(&[1.0, 0.0]) {
        let knn = ContinuousKnn::new(&ds, LpMetric::new(3), OddK::ONE);
        assert_eq!(knn.classify(&w.point), w.target);
    }
}

#[test]
fn minimum_sr_agrees_with_brute_force_on_exhaustive_small_cube() {
    // Exhaustive: every labeling of {0,1}³ by a parity-ish rule, every query.
    let dim = 3usize;
    for rule in 0..4u8 {
        let mut ds = BooleanDataset::new(dim);
        for m in 0..(1u8 << dim) {
            let bits: Vec<u8> = (0..dim).map(|i| (m >> i) & 1).collect();
            let pos = match rule {
                0 => bits.iter().sum::<u8>() % 2 == 0,
                1 => bits[0] == 1,
                2 => bits.iter().sum::<u8>() >= 2,
                _ => bits[0] != bits[2],
            };
            ds.push(BitVec::from_bits(&bits), if pos { Label::Positive } else { Label::Negative });
        }
        let ab = HammingAbductive::new(&ds, OddK::ONE);
        let knn = BooleanKnn::new(&ds, OddK::ONE);
        for m in 0..(1u8 << dim) {
            let x = BitVec::from_bits(&(0..dim).map(|i| (m >> i) & 1).collect::<Vec<_>>());
            let exact = ab.minimum(&x);
            let brute_min = brute::minimum_sufficient_reason(&knn, &x);
            assert_eq!(exact.len(), brute_min.len(), "rule {rule}, x {x}");
            assert!(brute::is_sufficient_reason(&knn, &x, &exact));
        }
    }
}
