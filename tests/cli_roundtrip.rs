//! End-to-end tests of the `xknn` binary: real process, real files, parsing
//! the human-readable output. Exercises the full stack the way a downstream
//! user would.

use std::io::Write;
use std::process::Command;

fn xknn(args: &[&str]) -> (String, String, bool) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_xknn")).args(args).output().expect("xknn binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xknn-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";
const CONT: &str = "+ 2.0 2.0\n+ 3.0 1.5\n- -1.0 -1.0\n- 0.0 -2.0\n";

#[test]
fn usage_on_no_args() {
    let (stdout, _, ok) = xknn(&[]);
    assert!(ok);
    assert!(stdout.contains("usage"));
}

#[test]
fn classify_hamming_k3() {
    let data = write_temp("bool.txt", BOOL);
    let (stdout, _, ok) = xknn(&[
        "classify",
        "--data",
        data.to_str().unwrap(),
        "--point",
        "1,1,0,1,0",
        "--metric",
        "hamming",
        "--k",
        "3",
    ]);
    assert!(ok);
    assert!(stdout.contains("label: +"), "{stdout}");
}

#[test]
fn minimal_sr_is_then_accepted_by_check_sr() {
    let data = write_temp("bool2.txt", BOOL);
    let d = data.to_str().unwrap();
    let (stdout, _, ok) =
        xknn(&["minimal-sr", "--data", d, "--point", "1,1,0,1,0", "--metric", "hamming"]);
    assert!(ok);
    // Output shape: "sufficient reason (m of n features): [i, j, ...]"
    let inside = stdout.split('[').nth(1).unwrap().split(']').next().unwrap();
    let features = inside.replace(' ', "");
    let (stdout, _, ok) = xknn(&[
        "check-sr",
        "--data",
        d,
        "--point",
        "1,1,0,1,0",
        "--metric",
        "hamming",
        "--features",
        &features,
    ]);
    assert!(ok);
    assert!(stdout.contains("sufficient: yes"), "{stdout}");
}

#[test]
fn l2_counterfactual_proven_optimal() {
    let data = write_temp("cont.txt", CONT);
    let (stdout, _, ok) =
        xknn(&["counterfactual", "--data", data.to_str().unwrap(), "--point", "1.5,1.0"]);
    assert!(ok);
    assert!(stdout.contains("proven optimal"), "{stdout}");
}

#[test]
fn lp3_counterfactual_reports_heuristic() {
    let data = write_temp("cont2.txt", CONT);
    let (stdout, _, ok) = xknn(&[
        "counterfactual",
        "--data",
        data.to_str().unwrap(),
        "--point",
        "1.5,1.0",
        "--metric",
        "lp:3",
    ]);
    assert!(ok);
    assert!(stdout.contains("heuristic upper bound"), "{stdout}");
}

#[test]
fn tractability_boundary_refused_with_explanation() {
    let data = write_temp("cont3.txt", CONT);
    let (_, stderr, ok) = xknn(&[
        "minimal-sr",
        "--data",
        data.to_str().unwrap(),
        "--point",
        "1.5,1.0",
        "--metric",
        "l1",
        "--k",
        "3",
    ]);
    assert!(!ok);
    assert!(stderr.contains("k = 1"), "{stderr}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    let data = write_temp("cont4.txt", CONT);
    let d = data.to_str().unwrap();
    // Even k.
    assert!(!xknn(&["classify", "--data", d, "--point", "1,1", "--k", "2"]).2);
    // Wrong dimension.
    assert!(!xknn(&["classify", "--data", d, "--point", "1,1,1"]).2);
    // Missing file.
    assert!(!xknn(&["classify", "--data", "/nonexistent.txt", "--point", "1,1"]).2);
    // Hamming on non-binary data.
    assert!(!xknn(&["classify", "--data", d, "--point", "1,1", "--metric", "hamming"]).2);
    // Unknown command.
    assert!(!xknn(&["explain-everything", "--data", d, "--point", "1,1"]).2);
}

#[test]
fn repo_demo_files_work() {
    // The checked-in demo datasets under data/ must stay valid.
    let root = env!("CARGO_MANIFEST_DIR");
    let (stdout, _, ok) = xknn(&[
        "minimum-sr",
        "--data",
        &format!("{root}/data/demo_boolean.txt"),
        "--point",
        "1,1,0,1,0",
        "--metric",
        "hamming",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("sufficient reason"));
}
