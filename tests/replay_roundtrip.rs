//! The forensics close-out, end to end over real processes: a tenant
//! replicated on two `xknn serve` backends takes an interleaved stream of
//! queries and mutations through the router; the router's `repro` verb then
//! exports ONE self-contained bundle — seed text, the full replay log, and
//! the captured request/response lines merged from both backends — and the
//! offline `xknn replay` subcommand, in a **fresh process with no access to
//! the cluster**, re-executes every captured request and byte-matches every
//! response. A corrupted response byte must flip the exit code: the replay
//! tool is only a debugger if it can actually tell "same bytes" from "not".

use explainable_knn::cluster::{LoadSource, Router, RouterConfig};
use explainable_knn::engine::bundle::ReproBundle;
use explainable_knn::engine::json::{parse_bytes, Value};
use explainable_knn::server::Client;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";

/// Spawns a bare `xknn serve` backend process on an ephemeral port.
fn spawn_backend() -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("xknn serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .parse()
        .unwrap();
    (child, addr)
}

/// Runs `xknn replay` on a bundle file, returning (exit code, stdout).
fn run_replay(path: &std::path::Path) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(["replay", path.to_str().unwrap()])
        .output()
        .expect("xknn replay runs");
    (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn router_exported_bundle_replays_byte_identically_offline() {
    let (mut b0, addr0) = spawn_backend();
    let (mut b1, addr1) = spawn_backend();
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig { probe_interval: Duration::from_millis(100), ..RouterConfig::default() },
    )
    .unwrap();
    router.attach(addr0);
    router.attach(addr1);
    router.load("hot", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    // An interleaved stream: queries (some traced) with mutations mid-way,
    // so captured entries span three epochs of the tenant.
    let mut served: Vec<String> = Vec::new();
    for i in 0..60u32 {
        let line = match i {
            15 => r#"{"id":"m15","verb":"insert","name":"hot","label":"+","point":[0,1,1,0,0]}"#
                .to_string(),
            35 => r#"{"id":"m35","verb":"insert","name":"hot","label":"-","point":[1,0,0,1,1]}"#
                .to_string(),
            45 => r#"{"id":"m45","verb":"remove","name":"hot","index":2}"#.to_string(),
            _ => {
                let bits: Vec<String> = (0..5).map(|b| ((i >> b) & 1).to_string()).collect();
                let cmd = match i % 4 {
                    0 => "minimal-sr",
                    1 => "counterfactual",
                    _ => "classify",
                };
                let k = if i % 3 == 0 { 3 } else { 1 };
                let trace = if i % 7 == 0 { format!(r#","trace":"t-{i}""#) } else { String::new() };
                format!(
                    r#"{{"dataset":"hot","id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]{trace}}}"#,
                    bits.join(",")
                )
            }
        };
        let resp = client.roundtrip(&line).unwrap();
        assert!(resp.contains(r#""ok":true"#), "line {i}: {resp}");
        if line.contains(r#""dataset""#) {
            served.push(resp);
        }
    }

    // The router assembles one bundle for the whole tenant window: its own
    // retained seed + mutation log, both backends' captures tagged.
    let resp = client.roundtrip(r#"{"id":"r","verb":"repro","name":"hot"}"#).unwrap();
    let parsed = parse_bytes(resp.as_bytes()).unwrap();
    assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)), "{resp}");
    assert_eq!(parsed.get("repro"), Some(&Value::String("hot".into())), "{resp}");
    let Some(Value::String(text)) = parsed.get("bundle") else { panic!("no bundle: {resp}") };
    let bundle = ReproBundle::from_json(text).unwrap();
    assert_eq!(bundle.replay.len(), 3, "the three mutations ride the bundle");
    assert_eq!(bundle.entries.len(), served.len(), "every served query is captured");
    let backends: BTreeSet<u64> = bundle.entries.iter().filter_map(|e| e.backend).collect();
    assert_eq!(backends.len(), 2, "both backends contributed entries: {backends:?}");
    for s in &served {
        assert!(bundle.entries.iter().any(|e| &e.response == s), "missing capture for {s}");
    }

    // Offline replay in a fresh process: byte-identical, exit 0.
    let dir = std::env::temp_dir();
    let clean = dir.join(format!("xknn-replay-test-{}.json", std::process::id()));
    std::fs::write(&clean, text).unwrap();
    let (code, stdout) = run_replay(&clean);
    assert_eq!(code, Some(0), "clean replay must exit 0: {stdout}");
    assert!(stdout.contains("replay ok"), "{stdout}");

    // One corrupted response byte: non-zero exit, divergence named.
    let mut corrupt = bundle.clone();
    let entry = corrupt
        .entries
        .iter_mut()
        .find(|e| e.response.contains(r#""label":""#))
        .expect("a classify response to corrupt");
    let (from, to) = if entry.response.contains(r#""label":"+""#) {
        (r#""label":"+""#, r#""label":"-""#)
    } else {
        (r#""label":"-""#, r#""label":"+""#)
    };
    entry.response = entry.response.replace(from, to);
    let bad = dir.join(format!("xknn-replay-test-{}-corrupt.json", std::process::id()));
    std::fs::write(&bad, corrupt.to_json()).unwrap();
    let (code, stdout) = run_replay(&bad);
    assert_eq!(code, Some(1), "corrupted bundle must exit 1: {stdout}");
    assert!(stdout.contains("DIVERGED") && stdout.contains("replay FAILED"), "{stdout}");

    let _ = std::fs::remove_file(&clean);
    let _ = std::fs::remove_file(&bad);
    handle.shutdown();
    for child in [&mut b0, &mut b1] {
        let _ = child.kill();
        let _ = child.wait();
    }
}
