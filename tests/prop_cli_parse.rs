//! Property tests for the CLI's dataset parser: rendered datasets round-trip
//! exactly, and arbitrary input text never panics the parser.

use explainable_knn::cli::{parse_dataset, parse_point};
use explainable_knn::prelude::*;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct FileSpec {
    dim: usize,
    rows: Vec<(bool, Vec<f64>)>,
}

fn file_strategy() -> impl Strategy<Value = FileSpec> {
    (1..=5usize).prop_flat_map(|dim| {
        prop::collection::vec((any::<bool>(), prop::collection::vec(-8..=8i32, dim)), 1..=10)
            .prop_map(move |rows| FileSpec {
                dim,
                rows: rows
                    .into_iter()
                    .map(|(pos, vals)| (pos, vals.into_iter().map(|v| v as f64 / 4.0).collect()))
                    .collect(),
            })
    })
}

fn render(spec: &FileSpec, sep_comma: bool, with_comments: bool) -> String {
    let mut out = String::new();
    if with_comments {
        out.push_str("# generated file\n\n");
    }
    for (pos, vals) in &spec.rows {
        out.push(if *pos { '+' } else { '-' });
        let sep = if sep_comma { "," } else { " " };
        let body: Vec<String> = vals.iter().map(|v| format!("{v}")).collect();
        out.push(' ');
        out.push_str(&body.join(sep));
        if with_comments {
            out.push_str("  # row");
        }
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Rendered files parse back to exactly the same dataset, under either
    /// separator and with or without comments.
    #[test]
    fn roundtrip(spec in file_strategy(), comma in any::<bool>(), comments in any::<bool>()) {
        let text = render(&spec, comma, comments);
        let parsed = parse_dataset(&text).expect("rendered file must parse");
        prop_assert_eq!(parsed.continuous.len(), spec.rows.len());
        prop_assert_eq!(parsed.continuous.dim(), spec.dim);
        for (i, (pos, vals)) in spec.rows.iter().enumerate() {
            prop_assert_eq!(parsed.continuous.point(i), &vals[..]);
            let want = if *pos { Label::Positive } else { Label::Negative };
            prop_assert_eq!(parsed.continuous.label(i), want);
        }
        // The boolean view appears exactly when every value is 0/1.
        let all_binary =
            spec.rows.iter().all(|(_, v)| v.iter().all(|&x| x == 0.0 || x == 1.0));
        prop_assert_eq!(parsed.boolean.is_some(), all_binary);
    }

    /// No input string can panic the parser (it may reject, never crash).
    #[test]
    fn parser_never_panics(text in "\\PC{0,200}") {
        let _ = parse_dataset(&text);
        let _ = parse_point(&text);
    }

    /// Structured junk built from the grammar's own tokens also never panics.
    #[test]
    fn token_soup_never_panics(
        toks in prop::collection::vec(
            prop::sample::select(vec!["+", "-", "#", ",", " ", "\n", "1", "0.5", "x", "1e309"]),
            0..60,
        )
    ) {
        let text: String = toks.concat();
        let _ = parse_dataset(&text);
    }
}
