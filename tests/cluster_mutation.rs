//! Live mutation through the cluster, end to end over real processes: a
//! tenant replicated on two `xknn serve` backends takes an interleaved
//! stream of queries, `insert`s, and `remove`s through the router while one
//! backend is **killed mid-stream**. Every query response must stay
//! byte-identical to a sequential local engine applying the same mutations
//! at the same stream positions (the router's control barrier makes each
//! mutation a deterministic point in the stream), every mutation must ack
//! at the right version, and the final state must equal a fresh engine
//! loaded with the final dataset — the mutation layer's governing oracle.

use explainable_knn::cluster::{LoadSource, Router, RouterConfig};
use explainable_knn::delta::Mutation;
use explainable_knn::engine::{textfmt, EngineConfig, ExplanationEngine, Request};
use explainable_knn::server::Client;
use explainable_knn::space::Label;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";

/// Spawns a bare `xknn serve` backend process on an ephemeral port.
fn spawn_backend() -> (Child, std::net::SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xknn"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("xknn serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap()).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
        .parse()
        .unwrap();
    (child, addr)
}

/// One expected response: exact bytes for queries, `(version, verbed)` for
/// mutation acks (whose `replicas` member depends on which backends are
/// alive — that part is the cluster's business, not the oracle's).
enum Expect {
    Query(String),
    Mutation { version: u64, verbed: &'static str },
}

#[test]
fn killing_a_replica_mid_mutation_stream_keeps_queries_oracle_identical() {
    let (mut victim, victim_addr) = spawn_backend();
    let (mut survivor, survivor_addr) = spawn_backend();

    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            replication: 0,
            probe_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        },
    )
    .unwrap();
    router.attach(victim_addr);
    router.attach(survivor_addr);
    router.load("hot", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();

    // Build the stream and its oracle in one pass: a local engine applies
    // the same mutations at the same positions the router will (mutations
    // are control-verb barriers, so their stream position is their epoch).
    let local =
        ExplanationEngine::new(textfmt::parse_dataset(BOOL).unwrap(), EngineConfig::default());
    let mut lines: Vec<String> = Vec::new();
    let mut expected: Vec<Expect> = Vec::new();
    for i in 0..150u32 {
        if i % 10 == 5 {
            if i % 20 == 5 {
                let bits: Vec<f64> = (0..5).map(|b| f64::from((i >> b) & 1)).collect();
                let label = if i % 40 == 5 { Label::Positive } else { Label::Negative };
                lines.push(format!(
                    r#"{{"id":"m{i}","verb":"insert","name":"hot","label":"{}","point":[{}]}}"#,
                    if label == Label::Positive { "+" } else { "-" },
                    bits.iter().map(|v| format!("{v}")).collect::<Vec<_>>().join(","),
                ));
                local.apply(Mutation::Insert { point: bits, label }).unwrap();
            } else {
                let id = (i as usize * 7) % local.data().continuous.len();
                lines.push(format!(r#"{{"id":"m{i}","verb":"remove","name":"hot","index":{id}}}"#));
                local.apply(Mutation::Remove { id }).unwrap();
            }
            expected.push(Expect::Mutation {
                version: local.epoch(),
                verbed: if i % 20 == 5 { "inserted" } else { "removed" },
            });
        } else {
            let bits: Vec<String> = (0..5).map(|b| ((i >> b) & 1).to_string()).collect();
            let cmd = match i % 4 {
                0 => "minimal-sr",
                1 => "counterfactual",
                _ => "classify",
            };
            let k = if i % 3 == 0 { 3 } else { 1 };
            let line = format!(
                r#"{{"id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]}}"#,
                bits.join(",")
            );
            let req = Request::from_json_line(&line, "oracle").unwrap();
            expected.push(Expect::Query(local.run(&req).to_json_line()));
            lines.push(format!(
                r#"{{"dataset":"hot","id":"q{i}","cmd":"{cmd}","metric":"hamming","k":{k},"point":[{}]}}"#,
                bits.join(",")
            ));
        }
    }

    // Pipeline the whole stream, then read responses one at a time so the
    // kill demonstrably lands mid-stream (with mutations still ahead).
    let mut client = Client::connect(handle.addr()).unwrap();
    for l in &lines {
        client.send(l).unwrap();
    }
    for (i, want) in expected.iter().enumerate() {
        if i == 12 {
            victim.kill().expect("kill victim backend");
            victim.wait().expect("reap victim backend");
        }
        let have = client
            .recv()
            .unwrap()
            .unwrap_or_else(|| panic!("router closed after {i} of {} responses", expected.len()));
        match want {
            Expect::Query(bytes) => {
                assert_eq!(bytes, &have, "slot {i}: query bytes diverged from the oracle");
            }
            Expect::Mutation { version, verbed } => {
                assert!(
                    have.contains(r#""ok":true"#) && have.contains(&format!(r#""{verbed}":"hot""#)),
                    "slot {i}: mutation not acked: {have}"
                );
                assert!(
                    have.contains(&format!(r#""version":{version}"#)),
                    "slot {i}: wrong version (want {version}): {have}"
                );
            }
        }
    }

    // The final state equals a fresh server loaded with the final dataset.
    let fresh = ExplanationEngine::new(
        textfmt::parse_dataset(&local.dataset_text()).unwrap(),
        EngineConfig::default(),
    );
    for bits in 0..32u32 {
        let point: Vec<String> = (0..5).map(|b| ((bits >> b) & 1).to_string()).collect();
        let line = format!(
            r#"{{"dataset":"hot","id":"f{bits}","cmd":"classify","metric":"hamming","point":[{}]}}"#,
            point.join(",")
        );
        let req = Request::from_json_line(
            &format!(
                r#"{{"id":"f{bits}","cmd":"classify","metric":"hamming","point":[{}]}}"#,
                point.join(",")
            ),
            "oracle",
        )
        .unwrap();
        let have = client.roundtrip(&line).unwrap();
        assert_eq!(fresh.run(&req).to_json_line(), have, "final-state query f{bits}");
    }

    // The cluster noticed the kill.
    let mut stats = String::new();
    for _ in 0..100 {
        stats = client.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        if stats.contains(r#""healthy":false"#) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(stats.contains(r#""healthy":false"#), "victim not marked down: {stats}");

    handle.shutdown();
    let _ = survivor.kill();
    let _ = survivor.wait();
}
