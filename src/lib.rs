//! # explainable-knn
//!
//! Abductive and counterfactual explanations for k-nearest-neighbor
//! classifiers — a complete Rust implementation of
//! *"Explaining k-Nearest Neighbors: Abductive and Counterfactual
//! Explanations"* (Barceló, Kozachinskiy, Romero Orth, Subercaseaux,
//! Verschae; PODS 2025).
//!
//! This is the facade crate: it re-exports the workspace's public API. See
//! the README for a tour and `DESIGN.md` for the system inventory.
//!
//! ```
//! use explainable_knn::prelude::*;
//!
//! // A tiny discrete dataset: positives and negatives in {0,1}³.
//! let ds = BooleanDataset::from_sets(
//!     vec![BitVec::from_bits(&[0, 1, 1]), BitVec::from_bits(&[1, 0, 1])],
//!     vec![BitVec::from_bits(&[0, 0, 0]), BitVec::from_bits(&[1, 1, 0])],
//! );
//! let x = BitVec::from_bits(&[0, 0, 1]);
//!
//! // Classify with optimistic 1-NN.
//! let knn = BooleanKnn::new(&ds, OddK::ONE);
//! let label = knn.classify(&x);
//!
//! // A minimal sufficient reason: a set of components of x that pins the label.
//! let reason = HammingAbductive::new(&ds, OddK::ONE).minimal(&x);
//! for i in &reason {
//!     println!("component {i} (value {}) is part of the explanation", x.get(*i));
//! }
//!
//! // The closest counterfactual: fewest bit flips that change the label.
//! let (cf, dist) = hamming_counterfactual::closest_sat(&ds, OddK::ONE, &x).unwrap();
//! assert_ne!(knn.classify(&cf), label);
//! assert!(dist >= 1);
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use knn_cluster as cluster;
pub use knn_core as core;
pub use knn_datasets as datasets;
pub use knn_delta as delta;
pub use knn_engine as engine;
pub use knn_index as index;
pub use knn_lp as lp;
pub use knn_milp as milp;
pub use knn_num as num;
pub use knn_qp as qp;
pub use knn_reductions as reductions;
pub use knn_sat as sat;
pub use knn_server as server;
pub use knn_space as space;

/// The most common imports in one place.
pub mod prelude {
    pub use knn_cluster::{Router, RouterConfig};
    pub use knn_core::abductive::hamming::HammingAbductive;
    pub use knn_core::abductive::l1::L1Abductive;
    pub use knn_core::abductive::l2::L2Abductive;
    pub use knn_core::abductive::minimum::HittingSetMode;
    pub use knn_core::counterfactual::hamming as hamming_counterfactual;
    pub use knn_core::counterfactual::l1::L1Counterfactual;
    pub use knn_core::counterfactual::l2::L2Counterfactual;
    pub use knn_core::{BooleanKnn, ContinuousKnn, SrCheck};
    pub use knn_delta::{Mutation, VersionedDataset};
    pub use knn_engine::{EngineConfig, EngineData, ExplanationEngine};
    pub use knn_num::{Field, Rat};
    pub use knn_server::{Client, Server, ServerConfig};
    pub use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label, LpMetric, OddK};
}
