//! `xknn` — explain k-NN classifications from the shell.
//!
//! ```text
//! xknn <command> --data <file> --point "v1,v2,..." [options]
//! xknn batch     --data <file> [--requests <jsonl>] [--workers N] [--budget C]
//! xknn serve     [--addr host:port] [--data name=file ...] [--workers N] ...
//! xknn client    --addr host:port [--requests <jsonl>]
//! xknn router    [--addr host:port] [--backend host:port ...] [--spawn N] ...
//! xknn replay    <bundle.json>
//!
//! commands:
//!   classify          the optimistic k-NN label of the point (§2)
//!   minimal-sr        a minimal sufficient reason (Prop 2 + the per-metric checker)
//!   minimum-sr        an exact minimum sufficient reason (NP-hard/Σ₂ᵖ: IHS solver)
//!   check-sr          is --features a sufficient reason? (counterexample if not)
//!   counterfactual    the closest counterfactual under the metric
//!   batch             serve a JSON-lines request stream concurrently
//!   serve             multi-tenant TCP server over the explanation engine
//!   client            stream JSON-lines requests to a running server
//!   router            sharding/replication router over N `serve` backends
//!   replay            re-execute a repro bundle offline and byte-diff it
//!
//! options:
//!   --data <file>     labeled points: `+ 1.0 2.0` / `- 0 1 1`; `#` comments
//!   --point <csv>     the query point
//!   --metric <m>      l2 (default) | l1 | lp:<p> | hamming
//!   --k <odd>         neighborhood size (default 1)
//!   --features <csv>  feature indices for check-sr
//!
//! batch options:
//!   --requests <file> JSON-lines requests (default: stdin; `-` = stdin)
//!   --workers <n>     worker threads (default: all cores)
//!   --budget <c>      deterministic effort budget (SAT conflicts; demotes
//!                     minimum-sr to the greedy heuristic); default exact
//!   --cache <n>       explanation-cache capacity (default 4096, 0 disables)
//!
//! serve options:
//!   --addr <a>        bind address (default 127.0.0.1:7878; port 0 = ephemeral)
//!   --data <n=file>   preload a dataset as tenant `n` (repeatable); clients
//!                     can also load/unload at runtime via the protocol
//!   --workers <n>     global worker budget (default: all cores)
//!   --inflight <n>    per-connection in-flight cap (default 4)
//!   --budget / --cache  per-tenant engine config, as for batch
//!
//! client options:
//!   --addr <a>        server address (required)
//!   --requests <file> JSON-lines requests (default: stdin; `-` = stdin)
//!   --metrics         one-shot: print the server's Prometheus text
//!                     exposition (the `metrics` verb) and exit
//!   --stats-json      one-shot: print the `stats` verb's JSON line and exit
//!   --trace <id>      one-shot: print the reconstructed span tree of one
//!                     traced query (the `trace` verb; through a router,
//!                     backend trees are stitched under dispatch spans)
//!   --trace-dump      one-shot: print the flight recorder as Chrome
//!                     trace-event JSON (load in chrome://tracing/Perfetto)
//!   --top             one-shot: print the server's per-tenant resource
//!                     table (`top` verb: bytes, QPS, SLO burn); through a
//!                     router, rows are merged across the backends
//!   --repro <sel>     one-shot: export a self-contained repro bundle for a
//!                     captured query window (the `repro` verb). Selectors:
//!                     `trace=ID`, `tenant=NAME`, or `conn=C,seq=S` (the
//!                     reference `slow` entries carry). Replay it offline
//!                     with `xknn replay`.
//!   --out <file>      write the one-shot payload (`--trace-dump`, `--trace`,
//!                     `--repro`, ...) to a file instead of stdout
//!   --watch <secs>    repeat `--top` (or `--metrics`) every <secs>
//!                     seconds until interrupted or the server goes away
//!
//! router options:
//!   --addr <a>        bind address (default 127.0.0.1:7979; port 0 = ephemeral)
//!   --backend <a>     attach an already-running server (repeatable)
//!   --spawn <n>       spawn n `xknn serve` backends on ephemeral ports
//!   --replicas <r>    default replicas per tenant (default: all backends)
//!   --data <n=file>   preload a dataset, fanned out to its replicas (repeatable)
//!   --probe-ms <m>    health-probe interval (default 500; 0 disables)
//!   --spread <s>      replicas one connection scatters over (default: all)
//!   --affinity on|off cache-affinity routing + cross-replica cache fill
//!                     (default on): repeats of a query prefer the replica
//!                     already holding its cached explanation, and cold
//!                     answers are pushed to peers; `off` restores pure
//!                     window round-robin
//!   --workers / --inflight / --cache / --budget   forwarded to spawned backends
//! ```
//!
//! Batch requests look like
//! `{"id":"q1","cmd":"counterfactual","metric":"l2","k":1,"point":[1.5,1.0]}`;
//! server queries add `"dataset":"name"`, and the server additionally speaks
//! the control verbs `load`, `unload`, `insert`, `remove`, `list`, `stats`,
//! `ping`, `quit`, `shutdown` (see `knn-server`). Tenants are **live**:
//! `{"verb":"insert","name":"demo","label":"+","point":[1,0,1]}` appends a
//! point and `{"verb":"remove","name":"demo","index":3}` drops one, each
//! bumping the tenant's version; re-`load`ing a name atomically replaces
//! it. The router fans mutations out to every replica. Responses are JSON
//! lines in input order, byte-deterministic for any `--workers` value —
//! and after any mutation sequence, byte-identical to a server freshly
//! loaded with the final dataset. The tool refuses (metric, k, command)
//! combinations outside the paper's tractability boundary instead of
//! silently approximating; see Table 1.

use explainable_knn::cli::{
    parse_dataset, parse_indices, parse_point, run_batch, run_query, BatchOptions, MetricChoice,
    QueryOutput,
};
use std::io::Read;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Every value of a repeatable flag, in order (`--data a=x --data b=y`).
fn args_all(name: &str) -> Vec<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).filter(|w| w[0] == name).map(|w| w[1].clone()).collect()
}

fn fail(msg: &str) -> ! {
    eprintln!("xknn: {msg}");
    eprintln!("run with no arguments for usage");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let Some(command) = argv.get(1).filter(|c| !c.starts_with("--")).cloned() else {
        println!("usage: xknn <classify|minimal-sr|minimum-sr|check-sr|counterfactual>");
        println!("            --data <file> --point \"v1,v2,...\"");
        println!("            [--metric l2|l1|lp:<p>|hamming] [--k <odd>] [--features i,j,...]");
        println!("       xknn batch --data <file> [--requests <jsonl>|-]");
        println!("            [--workers <n>] [--budget <conflicts>] [--cache <entries>]");
        println!("       xknn serve [--addr host:port] [--data name=<file> ...]");
        println!("            [--workers <n>] [--inflight <n>] [--budget <c>] [--cache <n>]");
        println!("       xknn client --addr host:port [--requests <jsonl>|-]");
        println!("            [--metrics | --stats-json | --trace <id> | --trace-dump | --top");
        println!("             | --repro trace=ID|tenant=NAME|conn=C,seq=S]");
        println!("            [--out <file>] [--watch <secs>]");
        println!("       xknn router [--addr host:port] [--backend host:port ...] [--spawn <n>]");
        println!("            [--replicas <r>] [--data name=<file> ...] [--probe-ms <m>]");
        println!("            [--spread <s>] [--affinity on|off]");
        println!("       xknn replay <bundle.json>");
        std::process::exit(if argv.len() <= 1 { 0 } else { 2 });
    };

    if command == "serve" {
        return serve();
    }
    if command == "client" {
        return client();
    }
    if command == "router" {
        return router();
    }
    if command == "replay" {
        return replay();
    }

    let data_path = arg("--data").unwrap_or_else(|| fail("--data <file> is required"));
    let text = std::fs::read_to_string(&data_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {data_path}: {e}")));
    let data = parse_dataset(&text).unwrap_or_else(|e| fail(&e));

    if command == "batch" {
        let input = match arg("--requests").filter(|p| p != "-") {
            Some(path) => std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
            None => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
                buf
            }
        };
        let mut opts = BatchOptions::default();
        if let Some(w) = arg("--workers") {
            opts.workers = w.parse().unwrap_or_else(|_| fail("--workers must be an integer"));
        }
        if let Some(c) = arg("--cache") {
            opts.cache_capacity = c.parse().unwrap_or_else(|_| fail("--cache must be an integer"));
        }
        if let Some(b) = arg("--budget") {
            opts.budget = Some(b.parse().unwrap_or_else(|_| fail("--budget must be an integer")));
        }
        let (out, summary) = run_batch(&data, &input, opts);
        print!("{out}");
        eprintln!("{summary}");
        return;
    }

    single_query(command, data)
}

/// `xknn serve`: bind, preload `--data name=file` tenants, serve until a
/// client sends the `shutdown` verb.
fn serve() {
    let addr = arg("--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let mut config = knn_server::ServerConfig::default();
    if let Some(w) = arg("--workers") {
        config.worker_budget = w.parse().unwrap_or_else(|_| fail("--workers must be an integer"));
    }
    if let Some(i) = arg("--inflight") {
        config.conn_inflight = i.parse().unwrap_or_else(|_| fail("--inflight must be an integer"));
    }
    if let Some(c) = arg("--cache") {
        config.engine.cache_capacity =
            c.parse().unwrap_or_else(|_| fail("--cache must be an integer"));
    }
    if let Some(b) = arg("--budget") {
        config.engine.effort_budget =
            Some(b.parse().unwrap_or_else(|_| fail("--budget must be an integer")));
    }
    let server = knn_server::Server::bind(&addr, config)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    for spec in args_all("--data") {
        let (name, path) = spec
            .split_once('=')
            .unwrap_or_else(|| fail(&format!("--data wants name=<file>, got `{spec}`")));
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let tenant = server.registry().load(name, &text).unwrap_or_else(|e| fail(&e));
        eprintln!(
            "xknn serve: loaded `{name}` ({} points, dim {})",
            tenant.stats().points,
            tenant.stats().dim
        );
    }
    // The resolved address on stdout (and flushed) so scripts and tests can
    // bind port 0 and discover the port.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Err(e) = server.serve() {
        fail(&format!("serve failed: {e}"));
    }
}

/// One `--top` table: tenants ranked by bytes, with rate and burn columns.
fn render_top(rows: &[knn_engine::json::Value]) -> String {
    use knn_engine::json::Value;
    let mut out = format!(
        "{:<16} {:>12} {:>10} {:>8} {:>10} {:>6}\n",
        "TENANT", "BYTES", "REQUESTS", "QPS", "SLO_BURN", "VIOL"
    );
    for row in rows {
        let s = |k: &str| row.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
        let u = |k: &str| row.get(k).and_then(Value::as_u64).unwrap_or(0);
        let f = |k: &str| row.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "{:<16} {:>12} {:>10} {:>8.2} {:>10.4} {:>6}\n",
            s("tenant"),
            u("bytes_total"),
            u("requests"),
            f("qps"),
            f("slo_burn"),
            u("slo_violations"),
        ));
    }
    out
}

/// Prints to stdout, surfacing a closed pipe as an error instead of the
/// default panic — `--watch` loops (and one-shots piped into `head`) end
/// cleanly when their reader goes away.
fn try_print(text: &str) -> Result<(), String> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| format!("stdout closed: {e}"))
}

/// The one-shot payload sink: `--out <file>` writes the payload to a file
/// (`xknn client --repro ... --out bug.bundle` pairs with `xknn replay
/// bug.bundle`); without it, stdout via [`try_print`].
fn emit(text: &str) -> Result<(), String> {
    match arg("--out") {
        Some(path) => std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}")),
        None => try_print(text),
    }
}

/// The wire line for the `repro` verb from a `--repro` selector:
/// `trace=ID`, `tenant=NAME`, or `conn=C,seq=S`.
fn repro_line(selector: &str) -> String {
    use knn_engine::json::Value;
    let mut members = vec![
        ("id".into(), Value::String("cli".into())),
        ("verb".into(), Value::String("repro".into())),
    ];
    for part in selector.split(',') {
        let num = |v: &str| -> f64 {
            v.parse().unwrap_or_else(|_| fail(&format!("--repro: `{part}` wants an integer")))
        };
        match part.split_once('=') {
            Some(("trace", v)) => members.push(("trace".into(), Value::String(v.to_string()))),
            Some(("tenant", v)) => members.push(("name".into(), Value::String(v.to_string()))),
            Some(("conn", v)) => members.push(("conn".into(), Value::Number(num(v)))),
            Some(("seq", v)) => members.push(("seq".into(), Value::Number(num(v)))),
            _ => fail(&format!(
                "--repro wants trace=ID, tenant=NAME, or conn=C,seq=S (got `{part}`)"
            )),
        }
    }
    Value::Object(members).to_json()
}

/// One scrape of `verb` against `addr`, payload to stdout (or `--out`).
fn client_one_shot(addr: &str, verb: &str) -> Result<(), String> {
    use knn_engine::json::Value;
    let mut client =
        knn_server::Client::connect_retry(addr, 5, std::time::Duration::from_millis(20))
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let line = if verb == "trace" {
        let tid = arg("--trace").unwrap_or_else(|| fail("--trace wants a trace id"));
        Value::Object(vec![
            ("id".into(), Value::String("cli".into())),
            ("verb".into(), Value::String("trace".into())),
            ("trace".into(), Value::String(tid)),
        ])
        .to_json()
    } else if verb == "repro" {
        let selector = arg("--repro")
            .unwrap_or_else(|| fail("--repro wants trace=ID, tenant=NAME, or conn=C,seq=S"));
        repro_line(&selector)
    } else {
        format!(r#"{{"id":"cli","verb":"{verb}"}}"#)
    };
    let resp = client.roundtrip(&line).map_err(|e| format!("{verb} failed: {e}"))?;
    if verb == "stats" || verb == "trace" {
        // Already one JSON object (stats / span tree); print verbatim.
        return emit(&format!("{resp}\n"));
    }
    // Unwrap the payload out of the response envelope so the output is
    // directly consumable: Prometheus text for `--metrics`, a Chrome
    // trace-event array for `--trace-dump`, an aligned table for `--top`,
    // a replayable bundle for `--repro`.
    let parsed = knn_engine::json::parse_bytes(resp.as_bytes())
        .map_err(|e| format!("unparseable {verb} response: {e}"))?;
    if verb == "top" {
        return match parsed.get("top") {
            Some(Value::Array(rows)) => emit(&render_top(rows)),
            _ => Err(format!("top verb answered without a top member: {resp}")),
        };
    }
    let member = match verb {
        "dump" => "chrome",
        "repro" => "bundle",
        _ => "metrics",
    };
    match parsed.get(member) {
        Some(Value::String(text)) if verb == "metrics" => emit(text),
        Some(Value::String(text)) => emit(&format!("{text}\n")),
        _ => Err(format!("{verb} verb answered without a {member} member: {resp}")),
    }
}

/// `xknn replay`: load a repro bundle exported by the `repro` verb (or the
/// shadow auditor), rebuild the tenant in a fresh offline engine — seed
/// text, then each replay op up to every entry's epoch — re-execute the
/// captured requests, and **byte-diff** the responses against the captured
/// ones. Exit 0 on a clean byte-identical replay, 1 on divergence, 2 on a
/// malformed bundle.
fn replay() {
    let argv: Vec<String> = std::env::args().collect();
    let path = argv
        .get(2)
        .filter(|p| !p.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| fail("replay wants a bundle file: xknn replay <bundle.json>"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let bundle = knn_engine::bundle::ReproBundle::from_json(text.trim())
        .unwrap_or_else(|e| fail(&format!("{path} is not a repro bundle: {e}")));
    let report = bundle.replay().unwrap_or_else(|e| fail(&format!("replay failed: {e}")));
    if report.divergences.is_empty() {
        println!(
            "replay ok: tenant `{}`, {} response{} byte-identical, final epoch {}",
            report.tenant,
            report.checked,
            if report.checked == 1 { "" } else { "s" },
            report.final_epoch
        );
        return;
    }
    for d in &report.divergences {
        let backend = d.backend.map(|b| format!(" backend={b}")).unwrap_or_default();
        println!("DIVERGED conn={} seq={}{backend} epoch={}", d.conn, d.seq, d.epoch);
        println!("  captured: {}", d.expected);
        println!("  replayed: {}", d.got);
    }
    println!(
        "replay FAILED: {} of {} responses diverged (tenant `{}`)",
        report.divergences.len(),
        report.checked,
        report.tenant
    );
    std::process::exit(1);
}

/// `xknn client`: pipeline a JSON-lines stream to a server, print the
/// responses in request order. With `--metrics`, `--stats-json`,
/// `--trace <id>`, `--trace-dump`, `--top` or `--repro <sel>`, a one-shot
/// mode instead: connect, issue the verb, print the payload (or write it
/// to `--out <file>`), exit — the scrape-friendly path
/// (`xknn client --addr a:p --metrics | ...`, `--repro trace=t1 --out b.json`).
/// `--watch <secs>` repeats the one-shot (`--top` by default) on a fresh
/// connection each round, exiting cleanly when the server goes away.
fn client() {
    let addr = arg("--addr").unwrap_or_else(|| fail("--addr host:port is required"));
    let argv: Vec<String> = std::env::args().collect();
    let one_shot = if argv.iter().any(|a| a == "--metrics") {
        Some("metrics")
    } else if argv.iter().any(|a| a == "--stats-json") {
        Some("stats")
    } else if argv.iter().any(|a| a == "--trace") {
        Some("trace")
    } else if argv.iter().any(|a| a == "--trace-dump") {
        Some("dump")
    } else if argv.iter().any(|a| a == "--top") {
        Some("top")
    } else if argv.iter().any(|a| a == "--repro") {
        Some("repro")
    } else {
        None
    };
    if let Some(secs) = arg("--watch") {
        let secs: u64 = secs.parse().unwrap_or_else(|_| fail("--watch must be seconds"));
        let verb = match one_shot {
            None | Some("top") => "top",
            Some("metrics") => "metrics",
            Some(other) => fail(&format!("--watch repeats --top or --metrics, not --{other}")),
        };
        // Repeat until the server goes away (clean exit, scrape loops are
        // advisory) or the user interrupts. Each round reconnects, so a
        // server restart mid-watch just shows up as fresh counters.
        loop {
            if let Err(e) = client_one_shot(&addr, verb).and_then(|()| try_print("\n")) {
                eprintln!("client: {e}; ending watch");
                return;
            }
            std::thread::sleep(std::time::Duration::from_secs(secs.max(1)));
        }
    }
    if let Some(verb) = one_shot {
        if let Err(e) = client_one_shot(&addr, verb) {
            if e.starts_with("stdout closed") {
                return; // reader went away (| head); that's a clean exit
            }
            fail(&e);
        }
        return;
    }
    let input = match arg("--requests").filter(|p| p != "-") {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
            buf
        }
    };
    // Bounded retry + backoff: a scripted `serve &` / `client` pair races the
    // server's accept loop; first-refusal must not be fatal.
    let mut client =
        knn_server::Client::connect_retry(&addr, 5, std::time::Duration::from_millis(20))
            .unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    let responses =
        client.run_stream(&input).unwrap_or_else(|e| fail(&format!("stream failed: {e}")));
    let errors = responses.iter().filter(|r| r.contains("\"ok\":false")).count();
    for line in &responses {
        println!("{line}");
    }
    eprintln!("client: {} responses, {} errors", responses.len(), errors);
}

/// [`fail`], but first stop any backend children this router spawned —
/// `fail` exits without running destructors, and a botched startup (bad
/// `--data`, failed spawn) must not orphan server processes.
fn router_fail(router: &knn_cluster::Router, msg: &str) -> ! {
    router.pool().shutdown_spawned();
    fail(msg)
}

/// `xknn router`: front N `xknn serve` backends (spawned and/or attached)
/// with rendezvous-hash tenant placement and batch scatter-gather.
fn router() {
    let addr = arg("--addr").unwrap_or_else(|| "127.0.0.1:7979".into());
    let mut config = knn_cluster::RouterConfig::default();
    if let Some(r) = arg("--replicas") {
        config.replication = r.parse().unwrap_or_else(|_| fail("--replicas must be an integer"));
    }
    if let Some(m) = arg("--probe-ms") {
        let ms: u64 = m.parse().unwrap_or_else(|_| fail("--probe-ms must be an integer"));
        config.probe_interval = std::time::Duration::from_millis(ms);
    }
    if let Some(s) = arg("--spread") {
        config.spread = s.parse().unwrap_or_else(|_| fail("--spread must be an integer"));
    }
    if let Some(a) = arg("--affinity") {
        config.affinity = match a.as_str() {
            "on" => true,
            "off" => false,
            _ => fail("--affinity must be `on` or `off`"),
        };
    }
    let router = knn_cluster::Router::bind(&addr, config)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));

    for backend in args_all("--backend") {
        // Resolve like every other address flag (hostnames work, not just
        // IP literals).
        use std::net::ToSocketAddrs as _;
        let resolved = backend
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .unwrap_or_else(|| fail(&format!("--backend wants host:port, got `{backend}`")));
        router.attach(resolved);
        eprintln!("xknn router: attached backend {resolved}");
    }
    if let Some(n) = arg("--spawn") {
        let n: usize = n.parse().unwrap_or_else(|_| fail("--spawn must be an integer"));
        let xknn = std::env::current_exe()
            .unwrap_or_else(|e| fail(&format!("cannot locate own binary: {e}")));
        // Engine/server tuning flags pass through to every spawned backend.
        let mut extra = Vec::new();
        for flag in ["--workers", "--inflight", "--cache", "--budget"] {
            if let Some(v) = arg(flag) {
                extra.push(flag.to_string());
                extra.push(v);
            }
        }
        for _ in 0..n {
            let backend = router
                .spawn_backend(&xknn, &extra)
                .unwrap_or_else(|e| router_fail(&router, &format!("cannot spawn backend: {e}")));
            eprintln!("xknn router: spawned backend {} (pid-owned)", backend.addr);
        }
    }
    if router.pool().is_empty() {
        fail("router needs at least one backend (--backend and/or --spawn)");
    }
    for spec in args_all("--data") {
        let (name, path) = spec.split_once('=').unwrap_or_else(|| {
            router_fail(&router, &format!("--data wants name=<file>, got `{spec}`"))
        });
        let replicas = router
            .load(name, knn_cluster::LoadSource::Path(path), None)
            .unwrap_or_else(|e| router_fail(&router, &e));
        eprintln!("xknn router: loaded `{name}` on replicas {replicas:?}");
    }
    // The resolved address on stdout (and flushed), like `xknn serve`.
    println!("listening on {}", router.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if let Err(e) = router.serve() {
        fail(&format!("router failed: {e}"));
    }
}

fn single_query(command: String, data: explainable_knn::cli::ParsedData) {
    let point_s = arg("--point").unwrap_or_else(|| fail("--point \"v1,v2,...\" is required"));
    let x = parse_point(&point_s).unwrap_or_else(|e| fail(&e));

    let metric = MetricChoice::parse(&arg("--metric").unwrap_or_else(|| "l2".into()))
        .unwrap_or_else(|e| fail(&e));
    let k: u32 = arg("--k")
        .map(|s| s.parse().unwrap_or_else(|_| fail("--k must be an integer")))
        .unwrap_or(1);
    let features = arg("--features")
        .map(|s| parse_indices(&s, data.continuous.dim()).unwrap_or_else(|e| fail(&e)));

    match run_query(&data, metric, k, &command, &x, features.as_deref()) {
        Err(e) => fail(&e),
        Ok(QueryOutput::Label(l)) => println!("label: {l}"),
        Ok(QueryOutput::Reason(r)) => {
            println!("sufficient reason ({} of {} features): {r:?}", r.len(), x.len());
        }
        Ok(QueryOutput::Check { sufficient: true, .. }) => println!("sufficient: yes"),
        Ok(QueryOutput::Check { sufficient: false, witness }) => {
            println!("sufficient: no");
            if let Some(w) = witness {
                println!("counterexample (same fixed features, different label): {w:?}");
            }
        }
        Ok(QueryOutput::Counterfactual { point, dist, proven }) => {
            println!("counterfactual: {point:?}");
            println!(
                "distance: {dist} ({})",
                if proven { "proven optimal" } else { "heuristic upper bound" }
            );
        }
        Ok(QueryOutput::NoCounterfactual) => println!("no counterfactual exists"),
    }
}
