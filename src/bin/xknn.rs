//! `xknn` — explain k-NN classifications from the shell.
//!
//! ```text
//! xknn <command> --data <file> --point "v1,v2,..." [options]
//! xknn batch     --data <file> [--requests <jsonl>] [--workers N] [--budget C]
//!
//! commands:
//!   classify          the optimistic k-NN label of the point (§2)
//!   minimal-sr        a minimal sufficient reason (Prop 2 + the per-metric checker)
//!   minimum-sr        an exact minimum sufficient reason (NP-hard/Σ₂ᵖ: IHS solver)
//!   check-sr          is --features a sufficient reason? (counterexample if not)
//!   counterfactual    the closest counterfactual under the metric
//!   batch             serve a JSON-lines request stream concurrently
//!
//! options:
//!   --data <file>     labeled points: `+ 1.0 2.0` / `- 0 1 1`; `#` comments
//!   --point <csv>     the query point
//!   --metric <m>      l2 (default) | l1 | lp:<p> | hamming
//!   --k <odd>         neighborhood size (default 1)
//!   --features <csv>  feature indices for check-sr
//!
//! batch options:
//!   --requests <file> JSON-lines requests (default: stdin; `-` = stdin)
//!   --workers <n>     worker threads (default: all cores)
//!   --budget <c>      deterministic effort budget (SAT conflicts; demotes
//!                     minimum-sr to the greedy heuristic); default exact
//!   --cache <n>       explanation-cache capacity (default 4096, 0 disables)
//! ```
//!
//! Batch requests look like
//! `{"id":"q1","cmd":"counterfactual","metric":"l2","k":1,"point":[1.5,1.0]}`;
//! responses are JSON lines in input order, byte-deterministic for any
//! `--workers` value. The tool refuses (metric, k, command) combinations
//! outside the paper's tractability boundary instead of silently
//! approximating; see Table 1.

use explainable_knn::cli::{
    parse_dataset, parse_indices, parse_point, run_batch, run_query, BatchOptions, MetricChoice,
    QueryOutput,
};
use std::io::Read;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn fail(msg: &str) -> ! {
    eprintln!("xknn: {msg}");
    eprintln!("run with no arguments for usage");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let Some(command) = argv.get(1).filter(|c| !c.starts_with("--")).cloned() else {
        println!("usage: xknn <classify|minimal-sr|minimum-sr|check-sr|counterfactual>");
        println!("            --data <file> --point \"v1,v2,...\"");
        println!("            [--metric l2|l1|lp:<p>|hamming] [--k <odd>] [--features i,j,...]");
        println!("       xknn batch --data <file> [--requests <jsonl>|-]");
        println!("            [--workers <n>] [--budget <conflicts>] [--cache <entries>]");
        std::process::exit(if argv.len() <= 1 { 0 } else { 2 });
    };

    let data_path = arg("--data").unwrap_or_else(|| fail("--data <file> is required"));
    let text = std::fs::read_to_string(&data_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {data_path}: {e}")));
    let data = parse_dataset(&text).unwrap_or_else(|e| fail(&e));

    if command == "batch" {
        let input = match arg("--requests").filter(|p| p != "-") {
            Some(path) => std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}"))),
            None => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .unwrap_or_else(|e| fail(&format!("cannot read stdin: {e}")));
                buf
            }
        };
        let mut opts = BatchOptions::default();
        if let Some(w) = arg("--workers") {
            opts.workers = w.parse().unwrap_or_else(|_| fail("--workers must be an integer"));
        }
        if let Some(c) = arg("--cache") {
            opts.cache_capacity = c.parse().unwrap_or_else(|_| fail("--cache must be an integer"));
        }
        if let Some(b) = arg("--budget") {
            opts.budget = Some(b.parse().unwrap_or_else(|_| fail("--budget must be an integer")));
        }
        let (out, summary) = run_batch(&data, &input, opts);
        print!("{out}");
        eprintln!("{summary}");
        return;
    }

    let point_s = arg("--point").unwrap_or_else(|| fail("--point \"v1,v2,...\" is required"));
    let x = parse_point(&point_s).unwrap_or_else(|e| fail(&e));

    let metric = MetricChoice::parse(&arg("--metric").unwrap_or_else(|| "l2".into()))
        .unwrap_or_else(|e| fail(&e));
    let k: u32 = arg("--k")
        .map(|s| s.parse().unwrap_or_else(|_| fail("--k must be an integer")))
        .unwrap_or(1);
    let features = arg("--features")
        .map(|s| parse_indices(&s, data.continuous.dim()).unwrap_or_else(|e| fail(&e)));

    match run_query(&data, metric, k, &command, &x, features.as_deref()) {
        Err(e) => fail(&e),
        Ok(QueryOutput::Label(l)) => println!("label: {l}"),
        Ok(QueryOutput::Reason(r)) => {
            println!("sufficient reason ({} of {} features): {r:?}", r.len(), x.len());
        }
        Ok(QueryOutput::Check { sufficient: true, .. }) => println!("sufficient: yes"),
        Ok(QueryOutput::Check { sufficient: false, witness }) => {
            println!("sufficient: no");
            if let Some(w) = witness {
                println!("counterexample (same fixed features, different label): {w:?}");
            }
        }
        Ok(QueryOutput::Counterfactual { point, dist, proven }) => {
            println!("counterfactual: {point:?}");
            println!(
                "distance: {dist} ({})",
                if proven { "proven optimal" } else { "heuristic upper bound" }
            );
        }
        Ok(QueryOutput::NoCounterfactual) => println!("no counterfactual exists"),
    }
}
