//! Parsing and dispatch for the `xknn` command-line tool.
//!
//! The tool reads a labeled dataset from a plain-text file (one point per
//! line, `+`/`-` label first, then whitespace- or comma-separated feature
//! values; `#` starts a comment) and answers the paper's explanation queries
//! from the shell. Everything testable lives here; `src/bin/xknn.rs` is a
//! thin wrapper.

use crate::prelude::*;

/// Which metric space family the query runs in (§2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricChoice {
    /// Continuous, ℓ2 — every explanation problem except Minimum-SR is
    /// polynomial (Table 1, first row).
    L2,
    /// Continuous, ℓ1 — Check-SR is polynomial only at k = 1 (second row).
    L1,
    /// Continuous, general ℓp (`p ⩾ 3`) — complexity open (§10); served by
    /// the heuristic engine.
    Lp(u32),
    /// Discrete `{0,1}ⁿ` with the Hamming distance (third row).
    Hamming,
}

impl MetricChoice {
    /// Parses `l2`, `l1`, `hamming`, or `lp:<p>`.
    pub fn parse(s: &str) -> Result<MetricChoice, String> {
        match s {
            "l2" => Ok(MetricChoice::L2),
            "l1" => Ok(MetricChoice::L1),
            "hamming" | "h" => Ok(MetricChoice::Hamming),
            other => {
                if let Some(p) = other.strip_prefix("lp:") {
                    let p: u32 = p.parse().map_err(|_| format!("bad ℓp exponent in `{other}`"))?;
                    if p == 0 {
                        return Err("ℓp exponent must be positive".into());
                    }
                    Ok(match p {
                        1 => MetricChoice::L1,
                        2 => MetricChoice::L2,
                        _ => MetricChoice::Lp(p),
                    })
                } else {
                    Err(format!("unknown metric `{other}` (try l2, l1, lp:<p>, hamming)"))
                }
            }
        }
    }
}

/// A dataset parsed from text — continuous always; boolean view when every
/// value is 0/1.
#[derive(Clone, Debug)]
pub struct ParsedData {
    /// Continuous view (always available).
    pub continuous: ContinuousDataset<f64>,
    /// Boolean view, present iff every value in the file was 0 or 1.
    pub boolean: Option<BooleanDataset>,
}

/// Parses one feature vector: comma- or whitespace-separated floats.
pub fn parse_point(s: &str) -> Result<Vec<f64>, String> {
    let toks: Vec<&str> =
        s.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty()).collect();
    if toks.is_empty() {
        return Err("empty point".into());
    }
    toks.iter()
        .map(|t| match t.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            Ok(_) => Err(format!("non-finite value `{t}`")),
            Err(_) => Err(format!("bad number `{t}`")),
        })
        .collect()
}

/// Parses a full dataset file (see module docs for the format).
pub fn parse_dataset(text: &str) -> Result<ParsedData, String> {
    let mut points: Vec<(Vec<f64>, Label)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = match line.as_bytes()[0] {
            b'+' => (Label::Positive, &line[1..]),
            b'-' => (Label::Negative, &line[1..]),
            _ => return Err(format!("line {}: must start with `+` or `-` label", lineno + 1)),
        };
        let vals = parse_point(rest).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some((first, _)) = points.first() {
            if first.len() != vals.len() {
                return Err(format!(
                    "line {}: dimension {} does not match first point's {}",
                    lineno + 1,
                    vals.len(),
                    first.len()
                ));
            }
        }
        points.push((vals, label));
    }
    if points.is_empty() {
        return Err("dataset file contains no points".into());
    }
    let dim = points[0].0.len();
    let mut continuous = ContinuousDataset::new(dim);
    let mut all_binary = true;
    for (vals, label) in &points {
        all_binary &= vals.iter().all(|&v| v == 0.0 || v == 1.0);
        continuous.push(vals.clone(), *label);
    }
    let boolean = all_binary.then(|| {
        let mut ds = BooleanDataset::new(dim);
        for (vals, label) in &points {
            ds.push(
                BitVec::from_bools(&vals.iter().map(|&v| v == 1.0).collect::<Vec<_>>()),
                *label,
            );
        }
        ds
    });
    Ok(ParsedData { continuous, boolean })
}

/// Parses a comma-separated feature-index list (`0,3,7`).
pub fn parse_indices(s: &str, dim: usize) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for t in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let i: usize = t.parse().map_err(|_| format!("bad index `{t}`"))?;
        if i >= dim {
            return Err(format!("index {i} out of range (dimension {dim})"));
        }
        out.push(i);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// One executed query's result, rendered for the terminal.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// `classify`.
    Label(Label),
    /// `minimal-sr` / `minimum-sr`: feature indices.
    Reason(Vec<usize>),
    /// `check-sr`: verdict plus a counterexample when not sufficient.
    Check {
        /// Whether the given feature set is a sufficient reason.
        sufficient: bool,
        /// A counterexample completion when it is not.
        witness: Option<Vec<f64>>,
    },
    /// `counterfactual`: witness, distance, and whether it was proven optimal.
    Counterfactual {
        /// The differently-classified point.
        point: Vec<f64>,
        /// Its distance from the query under the chosen metric.
        dist: f64,
        /// `true` for exact engines; `false` for the ℓp heuristic.
        proven: bool,
    },
    /// No counterfactual exists (a class is empty).
    NoCounterfactual,
}

/// Runs one query against the parsed data. `k` must be odd. Returns a
/// human-readable error for unsupported (metric, k, command) combinations —
/// the CLI surfaces Table 1's boundaries rather than silently approximating.
pub fn run_query(
    data: &ParsedData,
    metric: MetricChoice,
    k: u32,
    command: &str,
    x: &[f64],
    features: Option<&[usize]>,
) -> Result<QueryOutput, String> {
    let k = OddK::new(k).ok_or_else(|| format!("k must be odd, got {k}"))?;
    if x.len() != data.continuous.dim() {
        return Err(format!(
            "point dimension {} does not match dataset dimension {}",
            x.len(),
            data.continuous.dim()
        ));
    }
    let need_bool = || -> Result<(&BooleanDataset, BitVec), String> {
        let ds =
            data.boolean.as_ref().ok_or("the hamming metric needs a 0/1 dataset".to_string())?;
        if x.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err("the hamming metric needs a 0/1 query point".into());
        }
        Ok((ds, BitVec::from_bools(&x.iter().map(|&v| v == 1.0).collect::<Vec<_>>())))
    };

    match (command, metric) {
        ("classify", MetricChoice::Hamming) => {
            let (ds, bx) = need_bool()?;
            Ok(QueryOutput::Label(BooleanKnn::new(ds, k).classify(&bx)))
        }
        ("classify", m) => {
            let p = metric_p(m);
            Ok(QueryOutput::Label(
                ContinuousKnn::new(&data.continuous, LpMetric::new(p), k).classify(x),
            ))
        }

        ("minimal-sr", MetricChoice::L2) => {
            Ok(QueryOutput::Reason(L2Abductive::new(&data.continuous, k).minimal(x)))
        }
        ("minimal-sr", MetricChoice::L1) => {
            require_k1(k, "minimal-sr under ℓ1 (Thm 5: coNP-complete for k ⩾ 3)")?;
            Ok(QueryOutput::Reason(L1Abductive::new(&data.continuous).minimal(x)))
        }
        ("minimal-sr", MetricChoice::Hamming) => {
            let (ds, bx) = need_bool()?;
            Ok(QueryOutput::Reason(HammingAbductive::new(ds, k).minimal(&bx)))
        }

        ("minimum-sr", MetricChoice::L2) => {
            Ok(QueryOutput::Reason(L2Abductive::new(&data.continuous, k).minimum(x)))
        }
        ("minimum-sr", MetricChoice::L1) => {
            require_k1(k, "minimum-sr under ℓ1")?;
            Ok(QueryOutput::Reason(L1Abductive::new(&data.continuous).minimum(x)))
        }
        ("minimum-sr", MetricChoice::Hamming) => {
            let (ds, bx) = need_bool()?;
            Ok(QueryOutput::Reason(HammingAbductive::new(ds, k).minimum(&bx)))
        }

        ("check-sr", m) => {
            let fixed = features.ok_or("check-sr needs --features")?;
            let check = match m {
                MetricChoice::L2 => L2Abductive::new(&data.continuous, k).check(x, fixed),
                MetricChoice::L1 => {
                    require_k1(k, "check-sr under ℓ1 (Thm 5)")?;
                    L1Abductive::new(&data.continuous).check(x, fixed)
                }
                MetricChoice::Hamming => {
                    let (ds, bx) = need_bool()?;
                    return Ok(match HammingAbductive::new(ds, k).check(&bx, fixed) {
                        SrCheck::Sufficient => {
                            QueryOutput::Check { sufficient: true, witness: None }
                        }
                        SrCheck::NotSufficient { witness } => QueryOutput::Check {
                            sufficient: false,
                            witness: Some(
                                witness.iter().map(|b| if b { 1.0 } else { 0.0 }).collect(),
                            ),
                        },
                    });
                }
                MetricChoice::Lp(p) => {
                    return Err(format!(
                        "check-sr under ℓ{p} is not implemented (complexity open, §10)"
                    ))
                }
            };
            Ok(match check {
                SrCheck::Sufficient => QueryOutput::Check { sufficient: true, witness: None },
                SrCheck::NotSufficient { witness } => {
                    QueryOutput::Check { sufficient: false, witness: Some(witness) }
                }
            })
        }

        ("counterfactual", MetricChoice::L2) => {
            let cf = L2Counterfactual::new(&data.continuous, k);
            match cf.infimum(x) {
                None => Ok(QueryOutput::NoCounterfactual),
                Some(inf) => {
                    let dist = inf.dist_sq.sqrt();
                    // The additive slack must clear the f64 field's comparison
                    // tolerance (knn_num::field::F64_TOL = 1e-9), or `within`'s
                    // strict ball test rejects the witness when the infimum is
                    // tiny (query on or next to the decision boundary).
                    let radius = inf.dist_sq * 1.0001 + 1e-6;
                    let point = cf
                        .within(x, &radius)
                        .ok_or("internal: witness missing just past the infimum")?;
                    Ok(QueryOutput::Counterfactual { point, dist, proven: true })
                }
            }
        }
        ("counterfactual", MetricChoice::L1) => {
            require_k1(k, "counterfactual under ℓ1 via the k = 1 MILP model")?;
            match L1Counterfactual::new(&data.continuous).closest(x) {
                None => Ok(QueryOutput::NoCounterfactual),
                Some((point, dist)) => {
                    Ok(QueryOutput::Counterfactual { point, dist, proven: true })
                }
            }
        }
        ("counterfactual", MetricChoice::Lp(p)) => {
            let engine = knn_core::counterfactual::lp_general::LpGeneralCounterfactual::new(
                &data.continuous,
                LpMetric::new(p),
                k,
            );
            match engine.closest(x) {
                None => Ok(QueryOutput::NoCounterfactual),
                Some(w) => Ok(QueryOutput::Counterfactual {
                    point: w.point,
                    dist: w.dist,
                    proven: false, // heuristic upper bound (§10 open problem)
                }),
            }
        }
        ("counterfactual", MetricChoice::Hamming) => {
            let (ds, bx) = need_bool()?;
            match hamming_counterfactual::closest_sat(ds, k, &bx) {
                None => Ok(QueryOutput::NoCounterfactual),
                Some((point, d)) => Ok(QueryOutput::Counterfactual {
                    point: point.iter().map(|b| if b { 1.0 } else { 0.0 }).collect(),
                    dist: d as f64,
                    proven: true,
                }),
            }
        }

        (other, _) => Err(format!(
            "unknown command `{other}` (try classify, minimal-sr, minimum-sr, check-sr, counterfactual)"
        )),
    }
}

/// Options for the `batch` subcommand.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads (`0` = all cores).
    pub workers: usize,
    /// Explanation-cache capacity (`0` disables).
    pub cache_capacity: usize,
    /// Deterministic effort budget for the hard routes (SAT conflicts /
    /// greedy hitting sets); `None` = exact.
    pub budget: Option<u64>,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        let d = knn_engine::EngineConfig::default();
        BatchOptions { workers: d.workers, cache_capacity: d.cache_capacity, budget: None }
    }
}

/// Builds a batch engine over parsed data.
pub fn batch_engine(data: &ParsedData, opts: BatchOptions) -> knn_engine::ExplanationEngine {
    knn_engine::ExplanationEngine::new(
        knn_engine::EngineData::new(data.continuous.clone(), data.boolean.clone()),
        knn_engine::EngineConfig {
            workers: opts.workers,
            cache_capacity: opts.cache_capacity,
            effort_budget: opts.budget,
        },
    )
}

/// Runs a JSON-lines request stream against parsed data: the `xknn batch`
/// entry point. Returns the JSON-lines responses plus a human-readable
/// one-line summary (for stderr).
pub fn run_batch(data: &ParsedData, input: &str, opts: BatchOptions) -> (String, String) {
    let engine = batch_engine(data, opts);
    let (out, stats) = engine.run_jsonl(input);
    let summary = format!(
        "batch: {} requests, {} errors, {} cache hits, {} workers, {:.3}s",
        stats.requests,
        stats.errors,
        stats.cache_hits,
        stats.workers,
        stats.wall.as_secs_f64()
    );
    (out, summary)
}

fn metric_p(m: MetricChoice) -> u32 {
    match m {
        MetricChoice::L1 => 1,
        MetricChoice::L2 => 2,
        MetricChoice::Lp(p) => p,
        MetricChoice::Hamming => unreachable!("handled by the boolean path"),
    }
}

fn require_k1(k: OddK, what: &str) -> Result<(), String> {
    if k.get() != 1 {
        return Err(format!("{what} requires k = 1, got k = {}", k.get()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOL_DATA: &str = "\
# a comment line
+ 1 1 1
+ 1,1,0   # trailing comment
- 0 0 0
- 0 0 1
";

    const CONT_DATA: &str = "\
+ 2.0 2.0
+ 3.0 1.5
- -1.0 -1.0
- 0.0 -2.0
";

    #[test]
    fn parses_boolean_dataset_with_both_views() {
        let d = parse_dataset(BOOL_DATA).unwrap();
        assert_eq!(d.continuous.len(), 4);
        assert_eq!(d.continuous.dim(), 3);
        let b = d.boolean.expect("all-binary file gets a boolean view");
        assert_eq!(b.count_of(Label::Positive), 2);
    }

    #[test]
    fn continuous_dataset_has_no_boolean_view() {
        let d = parse_dataset(CONT_DATA).unwrap();
        assert!(d.boolean.is_none());
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_dataset("").is_err());
        assert!(parse_dataset("x 1 2").is_err(), "missing label");
        assert!(parse_dataset("+ 1 2\n- 1 2 3").is_err(), "dimension mismatch");
        assert!(parse_dataset("+ 1 two").is_err(), "non-numeric");
        assert!(parse_dataset("+\n").is_err(), "empty point");
        assert!(parse_dataset("+ 1e309 0").is_err(), "overflowing literal → inf");
        assert!(parse_dataset("+ NaN 0").is_err(), "NaN rejected");
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(MetricChoice::parse("l2"), Ok(MetricChoice::L2));
        assert_eq!(MetricChoice::parse("lp:2"), Ok(MetricChoice::L2));
        assert_eq!(MetricChoice::parse("lp:1"), Ok(MetricChoice::L1));
        assert_eq!(MetricChoice::parse("lp:3"), Ok(MetricChoice::Lp(3)));
        assert_eq!(MetricChoice::parse("hamming"), Ok(MetricChoice::Hamming));
        assert!(MetricChoice::parse("lp:0").is_err());
        assert!(MetricChoice::parse("cosine").is_err());
    }

    #[test]
    fn index_parsing_bounds_checked() {
        assert_eq!(parse_indices("2, 0, 2", 3).unwrap(), vec![0, 2]);
        assert!(parse_indices("3", 3).is_err());
        assert!(parse_indices("x", 3).is_err());
    }

    #[test]
    fn classify_and_explain_roundtrip_hamming() {
        let d = parse_dataset(BOOL_DATA).unwrap();
        let x = [0.0, 1.0, 0.0];
        let out = run_query(&d, MetricChoice::Hamming, 1, "classify", &x, None).unwrap();
        assert!(matches!(out, QueryOutput::Label(_)));
        let QueryOutput::Reason(sr) =
            run_query(&d, MetricChoice::Hamming, 1, "minimal-sr", &x, None).unwrap()
        else {
            panic!()
        };
        let QueryOutput::Check { sufficient, .. } =
            run_query(&d, MetricChoice::Hamming, 1, "check-sr", &x, Some(&sr)).unwrap()
        else {
            panic!()
        };
        assert!(sufficient, "a minimal SR must check as sufficient");
        let QueryOutput::Counterfactual { dist, proven, .. } =
            run_query(&d, MetricChoice::Hamming, 1, "counterfactual", &x, None).unwrap()
        else {
            panic!()
        };
        assert!(proven);
        assert!(dist >= 1.0);
    }

    #[test]
    fn classify_and_explain_roundtrip_l2() {
        let d = parse_dataset(CONT_DATA).unwrap();
        let x = [1.0, 1.0];
        let QueryOutput::Counterfactual { point, dist, proven } =
            run_query(&d, MetricChoice::L2, 1, "counterfactual", &x, None).unwrap()
        else {
            panic!()
        };
        assert!(proven);
        assert!(dist > 0.0);
        let knn = ContinuousKnn::new(&d.continuous, LpMetric::L2, OddK::ONE);
        assert_ne!(knn.classify(&point), knn.classify(&x));
    }

    #[test]
    fn lp3_counterfactual_is_heuristic() {
        let d = parse_dataset(CONT_DATA).unwrap();
        let out =
            run_query(&d, MetricChoice::Lp(3), 1, "counterfactual", &[1.0, 1.0], None).unwrap();
        match out {
            QueryOutput::Counterfactual { proven, .. } => assert!(!proven),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table1_boundaries_are_surfaced() {
        let d = parse_dataset(CONT_DATA).unwrap();
        // ℓ1 with k = 3: Check-SR is coNP-complete — refused, not approximated.
        let err = run_query(&d, MetricChoice::L1, 3, "minimal-sr", &[1.0, 1.0], None).unwrap_err();
        assert!(err.contains("k = 1"), "{err}");
        // even k rejected.
        assert!(run_query(&d, MetricChoice::L2, 2, "classify", &[1.0, 1.0], None).is_err());
        // dimension mismatch rejected.
        assert!(run_query(&d, MetricChoice::L2, 1, "classify", &[1.0], None).is_err());
    }
}
