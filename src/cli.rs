//! Parsing and dispatch for the `xknn` command-line tool.
//!
//! The tool reads a labeled dataset from a plain-text file (one point per
//! line, `+`/`-` label first, then whitespace- or comma-separated feature
//! values; `#` starts a comment) and answers the paper's explanation queries
//! from the shell. Everything testable lives here; `src/bin/xknn.rs` is a
//! thin wrapper.

use crate::prelude::*;

/// Which metric space family the query runs in (§2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricChoice {
    /// Continuous, ℓ2 — every explanation problem except Minimum-SR is
    /// polynomial (Table 1, first row).
    L2,
    /// Continuous, ℓ1 — Check-SR is polynomial only at k = 1 (second row).
    L1,
    /// Continuous, general ℓp (`p ⩾ 3`) — complexity open (§10); served by
    /// the heuristic engine.
    Lp(u32),
    /// Discrete `{0,1}ⁿ` with the Hamming distance (third row).
    Hamming,
}

impl From<MetricChoice> for knn_engine::Metric {
    fn from(m: MetricChoice) -> knn_engine::Metric {
        match m {
            MetricChoice::L2 => knn_engine::Metric::L2,
            MetricChoice::L1 => knn_engine::Metric::L1,
            MetricChoice::Lp(p) => knn_engine::Metric::Lp(p),
            MetricChoice::Hamming => knn_engine::Metric::Hamming,
        }
    }
}

impl MetricChoice {
    /// Parses `l2`, `l1`, `hamming`, or `lp:<p>`.
    pub fn parse(s: &str) -> Result<MetricChoice, String> {
        match s {
            "l2" => Ok(MetricChoice::L2),
            "l1" => Ok(MetricChoice::L1),
            "hamming" | "h" => Ok(MetricChoice::Hamming),
            other => {
                if let Some(p) = other.strip_prefix("lp:") {
                    let p: u32 = p.parse().map_err(|_| format!("bad ℓp exponent in `{other}`"))?;
                    if p == 0 {
                        return Err("ℓp exponent must be positive".into());
                    }
                    Ok(match p {
                        1 => MetricChoice::L1,
                        2 => MetricChoice::L2,
                        _ => MetricChoice::Lp(p),
                    })
                } else {
                    Err(format!("unknown metric `{other}` (try l2, l1, lp:<p>, hamming)"))
                }
            }
        }
    }
}

/// A dataset parsed from text — continuous always; boolean view when every
/// value is 0/1. This is the engine's [`knn_engine::EngineData`]: the CLI,
/// the batch engine, and the network server all share one dataset type.
pub type ParsedData = knn_engine::EngineData;

pub use knn_engine::textfmt::{parse_dataset, parse_point};

/// Parses a comma-separated feature-index list (`0,3,7`).
pub fn parse_indices(s: &str, dim: usize) -> Result<Vec<usize>, String> {
    let mut out = Vec::new();
    for t in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let i: usize = t.parse().map_err(|_| format!("bad index `{t}`"))?;
        if i >= dim {
            return Err(format!("index {i} out of range (dimension {dim})"));
        }
        out.push(i);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// One executed query's result, rendered for the terminal.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryOutput {
    /// `classify`.
    Label(Label),
    /// `minimal-sr` / `minimum-sr`: feature indices.
    Reason(Vec<usize>),
    /// `check-sr`: verdict plus a counterexample when not sufficient.
    Check {
        /// Whether the given feature set is a sufficient reason.
        sufficient: bool,
        /// A counterexample completion when it is not.
        witness: Option<Vec<f64>>,
    },
    /// `counterfactual`: witness, distance, and whether it was proven optimal.
    Counterfactual {
        /// The differently-classified point.
        point: Vec<f64>,
        /// Its distance from the query under the chosen metric.
        dist: f64,
        /// `true` for exact engines; `false` for the ℓp heuristic.
        proven: bool,
    },
    /// No counterfactual exists (a class is empty).
    NoCounterfactual,
}

/// Runs one query against the parsed data, through the batch engine's
/// planner and executor (`knn_engine::exec`) — the CLI and the engine used to
/// carry two copies of the Table-1 dispatch; this is now the only one.
/// `k` must be odd. Returns a human-readable error for unsupported
/// (metric, k, command) combinations — the CLI surfaces Table 1's boundaries
/// rather than silently approximating.
pub fn run_query(
    data: &ParsedData,
    metric: MetricChoice,
    k: u32,
    command: &str,
    x: &[f64],
    features: Option<&[usize]>,
) -> Result<QueryOutput, String> {
    let kind = knn_engine::QueryKind::parse(command).map_err(|_| {
        format!(
            "unknown command `{command}` (try classify, minimal-sr, minimum-sr, check-sr, counterfactual)"
        )
    })?;
    if kind == knn_engine::QueryKind::CheckSr && features.is_none() {
        return Err("check-sr needs --features".into());
    }
    let features = features.map(|f| {
        let mut idx = f.to_vec();
        idx.sort_unstable();
        idx.dedup();
        idx
    });
    let req = knn_engine::Request {
        id: "cli".into(),
        kind,
        metric: metric.into(),
        k,
        point: x.to_vec(),
        features,
    };
    // A throwaway artifact store: single queries build only the artifacts
    // they touch (the store is lazy), which costs no more than the direct
    // calls the CLI used to make.
    let resp = knn_engine::exec::execute(data, &knn_engine::ArtifactStore::new(), &req, None);
    let outcome = resp.result?;
    Ok(match outcome {
        knn_engine::Outcome::Label(l) => QueryOutput::Label(l),
        knn_engine::Outcome::Reason { features, .. } => QueryOutput::Reason(features),
        knn_engine::Outcome::Check { sufficient, witness } => {
            QueryOutput::Check { sufficient, witness }
        }
        knn_engine::Outcome::Counterfactual { point, dist, proven } => {
            QueryOutput::Counterfactual { point, dist, proven }
        }
        knn_engine::Outcome::NoCounterfactual => QueryOutput::NoCounterfactual,
    })
}

/// Options for the `batch` subcommand.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads (`0` = all cores).
    pub workers: usize,
    /// Explanation-cache capacity (`0` disables).
    pub cache_capacity: usize,
    /// Deterministic effort budget for the hard routes (SAT conflicts /
    /// greedy hitting sets); `None` = exact.
    pub budget: Option<u64>,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        let d = knn_engine::EngineConfig::default();
        BatchOptions { workers: d.workers, cache_capacity: d.cache_capacity, budget: None }
    }
}

/// Builds a batch engine over parsed data.
pub fn batch_engine(data: &ParsedData, opts: BatchOptions) -> knn_engine::ExplanationEngine {
    knn_engine::ExplanationEngine::new(
        data.clone(),
        knn_engine::EngineConfig {
            workers: opts.workers,
            cache_capacity: opts.cache_capacity,
            effort_budget: opts.budget,
            ..knn_engine::EngineConfig::default()
        },
    )
}

/// Runs a JSON-lines request stream against parsed data: the `xknn batch`
/// entry point. Returns the JSON-lines responses plus a human-readable
/// one-line summary (for stderr).
pub fn run_batch(data: &ParsedData, input: &str, opts: BatchOptions) -> (String, String) {
    let engine = batch_engine(data, opts);
    let (out, stats) = engine.run_jsonl(input);
    let summary = format!(
        "batch: {} requests, {} errors, {} cache hits, {} workers, {:.3}s",
        stats.requests,
        stats.errors,
        stats.cache_hits,
        stats.workers,
        stats.wall.as_secs_f64()
    );
    (out, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOL_DATA: &str = "\
# a comment line
+ 1 1 1
+ 1,1,0   # trailing comment
- 0 0 0
- 0 0 1
";

    const CONT_DATA: &str = "\
+ 2.0 2.0
+ 3.0 1.5
- -1.0 -1.0
- 0.0 -2.0
";

    #[test]
    fn parses_boolean_dataset_with_both_views() {
        let d = parse_dataset(BOOL_DATA).unwrap();
        assert_eq!(d.continuous.len(), 4);
        assert_eq!(d.continuous.dim(), 3);
        let b = d.boolean.expect("all-binary file gets a boolean view");
        assert_eq!(b.count_of(Label::Positive), 2);
    }

    #[test]
    fn continuous_dataset_has_no_boolean_view() {
        let d = parse_dataset(CONT_DATA).unwrap();
        assert!(d.boolean.is_none());
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_dataset("").is_err());
        assert!(parse_dataset("x 1 2").is_err(), "missing label");
        assert!(parse_dataset("+ 1 2\n- 1 2 3").is_err(), "dimension mismatch");
        assert!(parse_dataset("+ 1 two").is_err(), "non-numeric");
        assert!(parse_dataset("+\n").is_err(), "empty point");
        assert!(parse_dataset("+ 1e309 0").is_err(), "overflowing literal → inf");
        assert!(parse_dataset("+ NaN 0").is_err(), "NaN rejected");
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(MetricChoice::parse("l2"), Ok(MetricChoice::L2));
        assert_eq!(MetricChoice::parse("lp:2"), Ok(MetricChoice::L2));
        assert_eq!(MetricChoice::parse("lp:1"), Ok(MetricChoice::L1));
        assert_eq!(MetricChoice::parse("lp:3"), Ok(MetricChoice::Lp(3)));
        assert_eq!(MetricChoice::parse("hamming"), Ok(MetricChoice::Hamming));
        assert!(MetricChoice::parse("lp:0").is_err());
        assert!(MetricChoice::parse("cosine").is_err());
    }

    #[test]
    fn index_parsing_bounds_checked() {
        assert_eq!(parse_indices("2, 0, 2", 3).unwrap(), vec![0, 2]);
        assert!(parse_indices("3", 3).is_err());
        assert!(parse_indices("x", 3).is_err());
    }

    #[test]
    fn classify_and_explain_roundtrip_hamming() {
        let d = parse_dataset(BOOL_DATA).unwrap();
        let x = [0.0, 1.0, 0.0];
        let out = run_query(&d, MetricChoice::Hamming, 1, "classify", &x, None).unwrap();
        assert!(matches!(out, QueryOutput::Label(_)));
        let QueryOutput::Reason(sr) =
            run_query(&d, MetricChoice::Hamming, 1, "minimal-sr", &x, None).unwrap()
        else {
            panic!()
        };
        let QueryOutput::Check { sufficient, .. } =
            run_query(&d, MetricChoice::Hamming, 1, "check-sr", &x, Some(&sr)).unwrap()
        else {
            panic!()
        };
        assert!(sufficient, "a minimal SR must check as sufficient");
        let QueryOutput::Counterfactual { dist, proven, .. } =
            run_query(&d, MetricChoice::Hamming, 1, "counterfactual", &x, None).unwrap()
        else {
            panic!()
        };
        assert!(proven);
        assert!(dist >= 1.0);
    }

    #[test]
    fn classify_and_explain_roundtrip_l2() {
        let d = parse_dataset(CONT_DATA).unwrap();
        let x = [1.0, 1.0];
        let QueryOutput::Counterfactual { point, dist, proven } =
            run_query(&d, MetricChoice::L2, 1, "counterfactual", &x, None).unwrap()
        else {
            panic!()
        };
        assert!(proven);
        assert!(dist > 0.0);
        let knn = ContinuousKnn::new(&d.continuous, LpMetric::L2, OddK::ONE);
        assert_ne!(knn.classify(&point), knn.classify(&x));
    }

    #[test]
    fn lp3_counterfactual_is_heuristic() {
        let d = parse_dataset(CONT_DATA).unwrap();
        let out =
            run_query(&d, MetricChoice::Lp(3), 1, "counterfactual", &[1.0, 1.0], None).unwrap();
        match out {
            QueryOutput::Counterfactual { proven, .. } => assert!(!proven),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn table1_boundaries_are_surfaced() {
        let d = parse_dataset(CONT_DATA).unwrap();
        // ℓ1 with k = 3: Check-SR is coNP-complete — refused, not approximated.
        let err = run_query(&d, MetricChoice::L1, 3, "minimal-sr", &[1.0, 1.0], None).unwrap_err();
        assert!(err.contains("k = 1"), "{err}");
        // even k rejected.
        assert!(run_query(&d, MetricChoice::L2, 2, "classify", &[1.0, 1.0], None).is_err());
        // dimension mismatch rejected.
        assert!(run_query(&d, MetricChoice::L2, 1, "classify", &[1.0], None).is_err());
    }
}
